//! Run a coupled study and archive it as a Markdown report — the
//! artifact you would keep next to the job logs of a real campaign.
//!
//! ```text
//! cargo run --release --example report_study [budget] [out.md]
//! ```

use cpx_core::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let budget: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5000);
    let out_path = args.next().unwrap_or_else(|| "study_report.md".to_string());

    let machine = Machine::archer2();
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let models = model::build_models_with_grid(
        &scenario,
        &machine,
        scenario.density_iters as f64,
        &[100, 200, 400, 800, 1600, 3200, budget.max(3200)],
    );
    let alloc = model::allocate_scenario(&models, budget);
    let run = sim::run_coupled(&scenario, &alloc, &machine, 20);

    let report = markdown_report(&scenario, &alloc, &run);
    if let Some(dir) = std::path::Path::new(&out_path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out_path, &report).expect("write report");
    println!("{report}");
    println!("(written to {out_path})");
}
