//! Observability study: deterministic virtual-time traces, a
//! flamegraph, a metrics snapshot and Fig-5-style phase profiles.
//!
//! ```text
//! cargo run --release --example profile_study [outdir]
//! ```
//!
//! Writes five artifacts to `outdir` (default `target/profile_study`):
//!
//! * `pressure_trace.json` — Chrome trace-event JSON of a detailed
//!   pressure-solver replay, one lane per rank, AMG sub-phases visible
//!   (load in Perfetto or `chrome://tracing`);
//! * `comm_trace.json` — Chrome trace of a 16-rank halo + allreduce
//!   program under a lossy fault plan (drop-triggered retries and CRC
//!   checks show up as spans and counters);
//! * `flamegraph.folded` — collapsed stacks of the comm run, ready for
//!   `inferno-flamegraph` / `flamegraph.pl`;
//! * `metrics.json` — counters plus p50/p95/p99 histograms over
//!   per-rank phase times;
//! * `study.md` — a coupled-study report with the Fig-5 pressure-solver
//!   share table and a per-app/per-CU-stage coupled breakdown.
//!
//! Every artifact is generated **twice** and byte-compared; any
//! divergence makes the example exit non-zero, so CI can run it as a
//! determinism gate. It also measures recorder overhead three ways:
//! profiled vs plain AMG V-cycles (spans around real numerics), the
//! threaded comm runtime traced vs untraced (spans around virtual
//! work — the worst case), and the traced DES replay's cost per span.

use std::time::Instant;

use cpx_comm::{FaultPlan, RankCtx, RankOutcome, ReduceOp, World};
use cpx_core::prelude::*;
use cpx_core::report::markdown_report_with;
use cpx_machine::Replayer;
use cpx_obs::{chrome_trace_json, collapsed_stacks, metrics_json};
use cpx_pressure::{PressureConfig, PressureTraceModel};

const COMM_RANKS: usize = 16;
const COMM_ITERS: usize = 12;
const FAULT_SEED: u64 = 42;

/// The comm workload: per iteration a ring halo exchange, a relaxation
/// kernel and a mean-field allreduce, all inside recorder spans.
fn comm_program(ctx: &mut RankCtx) -> f64 {
    let group = ctx.world();
    let (rank, size) = (ctx.rank(), ctx.size());
    let mut acc = rank as f64;
    for _ in 0..COMM_ITERS {
        ctx.obs_begin("iter");
        ctx.obs_begin("halo");
        ctx.send((rank + 1) % size, 7, vec![acc; 256]);
        let _ = ctx.recv((rank + size - 1) % size, 7);
        ctx.obs_end();
        ctx.obs_begin("relax");
        ctx.compute_secs(2.0e-4);
        ctx.obs_end();
        acc = group.allreduce_scalar(ctx, ReduceOp::Sum, acc) / size as f64;
        ctx.obs_end();
    }
    acc
}

fn lossy_plan() -> FaultPlan {
    FaultPlan::new(FAULT_SEED).with_drop_prob(0.08)
}

struct Artifacts {
    pressure_trace: String,
    comm_trace: String,
    flamegraph: String,
    metrics: String,
    study: String,
}

fn generate(machine: &Machine) -> Artifacts {
    // 1. Detailed pressure-solver replay: 64 ranks, 2 steps, AMG
    //    sub-phases labelled.
    let model = PressureTraceModel::new(PressureConfig::swirl_28m());
    let program = model.build_program(64, machine, 2, true);
    let names = cpx_pressure::trace::detailed_phase_names();
    let (_, pressure_session) = Replayer::new(machine.clone())
        .track_phases(names.len())
        .run_traced(&program, &names)
        .expect("pressure replay");

    // 2. Threaded comm run under a lossy fault plan; every rank must
    //    survive (drops are retried transparently).
    let world = World::new(machine.clone());
    let (runs, comm_session) = world.run_with_plan_traced(COMM_RANKS, lossy_plan(), comm_program);
    assert!(
        runs.iter()
            .all(|r| matches!(r.outcome, RankOutcome::Completed(_))),
        "lossy comm run must complete on every rank"
    );
    let retries = comm_session.counter("retries");
    assert!(retries > 0, "an 8% drop rate must force at least one retry");

    // 3. Coupled study + phase profiles.
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let models = model::build_models_with_grid(
        &scenario,
        machine,
        scenario.density_iters as f64,
        &[100, 400, 1600],
    );
    let alloc = model::allocate_scenario(&models, 1200);
    let run = sim::run_coupled(&scenario, &alloc, machine, 8);
    let (phase_names, out, _) = sim::trace_coupled(&scenario, &alloc, machine, 8);
    let coupled = PhaseProfile::coupled(
        &scenario,
        &phase_names,
        out.phases.as_ref().expect("tracked"),
    );

    let fig5 = PhaseProfile::pressure_fig5(PressureConfig::swirl_28m(), 2048, machine, 2);
    let share_sum: f64 = fig5.shares().iter().sum();
    assert!(
        (share_sum - 100.0).abs() < 0.1,
        "fig5 shares sum to {share_sum}"
    );
    assert!(fig5.rows.iter().any(|r| r.name.contains("amg")));
    assert!(fig5.rows.iter().any(|r| r.name.contains("spray")));

    let study = format!(
        "{}\n{}",
        markdown_report_with(&scenario, &alloc, &run, Some(&fig5)),
        coupled.to_markdown()
    );

    Artifacts {
        pressure_trace: chrome_trace_json(&pressure_session),
        comm_trace: chrome_trace_json(&comm_session),
        flamegraph: collapsed_stacks(&comm_session),
        metrics: metrics_json(&comm_session, &[("world_size", COMM_RANKS as f64)]).write_pretty(),
        study,
    }
}

/// Minimum wall time of `f` over `reps` runs (the standard
/// noise-suppressing statistic for micro-measurements).
fn wall_min(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let outdir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/profile_study".to_string());
    std::fs::create_dir_all(&outdir).expect("create outdir");
    let machine = Machine::archer2();

    let a = generate(&machine);
    let b = generate(&machine);
    let pairs = [
        ("pressure_trace.json", &a.pressure_trace, &b.pressure_trace),
        ("comm_trace.json", &a.comm_trace, &b.comm_trace),
        ("flamegraph.folded", &a.flamegraph, &b.flamegraph),
        ("metrics.json", &a.metrics, &b.metrics),
        ("study.md", &a.study, &b.study),
    ];
    let mut deterministic = true;
    for (name, first, second) in pairs {
        if first == second {
            std::fs::write(format!("{outdir}/{name}"), first).expect("write artifact");
            println!(
                "wrote {outdir}/{name} ({} bytes, deterministic)",
                first.len()
            );
        } else {
            eprintln!("DETERMINISM DIVERGENCE: {name} differs between identical runs");
            deterministic = false;
        }
    }

    // Recorder overhead on real numerics: AMG V-cycles on a Poisson
    // problem, plain vs profiled. A disabled recorder is a
    // branch-on-a-bool no-op, so the "off" cost is the plain loop.
    let a = cpx_sparse::Csr::poisson2d(192, 192);
    let n = a.nrows();
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
    let h = cpx_amg::Hierarchy::build(a, cpx_amg::HierarchyConfig::default());
    let cycles = 10;
    let reps = 15;
    let plain = wall_min(reps, || {
        let mut x = vec![0.0; n];
        for _ in 0..cycles {
            cpx_amg::vcycle(&h, 0, &rhs, &mut x);
        }
    });
    let profiled = wall_min(reps, || {
        let _ = cpx_amg::profile_vcycles(&h, &rhs, cycles);
    });
    println!(
        "recorder overhead ({} AMG V-cycles, {} dofs): {:.2} ms plain vs {:.2} ms profiled ({:+.2}%)",
        cycles,
        n,
        plain * 1e3,
        profiled * 1e3,
        (profiled / plain - 1.0) * 100.0
    );

    // Recorder overhead on the threaded virtual runtime, where spans
    // wrap virtual (not wall) work — a worst case for relative cost.
    let world = World::new(machine.clone());
    let off = wall_min(reps, || {
        let _ = world.run_with_plan(COMM_RANKS, lossy_plan(), comm_program);
    });
    let on = wall_min(reps, || {
        let _ = world.run_with_plan_traced(COMM_RANKS, lossy_plan(), comm_program);
    });
    println!(
        "recorder overhead (comm runtime): {:.3} ms disabled vs {:.3} ms enabled ({:+.2}%)",
        off * 1e3,
        on * 1e3,
        (on / off - 1.0) * 100.0
    );

    // Per-worker utilization of a threaded kernel (stdout only: wall
    // telemetry is hardware truth and must never enter the
    // byte-compared artifacts above).
    {
        let a = cpx_sparse::Csr::poisson3d(24, 24, 24);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; a.nrows()];
        let pool = cpx_par::ParPool::with_threads(4);
        let ((), tel) = cpx_par::with_telemetry(|| {
            for _ in 0..5 {
                a.spmv_with(&pool, 8, &x, &mut y);
            }
        });
        println!(
            "spmv worker utilization ({} workers, {} chunks): {:.1}% busy, \
             imbalance {:.2}, worker busy p50/p95/p99 {:.3}/{:.3}/{:.3} ms",
            tel.workers,
            tel.chunks.len(),
            tel.utilization() * 100.0,
            tel.imbalance(),
            tel.worker_busy_percentile(50.0) * 1e3,
            tel.worker_busy_percentile(95.0) * 1e3,
            tel.worker_busy_percentile(99.0) * 1e3,
        );
    }

    // Per-span cost of the traced DES replayer (an opt-in exporter with
    // far finer span granularity than any real phase).
    let model = PressureTraceModel::new(PressureConfig::swirl_28m());
    let program = model.build_program(256, &machine, 4, true);
    let names = cpx_pressure::trace::detailed_phase_names();
    let replayer = Replayer::new(machine.clone()).track_phases(names.len());
    let plain = wall_min(reps, || {
        replayer.run(&program).expect("replay");
    });
    let traced = wall_min(reps, || {
        replayer.run_traced(&program, &names).expect("replay");
    });
    let (_, session) = replayer.run_traced(&program, &names).expect("replay");
    println!(
        "traced replay: {:.2} ms vs {:.2} ms plain over {} spans ({:.0} ns/span)",
        traced * 1e3,
        plain * 1e3,
        session.total_spans(),
        (traced - plain).max(0.0) * 1e9 / session.total_spans().max(1) as f64
    );

    if !deterministic {
        std::process::exit(1);
    }
}
