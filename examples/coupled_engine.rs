//! The full HPC–Combustor–HPT engine simulation (§V-B): sixteen solver
//! instances (1.25Bn effective cells), fifteen coupler units, a
//! 40,000-core budget — the paper's production-representative case.
//!
//! ```text
//! cargo run --release --example coupled_engine [budget]
//! ```

use cpx_core::prelude::*;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let machine = Machine::archer2();
    let grid = [
        100usize, 200, 400, 800, 1600, 3200, 6400, 12_800, 25_600, 40_000,
    ];

    for variant in [StcVariant::Base, StcVariant::Optimized] {
        let scenario = testcases::large_engine(variant);
        println!(
            "\n=== {} | one revolution (1,000 density steps) ===",
            scenario.name
        );
        let models = model::build_models_with_grid(&scenario, &machine, 1000.0, &grid);
        let alloc = model::allocate_scenario(&models, budget);

        println!(
            "{:>4} {:>20} {:>9} {:>8} {:>14}",
            "#", "instance", "mesh", "ranks", "predicted"
        );
        for (i, app) in scenario.apps.iter().enumerate() {
            println!(
                "{:>4} {:>20} {:>8.0}M {:>8} {:>13.0}s",
                i + 1,
                app.name,
                app.cells / 1e6,
                alloc.app_ranks[i],
                alloc.app_times[i]
            );
        }
        println!(
            "allocated {} of {budget} ranks ({} to coupler units)",
            alloc.total_ranks(),
            alloc.cu_ranks.iter().sum::<usize>()
        );

        let run = sim::run_coupled(&scenario, &alloc, &machine, 20);
        println!(
            "predicted {:.0}s | measured {:.0}s | error {:.1}% | coupling overhead {:.2}%",
            alloc.predicted_runtime(),
            run.total_runtime,
            (alloc.predicted_runtime() - run.total_runtime).abs() / run.total_runtime * 100.0,
            run.coupling_overhead * 100.0
        );
        println!("bottleneck: {}", scenario.apps[alloc.bottleneck_app()].name);

        // Resilience: lose one rank of the bottleneck instance halfway
        // through the revolution, checkpointing every 100 iterations.
        let crash_app = alloc.bottleneck_app();
        let faulty = scenario.clone().with_fault(
            FaultScenario::crash(crash_app, run.total_runtime * 0.5).with_checkpoint_interval(100),
        );
        let res = sim::run_coupled_resilient(&faulty, &alloc, &machine, 20);
        println!(
            "with a rank lost in {}: +{:.0}s recovery overhead ({:.1}%), \
             {:.0}s in checkpoints, {} fault(s) survived",
            scenario.apps[crash_app].name,
            res.recovery_overhead,
            res.recovery_overhead / res.total_runtime * 100.0,
            res.checkpoint_cost,
            res.faults_survived
        );
    }
}
