//! Silent-data-corruption study: detection coverage, false-positive
//! rate and overhead of the ABFT/invariant detector stack.
//!
//! Five parts:
//!
//! 1. **Sparse ABFT coverage** — a seeded sweep of single bit flips over
//!    a banded matrix, classified against the published detection
//!    threshold ([`AbftCsr::spmv_tolerance`]): every above-threshold
//!    flip must be caught (≥99% is the acceptance bar; the checksums
//!    are deterministic, so the measured rate is 100%), and clean runs
//!    must never false-positive.
//! 2. **ABFT overhead** — wall-clock cost of the checked SpMV/SpGEMM
//!    kernels versus the unchecked ones (< 10% on representative
//!    block-CFD densities).
//! 3. **Physics invariant guards** — conservation/positivity watchdogs
//!    in MG-CFD and SIMPIC, the AMG residual-monotonicity guard and the
//!    coupler conservation check, each against a seeded strike.
//! 4. **Payload CRC** — link-level corruption surfaced as
//!    `CommError::Corrupted` by the transport, never as silent data.
//! 5. **Coupled recovery policies** — the virtual testbed prices
//!    recompute / rollback / flag-and-continue against injected events,
//!    quantifying detector overhead versus coverage at scale.
//!
//! ```text
//! cargo run --release --example sdc_study [budget] \
//!     [--seed <u64>] [--record <path>] [--replay <path>]
//! ```
//!
//! `--seed` perturbs every seeded draw (the bit-flip RNG and the comm
//! fault plans; the default 0 reproduces the stock study). `--record`
//! saves the nondeterminism log — comm events from part 4 and SDC
//! detection/recovery decisions from part 5 — as a `cpx-replay` trace;
//! `--replay` re-drives the study against a saved trace and exits
//! nonzero on the first diverging event.

use std::path::PathBuf;
use std::time::Instant;

use cpx_amg::{apply_cycle_guarded, CycleType, Hierarchy, HierarchyConfig};
use cpx_comm::{BitFlipInjector, CommError, FaultPlan, RankOutcome, World};
use cpx_core::prelude::*;
use cpx_core::sdc::{SdcInjection, SdcPolicy, SdcSite};
use cpx_core::sim::run_coupled_resilient_logged;
use cpx_coupler::ConservativeMap;
use cpx_mesh::mesh::{annulus_sector, combustor_box};
use cpx_mesh::{sliding_plane_pair, MeshHierarchy};
use cpx_mgcfd::guard::InvariantGuard;
use cpx_mgcfd::EulerSolver;
use cpx_replay::{verify, ReplayEvent, Trace};
use cpx_simpic::guard::PicGuard;
use cpx_simpic::{Pic1D, SimpicConfig};
use cpx_sparse::abft::{spgemm_hash_checked, spgemm_spa_checked, spgemm_twopass_checked};
use cpx_sparse::{AbftCsr, Coo, Csr};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A banded SPD-ish matrix with half-bandwidth `hw` — the ~33 nnz/row
/// density of coupled-CFD block matrices, where the O(1/row-density)
/// ABFT overhead is representative.
fn banded(n: usize, hw: usize) -> Csr {
    let mut coo = Coo::with_capacity(n, n, n * (2 * hw + 1));
    for i in 0..n {
        let lo = i.saturating_sub(hw);
        let hi = (i + hw + 1).min(n);
        for j in lo..hi {
            let v = if i == j {
                2.0 * hw as f64
            } else {
                -1.0 / (1.0 + (i as f64 - j as f64).abs())
            };
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// Start offset of each row in the CSR value array.
fn row_offsets(m: &Csr) -> Vec<usize> {
    let mut offsets = vec![0usize; m.nrows()];
    for r in 1..m.nrows() {
        offsets[r] = offsets[r - 1] + m.row(r - 1).0.len();
    }
    offsets
}

fn abft_coverage_sweep(seed: u64) {
    println!("=== part 1: sparse ABFT detection coverage ===");
    let n = 600;
    let base = banded(n, 12);
    let offsets = row_offsets(&base);
    let x: Vec<f64> = (0..n).map(|i| 1.0 + 0.3 * (i as f64 * 0.7).sin()).collect();
    let mut work = AbftCsr::new(base.clone());
    let threshold = work.spmv_tolerance(&x);

    let trials = 2000;
    let mut rng = StdRng::seed_from_u64(0x5dc_57d1u64.wrapping_add(seed));
    let (mut above, mut caught_above) = (0u32, 0u32);
    let (mut below, mut caught_below) = (0u32, 0u32);
    let mut y = vec![0.0; n];
    for _ in 0..trials {
        let r = rng.gen_range(0..n);
        let k = rng.gen_range(0..work.matrix().row(r).0.len());
        let bit = rng.gen_range(0..64u32);
        let gidx = offsets[r] + k;
        let c = work.matrix().row(r).0[k];
        let v = work.matrix().vals()[gidx];
        let flipped = BitFlipInjector::flip(v, bit);
        // Numerical effect of this flip on the checked sum Σy.
        let delta = (flipped - v).abs() * x[c].abs();

        work.matrix_mut().vals_mut()[gidx] = flipped;
        let caught = work.spmv_checked(&x, &mut y).is_err();
        work.matrix_mut().vals_mut()[gidx] = v;

        // 2× margin keeps borderline flips (within rounding of the
        // threshold itself) out of the guaranteed class.
        if !delta.is_finite() || delta > 2.0 * threshold {
            above += 1;
            caught_above += u32::from(caught);
        } else {
            below += 1;
            caught_below += u32::from(caught);
        }
    }
    let coverage = 100.0 * caught_above as f64 / above.max(1) as f64;
    println!("  {trials} seeded flips, detection threshold {threshold:.3e}");
    println!("  above threshold: {caught_above}/{above} caught ({coverage:.2}%)");
    println!("  below threshold (maskable): {caught_below}/{below} still caught");
    assert!(
        coverage >= 99.0,
        "coverage {coverage:.2}% below the 99% bar"
    );

    // False positives: clean checked kernels over many inputs.
    let clean = AbftCsr::new(base.clone());
    let mut false_positives = 0u32;
    for trial in 0..200 {
        let x: Vec<f64> = (0..n)
            .map(|i| ((i + 7 * trial) as f64 * 0.13).cos() * 3.0)
            .collect();
        if clean.spmv_checked(&x, &mut y).is_err() {
            false_positives += 1;
        }
    }
    let b = AbftCsr::new(banded(n, 6));
    false_positives += u32::from(spgemm_twopass_checked(&clean, &b).is_err());
    false_positives += u32::from(spgemm_spa_checked(&clean, &b, 8).is_err());
    false_positives += u32::from(spgemm_hash_checked(&clean, &b).is_err());
    false_positives += u32::from(clean.verify_values().is_err());
    println!("  false positives on clean runs: {false_positives}");
    assert_eq!(false_positives, 0, "clean runs must never flag");

    // SpGEMM detection: strike the B operand, run the checked product.
    let mut b_struck = AbftCsr::new(banded(n, 6));
    let v = b_struck.matrix().vals()[99];
    b_struck.matrix_mut().vals_mut()[99] = BitFlipInjector::flip(v, 61);
    let verdict = spgemm_spa_checked(&clean, &b_struck, 8);
    println!(
        "  spgemm with struck B operand: {}",
        if verdict.is_err() { "caught" } else { "MISSED" }
    );
    assert!(verdict.is_err());
}

fn abft_overhead_bench() {
    println!("\n=== part 2: ABFT overhead (wall clock) ===");
    let n = 40_000;
    // ~65 nnz/row: at the paper's ~33 nnz/row the measured overhead sits
    // right at the 10% bound (the O(n) checksum passes are a larger
    // fraction of the traffic); the denser band shows the asymptotic
    // O(1/nnz-per-row) regime with real margin.
    let m = banded(n, 32);
    let abft = AbftCsr::new(m.clone());
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
    let mut y = vec![0.0; n];

    let reps = 30;
    let time_best_of_3 = |f: &mut dyn FnMut()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..reps {
                    f();
                }
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let t_plain = time_best_of_3(&mut || {
        m.spmv(&x, &mut y);
    });
    let t_checked = time_best_of_3(&mut || {
        abft.spmv_checked(&x, &mut y).expect("clean");
    });
    let spmv_overhead = (t_checked - t_plain) / t_plain;
    println!(
        "  spmv   n={n} nnz={}: plain {:.2}ms checked {:.2}ms -> overhead {:.1}%",
        m.nnz(),
        t_plain / reps as f64 * 1e3,
        t_checked / reps as f64 * 1e3,
        spmv_overhead * 100.0
    );

    let a = AbftCsr::new(banded(1500, 32));
    let b = AbftCsr::new(banded(1500, 32));
    let t_plain = time_best_of_3(&mut || {
        let _ = cpx_sparse::spgemm::spgemm_spa(a.matrix(), b.matrix(), 8);
    });
    let t_checked = time_best_of_3(&mut || {
        spgemm_spa_checked(&a, &b, 8).expect("clean");
    });
    let spgemm_overhead = (t_checked - t_plain) / t_plain;
    println!(
        "  spgemm n=1500: plain {:.2}ms checked {:.2}ms -> overhead {:.1}%",
        t_plain / reps as f64 * 1e3,
        t_checked / reps as f64 * 1e3,
        spgemm_overhead * 100.0
    );
    assert!(
        spmv_overhead < 0.10,
        "spmv ABFT overhead {:.1}% over the 10% bound",
        spmv_overhead * 100.0
    );
    assert!(
        spgemm_overhead < 0.10,
        "spgemm ABFT overhead {:.1}% over the 10% bound",
        spgemm_overhead * 100.0
    );
}

fn physics_guards() {
    println!("\n=== part 3: physics invariant guards ===");

    // MG-CFD: strike the density of one cell after a clean step.
    let mesh = combustor_box(6, 6, 6, 0.0, 1.0, 1.0, 1.0);
    let mut euler = EulerSolver::acoustic_pulse(MeshHierarchy::build(mesh, 2), 0.05);
    let guard = InvariantGuard::watch(&euler);
    euler.mg_cycle(2);
    let clean = guard.check(&euler).is_ok();
    euler.state[17][0] = BitFlipInjector::flip(euler.state[17][0], 62);
    let struck = guard.check(&euler);
    println!(
        "  mgcfd mass/energy guard: clean pass={clean}, struck -> {}",
        struck
            .as_ref()
            .map_or_else(|e| e.to_string(), |_| "MISSED".into())
    );
    assert!(clean && struck.is_err());

    // SIMPIC: strike a particle position.
    let mut pic = Pic1D::quiet_start(&SimpicConfig::base_28m().functional(64, 200), 0.02, 11);
    let pic_guard = PicGuard::watch(&pic);
    pic.step();
    let clean = pic_guard.check(&pic).is_ok();
    pic.particles[123].x = BitFlipInjector::flip(pic.particles[123].x, 62);
    let struck = pic_guard.check(&pic);
    println!(
        "  simpic charge/domain guard: clean pass={clean}, struck -> {}",
        struck
            .as_ref()
            .map_or_else(|e| e.to_string(), |_| "MISSED".into())
    );
    assert!(clean && struck.is_err());

    // AMG: strike a fine-level operator entry; the residual-monotonicity
    // guard trips within a few cycles.
    let a = Csr::poisson2d(16, 16);
    let nrows = a.nrows();
    let b: Vec<f64> = (0..nrows).map(|i| ((i % 5) as f64) - 2.0).collect();
    let mut h = Hierarchy::build(a, HierarchyConfig::default());
    let mut x = vec![0.0; nrows];
    let clean = apply_cycle_guarded(&h, CycleType::V, &b, &mut x, 1.0).is_ok();
    let v = h.levels[0].a.vals_mut();
    v[37] = BitFlipInjector::flip(v[37], 62);
    let mut tripped = None;
    for _ in 0..4 {
        if let Err(e) = apply_cycle_guarded(&h, CycleType::V, &b, &mut x, 1.0) {
            tripped = Some(e);
            break;
        }
    }
    println!(
        "  amg residual-monotonicity guard: clean pass={clean}, struck -> {}",
        tripped
            .as_ref()
            .map_or_else(|| "MISSED".into(), |e| e.to_string())
    );
    assert!(clean && tripped.is_some());

    // Coupler: strike the transferred field after the transfer computed
    // it (the window a real exchange leaves it sitting in memory); the
    // conservation audit trips on the integral drift.
    let up = annulus_sector(4, 4, 32, 1.0, 2.0, 0.0, 1.0, std::f64::consts::TAU);
    let down = annulus_sector(4, 6, 24, 1.0, 2.0, 1.0, 1.0, std::f64::consts::TAU);
    let (donors, targets) = sliding_plane_pair(&up, &down);
    let map = ConservativeMap::build(&donors, &targets);
    let field = vec![1.0; donors.len()];
    let mut out = map
        .transfer_verified(&donors.weights, &targets.weights, &field)
        .expect("clean transfer must verify");
    let clean = map
        .verify_transfer(&donors.weights, &targets.weights, &field, &out)
        .is_ok();
    let victim = map.donor_target[0];
    out[victim] = BitFlipInjector::flip(out[victim], 62);
    let struck = map.verify_transfer(&donors.weights, &targets.weights, &field, &out);
    println!(
        "  coupler conservation audit: clean pass={clean}, struck -> {}",
        struck
            .as_ref()
            .map_or_else(|e| e.to_string(), |_| "MISSED".into())
    );
    assert!(clean && struck.is_err());
}

fn comm_crc(machine: &Machine, seed: u64, events: &mut Vec<ReplayEvent>) {
    println!("\n=== part 4: payload CRC on the virtual MPI runtime ===");
    let plan = FaultPlan::new(31u64.wrapping_add(seed)).with_corrupt_prob(1.0);
    let (runs, log) = World::new(machine.clone()).run_with_plan_logged(2, plan, |ctx| {
        if ctx.rank() == 0 {
            ctx.try_send(1, 0, vec![1.0f64, 2.0, 3.0]).map(|_| ())
        } else {
            ctx.try_recv_from(0, 0).map(|_| ())
        }
    });
    events.extend(log.into_iter().map(ReplayEvent::from));
    match &runs[1].outcome {
        RankOutcome::Completed(Err(CommError::Corrupted {
            crc_sent, crc_got, ..
        })) => {
            println!(
                "  corrupted link payload rejected: crc sent {crc_sent:#018x} != got {crc_got:#018x}"
            );
        }
        o => panic!("expected Corrupted, got {o:?}"),
    }
    println!(
        "  receiver transport counted {} corrupted message(s)",
        runs[1].report.corrupted_msgs
    );

    let (clean, log) = World::new(machine.clone()).run_with_plan_logged(
        4,
        FaultPlan::new(32u64.wrapping_add(seed)),
        |ctx| {
            let me = ctx.rank();
            for round in 0..8u32 {
                ctx.send((me + 1) % 4, round, vec![me as f64; 257]);
                let _ = ctx.recv((me + 3) % 4, round);
            }
        },
    );
    events.extend(log.into_iter().map(ReplayEvent::from));
    let total: u64 = clean.iter().map(|r| r.report.corrupted_msgs).sum();
    println!("  clean 4-rank ring: {total} corrupted messages (CRC never false-positives)");
    assert_eq!(total, 0);
}

fn coupled_policies(machine: &Machine, budget: usize, replay_log: &mut Vec<ReplayEvent>) {
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let models = model::build_models_with_grid(&scenario, machine, 100.0, &[100, 400, 1600, 6400]);
    let alloc = model::allocate_scenario(&models, budget);
    let clean = sim::run_coupled(&scenario, &alloc, machine, 20);
    println!(
        "\n=== part 5: coupled recovery policies ({} on {} ranks, clean {:.1}s) ===",
        scenario.name,
        alloc.total_ranks(),
        clean.total_runtime
    );
    let events = vec![
        SdcInjection::at(12, SdcSite::SparseKernel),
        SdcInjection::at(40, SdcSite::PhysicsInvariant),
        SdcInjection::at(77, SdcSite::HaloExchange),
    ];
    println!("  3 corruptions injected (iterations 12, 40, 77)\n");
    println!(
        "{:>20} {:>9} {:>10} {:>11} {:>12} {:>10}",
        "policy", "detected", "recovered", "abft(s)", "recovery(s)", "total(s)"
    );
    for policy in [
        SdcPolicy::FlagOnly,
        SdcPolicy::Recompute,
        SdcPolicy::Rollback,
    ] {
        let s = scenario.clone().with_fault(
            FaultScenario::sdc_only(events.clone())
                .with_sdc_policy(policy)
                .with_checkpoint_interval(10),
        );
        let (run, log) = run_coupled_resilient_logged(&s, &alloc, machine, 20);
        replay_log.extend(log.into_iter().map(ReplayEvent::from));
        println!(
            "{:>20} {:>9} {:>10} {:>11.1} {:>12.1} {:>10.1}",
            policy.to_string(),
            run.sdc_detected,
            run.sdc_recovered,
            run.abft_overhead,
            run.recovery_overhead,
            run.total_runtime
        );
        assert_eq!(run.sdc_detected, 3);
        assert!(
            run.abft_overhead / run.total_runtime < 0.10,
            "coupled detector overhead over 10%"
        );
    }

    // Coverage baseline: detectors disarmed, corruption sails through.
    let s = scenario
        .clone()
        .with_fault(FaultScenario::sdc_only(events).with_abft(false));
    let (run, log) = run_coupled_resilient_logged(&s, &alloc, machine, 20);
    replay_log.extend(log.into_iter().map(ReplayEvent::from));
    println!(
        "{:>20} {:>9} {:>10} {:>11.1} {:>12.1} {:>10.1}   <- silent corruption",
        "(abft disarmed)",
        run.sdc_detected,
        run.sdc_recovered,
        run.abft_overhead,
        run.recovery_overhead,
        run.total_runtime
    );
}

struct Args {
    budget: usize,
    seed: u64,
    record: Option<PathBuf>,
    replay: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: sdc_study [budget] [--seed <u64>] [--record <path>] [--replay <path>]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        budget: 2000,
        seed: 0,
        record: None,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--record" => args.record = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--replay" => args.replay = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            s => match s.parse() {
                Ok(b) => args.budget = b,
                Err(_) => usage(),
            },
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let machine = Machine::archer2();
    let mut events: Vec<ReplayEvent> = Vec::new();

    abft_coverage_sweep(args.seed);
    abft_overhead_bench();
    physics_guards();
    comm_crc(&machine, args.seed, &mut events);
    coupled_policies(&machine, args.budget, &mut events);

    println!("\nall SDC study checks passed");

    if let Some(path) = &args.record {
        let trace = Trace {
            label: "sdc_study".to_string(),
            seed: args.seed,
            world_size: 4,
            events: events.clone(),
        };
        match trace.save(path) {
            Ok(()) => println!(
                "recorded {} events to {}",
                trace.events.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.replay {
        let trace = match Trace::load(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot load {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        if trace.seed != args.seed {
            eprintln!(
                "trace {} was recorded with --seed {}, this run used --seed {}",
                path.display(),
                trace.seed,
                args.seed
            );
            std::process::exit(1);
        }
        match verify(&trace.events, &events) {
            Ok(()) => println!(
                "replay ok: {} events match {}",
                events.len(),
                path.display()
            ),
            Err(d) => {
                eprintln!("replay DIVERGED from {}: {d}", path.display());
                std::process::exit(1);
            }
        }
    }
}
