//! Fault-injection study for the resilience layer: what does a rank
//! failure cost a coupled run, as a function of *when* it lands and
//! *which* instance it hits?
//!
//! Part 1 exercises the comm-level fault plan directly — seeded message
//! drops, duplicates and a scheduled rank crash on the threaded virtual
//! MPI runtime. Part 2 sweeps a crash over the coupled small case and
//! prints the predicted recovery overhead of checkpoint/rollback/shrink
//! recovery, plus the checkpoint-interval trade-off.
//!
//! ```text
//! cargo run --release --example fault_study [budget]
//! ```

use cpx_comm::{FaultPlan, RankOutcome, ReduceOp, World};
use cpx_core::prelude::*;
use cpx_core::sim::run_coupled_resilient;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let machine = Machine::archer2();

    // ---- Part 1: the virtual MPI runtime under a fault plan --------
    println!("=== comm layer: 8-rank allreduce under 20% message drop ===");
    let plan = FaultPlan::new(9).with_drop_prob(0.20).with_dup_prob(0.05);
    let runs = World::new(machine.clone()).run_with_plan(8, plan, |ctx| {
        let g = ctx.world();
        g.allreduce_scalar(ctx, ReduceOp::Sum, ctx.rank() as f64 + 1.0)
    });
    for (r, run) in runs.iter().enumerate() {
        if let RankOutcome::Completed(v) = &run.outcome {
            println!(
                "rank {r}: sum={v:.0} retries={} dropped={} recovery={:.1}us",
                run.report.retries,
                run.report.dropped_msgs,
                run.report.recovery_time * 1e6
            );
        }
    }

    println!("\n=== comm layer: rank 2 crashes mid-collective ===");
    let plan = FaultPlan::new(7).with_crash(2, 5e-5);
    let runs = World::new(machine.clone()).run_with_plan(4, plan, |ctx| {
        ctx.compute_secs(1e-4);
        let g = ctx.world();
        g.try_allreduce_scalar(ctx, ReduceOp::Sum, 1.0)
    });
    for (r, run) in runs.iter().enumerate() {
        match &run.outcome {
            RankOutcome::Crashed { at } => println!("rank {r}: crashed at t={at:.1e}s"),
            RankOutcome::Completed(Err(e)) => println!("rank {r}: survived, observed {e}"),
            RankOutcome::Completed(Ok(v)) => println!("rank {r}: completed, sum={v}"),
            o => println!("rank {r}: {o:?}"),
        }
    }

    // ---- Part 2: coupled-run recovery sweep ------------------------
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let models = model::build_models_with_grid(&scenario, &machine, 100.0, &[100, 400, 1600, 6400]);
    let alloc = model::allocate_scenario(&models, budget);
    let clean = sim::run_coupled(&scenario, &alloc, &machine, 20);
    println!(
        "\n=== coupled recovery: {} on {} ranks, clean runtime {:.1}s ===",
        scenario.name,
        alloc.total_ranks(),
        clean.total_runtime
    );
    println!("checkpoints every 10 density iterations; crash loses one rank\n");

    println!(
        "{:>8} {:>18} {:>8} {:>12} {:>11} {:>9}",
        "crash@", "instance", "ranks", "overhead(s)", "overhead(%)", "ckpt(s)"
    );
    for (app, inst) in scenario.apps.iter().enumerate() {
        for frac in [0.25, 0.5, 0.75] {
            let faulty = scenario.clone().with_fault(
                FaultScenario::crash(app, clean.total_runtime * frac).with_checkpoint_interval(10),
            );
            let run = run_coupled_resilient(&faulty, &alloc, &machine, 20);
            println!(
                "{:>7.0}% {:>18} {:>8} {:>12.1} {:>10.1}% {:>9.1}",
                frac * 100.0,
                inst.name,
                alloc.app_ranks[app],
                run.recovery_overhead,
                run.recovery_overhead / run.total_runtime * 100.0,
                run.checkpoint_cost
            );
        }
    }

    println!("\n--- checkpoint-interval trade-off (crash at 50%, instance 1) ---");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "K", "ckpt(s)", "overhead(s)", "total(s)"
    );
    for k in [5u64, 10, 20, 50] {
        let faulty = scenario.clone().with_fault(
            FaultScenario::crash(0, clean.total_runtime * 0.5).with_checkpoint_interval(k),
        );
        let run = run_coupled_resilient(&faulty, &alloc, &machine, 20);
        println!(
            "{k:>6} {:>12.1} {:>12.1} {:>12.1}",
            run.checkpoint_cost, run.recovery_overhead, run.total_runtime
        );
    }

    println!("\n--- dropped CU exchanges: stale-data fallback ---");
    let faulty = scenario.clone().with_fault(
        FaultScenario::crash(0, clean.total_runtime * 10.0) // no crash
            .with_dropped_exchanges(vec![0, 7, 20]),
    );
    let run = run_coupled_resilient(&faulty, &alloc, &machine, 20);
    println!(
        "{} exchanges fell back to the last-good mapping; overhead {:.1}s",
        run.stale_exchanges, run.recovery_overhead
    );
}
