//! Fault-injection study for the resilience layer: what does a rank
//! failure cost a coupled run, as a function of *when* it lands and
//! *which* instance it hits?
//!
//! Part 1 exercises the comm-level fault plan directly — seeded message
//! drops, duplicates and a scheduled rank crash on the threaded virtual
//! MPI runtime. Part 2 sweeps a crash over the coupled small case and
//! prints the predicted recovery overhead of checkpoint/rollback/shrink
//! recovery, plus the checkpoint-interval trade-off.
//!
//! ```text
//! cargo run --release --example fault_study [budget] \
//!     [--seed <u64>] [--record <path>] [--replay <path>]
//! ```
//!
//! `--seed` perturbs every seeded fault draw (added to the built-in
//! plan seeds; the default 0 reproduces the stock study). `--record`
//! saves the full nondeterminism log — comm events from part 1 and
//! resilience decisions from part 2 — as a `cpx-replay` trace;
//! `--replay` re-drives the study against a saved trace and exits
//! nonzero on the first diverging event.

use std::path::PathBuf;

use cpx_comm::{FaultPlan, RankOutcome, ReduceOp, World};
use cpx_core::prelude::*;
use cpx_core::sim::{run_coupled_resilient_logged, CoupledRun};
use cpx_replay::{verify, ReplayEvent, Trace};

struct Args {
    budget: usize,
    seed: u64,
    record: Option<PathBuf>,
    replay: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!("usage: fault_study [budget] [--seed <u64>] [--record <path>] [--replay <path>]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        budget: 2000,
        seed: 0,
        record: None,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--record" => args.record = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--replay" => args.replay = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            s => match s.parse() {
                Ok(b) => args.budget = b,
                Err(_) => usage(),
            },
        }
    }
    args
}

/// Run the resilient coupled case, folding its resilience decisions
/// into the study's event log.
fn resilient_logged(
    scenario: &Scenario,
    alloc: &Allocation,
    machine: &Machine,
    events: &mut Vec<ReplayEvent>,
) -> CoupledRun {
    let (run, log) = run_coupled_resilient_logged(scenario, alloc, machine, 20);
    events.extend(log.into_iter().map(ReplayEvent::from));
    run
}

fn main() {
    let args = parse_args();
    let budget = args.budget;
    let machine = Machine::archer2();
    let mut events: Vec<ReplayEvent> = Vec::new();

    // ---- Part 1: the virtual MPI runtime under a fault plan --------
    println!("=== comm layer: 8-rank allreduce under 20% message drop ===");
    let plan = FaultPlan::new(9u64.wrapping_add(args.seed))
        .with_drop_prob(0.20)
        .with_dup_prob(0.05);
    let (runs, log) = World::new(machine.clone()).run_with_plan_logged(8, plan, |ctx| {
        let g = ctx.world();
        g.allreduce_scalar(ctx, ReduceOp::Sum, ctx.rank() as f64 + 1.0)
    });
    events.extend(log.into_iter().map(ReplayEvent::from));
    for (r, run) in runs.iter().enumerate() {
        if let RankOutcome::Completed(v) = &run.outcome {
            println!(
                "rank {r}: sum={v:.0} retries={} dropped={} recovery={:.1}us",
                run.report.retries,
                run.report.dropped_msgs,
                run.report.recovery_time * 1e6
            );
        }
    }

    println!("\n=== comm layer: rank 2 crashes mid-collective ===");
    let plan = FaultPlan::new(7u64.wrapping_add(args.seed)).with_crash(2, 5e-5);
    let (runs, log) = World::new(machine.clone()).run_with_plan_logged(4, plan, |ctx| {
        ctx.compute_secs(1e-4);
        let g = ctx.world();
        g.try_allreduce_scalar(ctx, ReduceOp::Sum, 1.0)
    });
    events.extend(log.into_iter().map(ReplayEvent::from));
    for (r, run) in runs.iter().enumerate() {
        match &run.outcome {
            RankOutcome::Crashed { at } => println!("rank {r}: crashed at t={at:.1e}s"),
            RankOutcome::Completed(Err(e)) => println!("rank {r}: survived, observed {e}"),
            RankOutcome::Completed(Ok(v)) => println!("rank {r}: completed, sum={v}"),
            o => println!("rank {r}: {o:?}"),
        }
    }

    // ---- Part 2: coupled-run recovery sweep ------------------------
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let models = model::build_models_with_grid(&scenario, &machine, 100.0, &[100, 400, 1600, 6400]);
    let alloc = model::allocate_scenario(&models, budget);
    let clean = sim::run_coupled(&scenario, &alloc, &machine, 20);
    println!(
        "\n=== coupled recovery: {} on {} ranks, clean runtime {:.1}s ===",
        scenario.name,
        alloc.total_ranks(),
        clean.total_runtime
    );
    println!("checkpoints every 10 density iterations; crash loses one rank\n");

    println!(
        "{:>8} {:>18} {:>8} {:>12} {:>11} {:>9}",
        "crash@", "instance", "ranks", "overhead(s)", "overhead(%)", "ckpt(s)"
    );
    for (app, inst) in scenario.apps.iter().enumerate() {
        for frac in [0.25, 0.5, 0.75] {
            let faulty = scenario.clone().with_fault(
                FaultScenario::crash(app, clean.total_runtime * frac).with_checkpoint_interval(10),
            );
            let run = resilient_logged(&faulty, &alloc, &machine, &mut events);
            println!(
                "{:>7.0}% {:>18} {:>8} {:>12.1} {:>10.1}% {:>9.1}",
                frac * 100.0,
                inst.name,
                alloc.app_ranks[app],
                run.recovery_overhead,
                run.recovery_overhead / run.total_runtime * 100.0,
                run.checkpoint_cost
            );
        }
    }

    println!("\n--- checkpoint-interval trade-off (crash at 50%, instance 1) ---");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "K", "ckpt(s)", "overhead(s)", "total(s)"
    );
    for k in [5u64, 10, 20, 50] {
        let faulty = scenario.clone().with_fault(
            FaultScenario::crash(0, clean.total_runtime * 0.5).with_checkpoint_interval(k),
        );
        let run = resilient_logged(&faulty, &alloc, &machine, &mut events);
        println!(
            "{k:>6} {:>12.1} {:>12.1} {:>12.1}",
            run.checkpoint_cost, run.recovery_overhead, run.total_runtime
        );
    }

    println!("\n--- dropped CU exchanges: stale-data fallback ---");
    let faulty = scenario.clone().with_fault(
        FaultScenario::crash(0, clean.total_runtime * 10.0) // no crash
            .with_dropped_exchanges(vec![0, 7, 20]),
    );
    let run = resilient_logged(&faulty, &alloc, &machine, &mut events);
    println!(
        "{} exchanges fell back to the last-good mapping; overhead {:.1}s",
        run.stale_exchanges, run.recovery_overhead
    );

    finish_record_replay(
        "fault_study",
        args.seed,
        8,
        events,
        &args.record,
        &args.replay,
    );
}

/// Shared record/replay tail: save the event log and/or verify it
/// against a previously recorded trace, exiting nonzero on divergence.
fn finish_record_replay(
    label: &str,
    seed: u64,
    world_size: u32,
    events: Vec<ReplayEvent>,
    record: &Option<PathBuf>,
    replay: &Option<PathBuf>,
) {
    if let Some(path) = record {
        let trace = Trace {
            label: label.to_string(),
            seed,
            world_size,
            events: events.clone(),
        };
        match trace.save(path) {
            Ok(()) => println!(
                "\nrecorded {} events to {}",
                trace.events.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = replay {
        let trace = match Trace::load(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot load {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        if trace.seed != seed {
            eprintln!(
                "trace {} was recorded with --seed {}, this run used --seed {seed}",
                path.display(),
                trace.seed
            );
            std::process::exit(1);
        }
        match verify(&trace.events, &events) {
            Ok(()) => println!(
                "\nreplay ok: {} events match {}",
                events.len(),
                path.display()
            ),
            Err(d) => {
                eprintln!("\nreplay DIVERGED from {}: {d}", path.display());
                std::process::exit(1);
            }
        }
    }
}
