//! The §IV optimization study, run on real kernels: compare the SpGEMM
//! variants, the smoother choices, the prolongator kinds and the donor
//! search algorithms that the paper's pressure-field and coupling
//! optimizations are built from — and then show their modelled effect on
//! the pressure solver's scaling (Fig 6a).
//!
//! ```text
//! cargo run --release --example optimization_study
//! ```

use std::time::Instant;

use cpx_amg::{
    pcg, CgConfig, CycleType, Hierarchy, HierarchyConfig, InterpKind, Preconditioner, Smoother,
};
use cpx_coupler::search::{BruteSearch, KdTree2};
use cpx_machine::Machine;
use cpx_pressure::{PressureConfig, PressureTraceModel};
use cpx_sparse::spgemm::{spgemm_hash, spgemm_spa, spgemm_twopass};
use cpx_sparse::Csr;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    println!("=== SpGEMM variants (A·A, 2-D Poisson 128x128) ===");
    let a = Csr::poisson2d(128, 128);
    for (name, f) in [
        (
            "two-pass (baseline)",
            (|a: &Csr| spgemm_twopass(a, a)) as fn(&Csr) -> _,
        ),
        ("SPA single-pass", |a: &Csr| spgemm_spa(a, a, 8)),
        ("hash accumulation", |a: &Csr| spgemm_hash(a, a)),
    ] {
        let t0 = Instant::now();
        let out = f(&a);
        println!(
            "  {name:<22} {:>8.2?}  (passes over inputs: {}, modelled bytes {:.1}M)",
            t0.elapsed(),
            out.stats.input_passes,
            out.stats.bytes() / 1e6
        );
    }

    println!("\n=== AMG-PCG on 3-D Poisson 24^3: smoother x interpolation ===");
    let a3 = Csr::poisson3d(24, 24, 24);
    let n = a3.nrows();
    let x_exact: Vec<f64> = (0..n).map(|i| ((i * 17 % 23) as f64) / 23.0).collect();
    let mut b = vec![0.0; n];
    a3.spmv(&x_exact, &mut b);
    for (sname, smoother) in [
        ("Jacobi", Smoother::Jacobi { omega: 0.8 }),
        (
            "hybrid GS (paper)",
            Smoother::HybridGaussSeidel { blocks: 8 },
        ),
    ] {
        for (iname, interp) in [
            ("smoothed", InterpKind::Smoothed { omega: 0.66 }),
            ("extended+i (paper)", InterpKind::ExtendedI { omega: 0.66 }),
        ] {
            let h = Hierarchy::build(
                a3.clone(),
                HierarchyConfig {
                    smoother,
                    interp,
                    ..HierarchyConfig::default()
                },
            );
            let mut x = vec![0.0; n];
            let out = pcg(
                &a3,
                &b,
                &mut x,
                &Preconditioner::Amg {
                    hierarchy: &h,
                    cycle: CycleType::V,
                },
                CgConfig::default(),
            );
            println!(
                "  {sname:<18} + {iname:<18} -> {:>3} iterations (setup {:.1}M flops)",
                out.iters,
                h.setup_stats().flops / 1e6
            );
        }
    }

    println!("\n=== Donor search (20k donors, 5k queries) ===");
    let mut rng = StdRng::seed_from_u64(7);
    let donors: Vec<[f64; 2]> = (0..20_000)
        .map(|_| {
            [
                rng.gen_range(1.0..2.0),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ]
        })
        .collect();
    let queries: Vec<[f64; 2]> = (0..5_000)
        .map(|_| {
            [
                rng.gen_range(1.0..2.0),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ]
        })
        .collect();
    let t0 = Instant::now();
    let brute = BruteSearch::new(donors.clone(), None).map_all(&queries);
    let t_brute = t0.elapsed();
    let t0 = Instant::now();
    let tree = KdTree2::build(&donors, None);
    let tree_map = tree.map_all(&queries);
    let t_tree = t0.elapsed();
    assert_eq!(brute.len(), tree_map.len());
    println!("  brute force: {t_brute:>10.2?}");
    println!(
        "  k-d tree:    {t_tree:>10.2?}  ({:.0}x faster)",
        t_brute.as_secs_f64() / t_tree.as_secs_f64()
    );

    println!("\n=== Modelled effect on the pressure solver (Fig 6a) ===");
    let machine = Machine::archer2();
    let base = PressureTraceModel::new(PressureConfig::swirl_28m());
    let opt = PressureTraceModel::new(PressureConfig::swirl_28m().optimized());
    println!(
        "  {:>8} {:>12} {:>12} {:>9}",
        "ranks", "base t/step", "opt t/step", "speedup"
    );
    for p in [512usize, 1024, 2048, 4096] {
        let tb = base.per_step_runtime(p, &machine);
        let to = opt.per_step_runtime(p, &machine);
        println!("  {p:>8} {tb:>11.2}s {to:>11.2}s {:>8.1}x", tb / to);
    }
}
