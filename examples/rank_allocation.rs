//! Explore Algorithm 1 interactively: how does the optimal rank
//! distribution change with the core budget? Reproduces the paper's
//! observation that beyond the pressure solver's scaling sweet spot the
//! extra budget cannot buy runtime (Base-STC), while the optimized
//! variant keeps absorbing cores productively.
//!
//! ```text
//! cargo run --release --example rank_allocation
//! ```

use cpx_core::prelude::*;

fn main() {
    let machine = Machine::archer2();
    let grid = [
        100usize, 200, 400, 800, 1600, 3200, 6400, 12_800, 25_600, 40_000,
    ];

    for variant in [StcVariant::Base, StcVariant::Optimized] {
        let scenario = testcases::large_engine(variant);
        let models = model::build_models_with_grid(&scenario, &machine, 1000.0, &grid);
        println!("\n=== {} ===", scenario.name);
        println!(
            "{:>8} {:>10} {:>12} {:>14} {:>12}",
            "budget", "allocated", "SIMPIC", "runtime (s)", "vs 10k"
        );
        let mut t10k = None;
        for budget in [10_000usize, 20_000, 30_000, 40_000, 60_000] {
            let alloc = model::allocate_scenario(&models, budget);
            let t = alloc.predicted_runtime();
            if t10k.is_none() {
                t10k = Some(t);
            }
            println!(
                "{:>8} {:>10} {:>12} {:>14.0} {:>11.2}x",
                budget,
                alloc.total_ranks(),
                alloc.app_ranks[13],
                t,
                t10k.unwrap() / t
            );
        }
    }
    println!(
        "\nNote how the Base-STC stops absorbing budget once SIMPIC reaches its \
         scaling sweet spot (the paper's ~13k-rank plateau), while the \
         Optimized-STC keeps converting cores into speedup."
    );
}
