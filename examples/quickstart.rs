//! Quickstart: build the coupled scenario, fit the empirical model, run
//! Algorithm 1, and validate the prediction against a coupled virtual
//! run — the paper's whole workflow in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpx_core::prelude::*;

fn main() {
    // The small validation case: two MG-CFD Rotor 37 instances and a
    // SIMPIC pressure proxy (Fig 8a), on an ARCHER2-class machine.
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let machine = Machine::archer2();
    println!(
        "scenario: {} ({:.0}M cells effective)",
        scenario.name,
        scenario.total_cells() / 1e6
    );

    // 1. Benchmark the mini-apps standalone and fit runtime curves
    //    (Fig 7 workflow). The grid is the rank counts benchmarked.
    let models = model::build_models_with_grid(
        &scenario,
        &machine,
        scenario.density_iters as f64,
        &[100, 200, 400, 800, 1600, 3200, 5000],
    );

    // 2. Algorithm 1: distribute a 5,000-core budget.
    let alloc = model::allocate_scenario(&models, 5000);
    for (app, (&ranks, &time)) in scenario
        .apps
        .iter()
        .zip(alloc.app_ranks.iter().zip(&alloc.app_times))
    {
        println!(
            "  {:<20} {:>5} ranks, predicted {:>8.1}s",
            app.name, ranks, time
        );
    }
    println!(
        "predicted coupled runtime: {:.1}s",
        alloc.predicted_runtime()
    );

    // 3. Run the coupled simulation on the virtual testbed and compare.
    let run = sim::run_coupled(&scenario, &alloc, &machine, 20);
    println!(
        "measured coupled runtime:  {:.1}s (coupling overhead {:.2}%)",
        run.total_runtime,
        run.coupling_overhead * 100.0
    );
    let err = (alloc.predicted_runtime() - run.total_runtime).abs() / run.total_runtime;
    println!("prediction error: {:.1}%", err * 100.0);
}
