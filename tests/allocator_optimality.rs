//! Algorithm 1 vs exhaustive search: on problems small enough to brute-
//! force, the greedy allocation must be (near-)optimal — the property
//! the paper's whole resource-distribution methodology rests on.

use cpx_perfmodel::{allocate, AllocConfig, InstanceModel, RuntimeCurve};

fn instance(name: &str, a: f64, c: f64, d: f64) -> InstanceModel {
    InstanceModel::new(
        name,
        RuntimeCurve { a, b: 0.0, c, d },
        1.0,
        1.0,
        1.0,
        1.0,
        1,
    )
}

/// Exhaustive best runtime for two apps (+ optional CU) and a budget.
fn brute_force_two_apps(
    apps: &[InstanceModel; 2],
    cu: Option<&InstanceModel>,
    budget: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    let cu_range = if cu.is_some() { 1..budget - 1 } else { 1..2 };
    for cu_ranks in cu_range {
        let app_budget = if cu.is_some() {
            budget - cu_ranks
        } else {
            budget
        };
        for p0 in 1..app_budget {
            let p1 = app_budget - p0;
            if p1 < 1 {
                continue;
            }
            let apps_max = apps[0].predicted_time(p0).max(apps[1].predicted_time(p1));
            let cu_time = cu.map(|m| m.predicted_time(cu_ranks)).unwrap_or(0.0);
            best = best.min(apps_max + cu_time);
        }
    }
    best
}

#[test]
fn greedy_matches_exhaustive_without_cus() {
    for (a0, a1) in [(100.0, 100.0), (100.0, 350.0), (20.0, 900.0)] {
        let apps = [instance("a", a0, 0.0, 0.0), instance("b", a1, 0.0, 0.0)];
        let budget = 60;
        let greedy = allocate(&apps, &[], AllocConfig { budget }).predicted_runtime();
        let optimal = brute_force_two_apps(&apps, None, budget);
        assert!(
            greedy <= optimal * 1.05,
            "a=({a0},{a1}): greedy {greedy} vs optimal {optimal}"
        );
    }
}

#[test]
fn greedy_matches_exhaustive_with_cu() {
    let apps = [
        instance("a", 150.0, 0.0, 0.0),
        instance("b", 90.0, 0.0, 0.0),
    ];
    let cu = instance("cu", 40.0, 0.0, 0.0);
    let budget = 50;
    let greedy =
        allocate(&apps, std::slice::from_ref(&cu), AllocConfig { budget }).predicted_runtime();
    let optimal = brute_force_two_apps(&apps, Some(&cu), budget);
    assert!(
        greedy <= optimal * 1.08,
        "greedy {greedy} vs optimal {optimal}"
    );
}

#[test]
fn greedy_near_optimal_with_saturating_instance() {
    // One instance has a pipeline term (sweet spot inside the budget);
    // greedy must not lose much to the exhaustive optimum.
    let apps = [
        instance("pipeline", 400.0, 0.0, 0.5), // sweet spot ≈ √800 ≈ 28
        instance("ideal", 200.0, 0.0, 0.0),
    ];
    let budget = 80;
    let greedy = allocate(&apps, &[], AllocConfig { budget }).predicted_runtime();
    let optimal = brute_force_two_apps(&apps, None, budget);
    assert!(
        greedy <= optimal * 1.10,
        "greedy {greedy} vs optimal {optimal}"
    );
}

#[test]
fn greedy_handles_log_terms() {
    let apps = [
        instance("collective-bound", 300.0, 0.3, 0.0),
        instance("ideal", 150.0, 0.0, 0.0),
    ];
    let budget = 70;
    let greedy = allocate(&apps, &[], AllocConfig { budget }).predicted_runtime();
    let optimal = brute_force_two_apps(&apps, None, budget);
    assert!(
        greedy <= optimal * 1.08,
        "greedy {greedy} vs optimal {optimal}"
    );
}
