//! Cross-cutting determinism properties of the `cpx-par` kernel layer.
//!
//! The contract: for a fixed chunk count, every threaded kernel is
//! **bit-identical** to its serial execution for *any* thread count —
//! including adversarial chunk counts (0, 1, more chunks than rows).
//! These tests drive the explicit-pool `*_with` variants so they can
//! sweep thread counts without mutating process-global pool state.

use proptest::prelude::*;

use cpx_par::ParPool;
use cpx_pressure::spray::SprayCloud;
use cpx_simpic::config::SimpicConfig;
use cpx_simpic::pic::Pic1D;
use cpx_sparse::coo::Coo;
use cpx_sparse::csr::Csr;
use cpx_sparse::renumber::renumber_hash_merge_with;
use cpx_sparse::spgemm::{spgemm_hash_with, spgemm_spa_with};

const THREADS: &[usize] = &[1, 2, 4, 8];

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -100i32..100), 0..max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(nr, nc);
            for (r, c, v) in trips {
                coo.push(r, c, v as f64 * 0.25);
            }
            coo.to_csr()
        })
    })
}

/// Adversarial chunk counts for a problem with `n` rows/items: zero
/// (clamped to one), one, a few, and more chunks than items.
fn chunk_counts(n: usize) -> [usize; 4] {
    [0, 1, 3, n + 7]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spmv_bit_identical(a in arb_csr(24, 100)) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
        let mut y_ref = vec![0.0; a.nrows()];
        a.spmv_with(&ParPool::serial(), 1, &x, &mut y_ref);
        for &t in THREADS {
            for chunks in chunk_counts(a.nrows()) {
                let mut y = vec![0.0; a.nrows()];
                a.spmv_with(&ParPool::with_threads(t), chunks, &x, &mut y);
                prop_assert_eq!(&y, &y_ref, "threads={} chunks={}", t, chunks);
            }
        }
    }

    #[test]
    fn spmv_identity_top_bit_identical(a in arb_csr(24, 100), kf in 0.0f64..1.0) {
        // Square it so the identity-top contract (x and y same length)
        // holds.
        let a = spgemm_spa_with(&ParPool::serial(), &a.transpose(), &a, 1).product;
        let k = (kf * a.nrows() as f64) as usize;
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).cos()).collect();
        let mut y_ref = vec![0.0; a.nrows()];
        a.spmv_identity_top_with(&ParPool::serial(), 1, k, &x, &mut y_ref);
        for &t in THREADS {
            for chunks in chunk_counts(a.nrows()) {
                let mut y = vec![0.0; a.nrows()];
                a.spmv_identity_top_with(&ParPool::with_threads(t), chunks, k, &x, &mut y);
                prop_assert_eq!(&y, &y_ref, "threads={} chunks={}", t, chunks);
            }
        }
    }

    #[test]
    fn spgemm_spa_bit_identical(seed in 0u64..500) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (n, k, m) = (
            rng.gen_range(1..20usize),
            rng.gen_range(1..20usize),
            rng.gen_range(1..20usize),
        );
        let mut ca = Coo::new(n, k);
        let mut cb = Coo::new(k, m);
        for _ in 0..rng.gen_range(0..60) {
            ca.push(rng.gen_range(0..n), rng.gen_range(0..k), rng.gen_range(-2.0..2.0));
        }
        for _ in 0..rng.gen_range(0..60) {
            cb.push(rng.gen_range(0..k), rng.gen_range(0..m), rng.gen_range(-2.0..2.0));
        }
        let (a, b) = (ca.to_csr(), cb.to_csr());
        let reference = spgemm_spa_with(&ParPool::serial(), &a, &b, 1).product;
        for &t in THREADS {
            for chunks in chunk_counts(n) {
                let spa = spgemm_spa_with(&ParPool::with_threads(t), &a, &b, chunks).product;
                prop_assert_eq!(&spa, &reference, "spa threads={} chunks={}", t, chunks);
                let hash = spgemm_hash_with(&ParPool::with_threads(t), &a, &b, chunks).product;
                prop_assert_eq!(&hash, &reference, "hash threads={} chunks={}", t, chunks);
            }
        }
    }

    #[test]
    fn renumber_bit_identical(refs in proptest::collection::vec(0u64..600, 0..500), workers in 1usize..17) {
        let reference = renumber_hash_merge_with(&ParPool::serial(), &refs, workers);
        for &t in THREADS {
            let r = renumber_hash_merge_with(&ParPool::with_threads(t), &refs, workers);
            prop_assert_eq!(&r.table, &reference.table, "threads={}", t);
            // The modelled stats are keyed to `workers`, not the pool.
            prop_assert_eq!(r.stats, reference.stats, "threads={}", t);
        }
    }

    #[test]
    fn hybrid_gs_sweep_bit_identical(n in 2usize..40, blocks in 0usize..50) {
        use cpx_amg::Smoother;
        let a = Csr::poisson1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let smoother = Smoother::HybridGaussSeidel { blocks: blocks.max(1) };
        let mut x_ref: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        smoother.sweep_with(&ParPool::serial(), &a, &b, &mut x_ref);
        for &t in THREADS {
            let mut x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            smoother.sweep_with(&ParPool::with_threads(t), &a, &b, &mut x);
            prop_assert_eq!(&x, &x_ref, "threads={}", t);
        }
    }

    #[test]
    fn particle_push_bit_identical(cells in 8usize..64, seed in 0u64..100) {
        let cfg = SimpicConfig::base_28m().functional(cells, 5);
        let mut pic = Pic1D::quiet_start(&cfg, 0.02, seed);
        pic.solve_field();
        let frozen = pic.clone();
        let mut reference = frozen.clone();
        reference.push_with(&ParPool::serial(), 1);
        for &t in THREADS {
            for chunks in chunk_counts(frozen.particles.len()) {
                let mut p = frozen.clone();
                p.push_with(&ParPool::with_threads(t), chunks);
                prop_assert_eq!(&p.particles, &reference.particles,
                    "threads={} chunks={}", t, chunks);
            }
        }
    }

    #[test]
    fn spray_update_bit_identical(n in 1usize..3000, seed in 0u64..100) {
        let frozen = SprayCloud::inject(n, seed);
        let fluid = |x: [f64; 3]| [1.0 - x[1], 0.1 * x[0], -0.2 * x[2]];
        let mut reference = frozen.clone();
        reference.update_with(&ParPool::serial(), 1, 0.01, fluid);
        for &t in THREADS {
            for chunks in chunk_counts(n) {
                let mut c = frozen.clone();
                c.update_with(&ParPool::with_threads(t), chunks, 0.01, fluid);
                prop_assert_eq!(&c.pos, &reference.pos, "threads={} chunks={}", t, chunks);
                prop_assert_eq!(&c.vel, &reference.vel, "threads={} chunks={}", t, chunks);
            }
        }
    }
}
