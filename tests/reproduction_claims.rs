//! Integration tests pinning the paper's headline claims on the virtual
//! testbed — the executable form of EXPERIMENTS.md. Each test names the
//! figure it guards.

use cpx_machine::Machine;
use cpx_pressure::{PressureConfig, PressurePhase, PressureTraceModel};
use cpx_simpic::{SimpicConfig, SimpicTraceModel};

fn machine() -> Machine {
    Machine::archer2()
}

fn pe(points: &[(usize, f64)], i: usize) -> f64 {
    let (p0, t0) = points[0];
    let (p, t) = points[i];
    (t0 * p0 as f64) / (t * p as f64)
}

/// Fig 4b: the 28M-cell pressure solver and its SIMPIC proxy both fall
/// below 50% parallel efficiency in the ~3,000–5,000 core region, and
/// the proxy tracks the solver within the paper's error band.
#[test]
fn fig4_proxy_tracks_pressure_solver() {
    let m = machine();
    let press = PressureTraceModel::new(PressureConfig::swirl_28m());
    let simp = SimpicTraceModel::new(SimpicConfig::base_28m());
    let sweep = [128usize, 512, 2048, 4096];
    let pp: Vec<(usize, f64)> = sweep
        .iter()
        .map(|&p| (p, press.per_step_runtime(p, &m)))
        .collect();
    let sp: Vec<(usize, f64)> = sweep
        .iter()
        .map(|&p| (p, simp.per_pressure_step_runtime(p, &m)))
        .collect();
    // Knee location.
    assert!(pe(&pp, 2) > 0.5, "pressure PE at 2048 = {}", pe(&pp, 2));
    assert!(pe(&pp, 3) < 0.5, "pressure PE at 4096 = {}", pe(&pp, 3));
    // Tracking error.
    let max_err = pp
        .iter()
        .zip(&sp)
        .map(|(&(_, a), &(_, b))| (a - b).abs() / a)
        .fold(0.0, f64::max);
    assert!(max_err < 0.25, "proxy max error {max_err}");
}

/// Fig 4c: the 380M-equivalent base case speeds up ~6× from 1,000 to
/// 10,000 cores (paper: "maximum speedup of about 6x").
#[test]
fn fig4c_large_case_speedup() {
    let m = machine();
    let simp = SimpicTraceModel::new(SimpicConfig::base_380m());
    let s = simp.per_pressure_step_runtime(1000, &m) / simp.per_pressure_step_runtime(10_000, &m);
    assert!((4.5..8.5).contains(&s), "1k→10k speedup {s}");
}

/// Fig 5a at 2048 cores: pressure field ≈46% of runtime (~25% compute +
/// ~21% comm); spray next-biggest with >90% of its time in
/// communication.
#[test]
fn fig5a_profile_shares() {
    let m = machine();
    let model = PressureTraceModel::new(PressureConfig::swirl_28m());
    let (step, _, ph) = model.profile(2048, &m, 2);
    let total = step * 2.0;
    let share = |phase: PressurePhase| {
        let id = phase.id() as usize;
        (
            ph.compute[id].iter().sum::<f64>() / 2048.0 / total,
            ph.comm[id].iter().sum::<f64>() / 2048.0 / total,
        )
    };
    let (pf_c, pf_m) = share(PressurePhase::PressureField);
    assert!((0.40..0.52).contains(&(pf_c + pf_m)), "pf {}", pf_c + pf_m);
    let (sp_c, sp_m) = share(PressurePhase::Spray);
    assert!(sp_m / (sp_c + sp_m) > 0.9, "spray comm frac");
    // Ordering: pressure field > spray > each transport phase.
    let (v_c, v_m) = share(PressurePhase::Velocity);
    assert!(pf_c + pf_m > sp_c + sp_m);
    assert!(sp_c + sp_m > v_c + v_m);
}

/// Fig 6a: the §IV-optimized solver holds markedly higher efficiency
/// than the base at 4,096 cores.
#[test]
fn fig6a_optimizations_lift_efficiency() {
    let m = machine();
    let sweep = [128usize, 4096];
    let run = |cfg: PressureConfig| -> Vec<(usize, f64)> {
        let model = PressureTraceModel::new(cfg);
        sweep
            .iter()
            .map(|&p| (p, model.per_step_runtime(p, &m)))
            .collect()
    };
    let base = run(PressureConfig::swirl_28m());
    let opt = run(PressureConfig::swirl_28m().optimized());
    assert!(
        pe(&opt, 1) > pe(&base, 1) + 0.2,
        "opt {} base {}",
        pe(&opt, 1),
        pe(&base, 1)
    );
    // And the optimized code is actually faster in absolute terms.
    assert!(opt[1].1 < base[1].1 / 2.0);
}

/// Fig 6b/c: the Optimized-STC matches the theoretically-optimized
/// pressure solver across the production rank range.
#[test]
fn fig6bc_optimized_stc_equivalence() {
    let m = machine();
    let press = PressureTraceModel::new(PressureConfig::full_380m().optimized());
    let simp = SimpicTraceModel::new(SimpicConfig::optimized_stc());
    let mut max_err: f64 = 0.0;
    for p in [2000usize, 8000, 32_201] {
        let a = press.per_step_runtime(p, &m);
        let b = simp.per_pressure_step_runtime(p, &m);
        max_err = max_err.max((a - b).abs() / a);
    }
    assert!(max_err < 0.15, "Optimized-STC error {max_err}");
}

/// Fig 9b structure: Algorithm 1 on the large engine gives the Base-STC
/// SIMPIC its scaling sweet spot (paper: 13,428) and pins the small
/// compressor rows at the 100-rank floor; the Optimized-STC absorbs the
/// large majority of the 40,000-core budget (paper: 32,201).
#[test]
fn fig9b_allocation_structure() {
    use cpx_core::prelude::*;
    let m = machine();
    let grid = [100usize, 400, 1600, 6400, 25_600, 40_000];
    // Base-STC.
    let scenario = testcases::large_engine(StcVariant::Base);
    let models = model::build_models_with_grid(&scenario, &m, 1000.0, &grid);
    let alloc = model::allocate_scenario(&models, 40_000);
    let simpic = alloc.app_ranks[13];
    assert!(
        (9_000..22_000).contains(&simpic),
        "Base-STC SIMPIC ranks {simpic} (paper: 13,428)"
    );
    for i in 1..=11 {
        assert_eq!(alloc.app_ranks[i], 100, "24M row {} pinned at floor", i + 1);
    }
    // The unallocated remainder is parked (the paper's "impact would be
    // negligible" situation).
    assert!(alloc.total_ranks() < 40_000);

    // Optimized-STC.
    let scenario = testcases::large_engine(StcVariant::Optimized);
    let models = model::build_models_with_grid(&scenario, &m, 1000.0, &grid);
    let alloc = model::allocate_scenario(&models, 40_000);
    let simpic = alloc.app_ranks[13];
    assert!(
        (26_000..39_000).contains(&simpic),
        "Optimized-STC SIMPIC ranks {simpic} (paper: 32,201)"
    );
    // The turbine rows now receive serious allocations too.
    assert!(
        alloc.app_ranks[15] > 500,
        "300M row got {}",
        alloc.app_ranks[15]
    );
}

/// Fig 9c: the optimized pipeline is predicted several times faster for
/// one revolution, with coupling overhead below 0.5%.
#[test]
fn fig9c_revolution_speedup() {
    use cpx_core::prelude::*;
    let m = machine();
    let grid = [100usize, 400, 1600, 6400, 25_600, 40_000];
    let mut runtimes = Vec::new();
    for variant in [StcVariant::Base, StcVariant::Optimized] {
        let scenario = testcases::large_engine(variant);
        let models = model::build_models_with_grid(&scenario, &m, 1000.0, &grid);
        let alloc = model::allocate_scenario(&models, 40_000);
        let run = sim::run_coupled(&scenario, &alloc, &m, 20);
        assert!(
            run.coupling_overhead < 0.005,
            "coupling overhead {}",
            run.coupling_overhead
        );
        runtimes.push((alloc.predicted_runtime(), run.total_runtime));
    }
    let predicted = runtimes[0].0 / runtimes[1].0;
    let measured = runtimes[0].1 / runtimes[1].1;
    assert!(
        (3.5..9.5).contains(&predicted),
        "predicted revolution speedup {predicted} (paper: ~6x, ideal 7.5x)"
    );
    assert!(
        (3.5..9.5).contains(&measured),
        "measured revolution speedup {measured} (paper: ~4x)"
    );
    // Model within the paper's 25% validation band.
    for (pred, meas) in &runtimes {
        assert!((pred - meas).abs() / meas < 0.25);
    }
}
