//! Steady-state allocation contracts of the hot kernels: after one
//! warm-up invocation, the SpMV kernels (CSR and SELL-C-σ), the hybrid
//! Gauss–Seidel sweep through a reused [`cpx_amg::SweepScratch`], and
//! the arena-SPA SpGEMM through a reused
//! [`cpx_sparse::spgemm::SpaWorkspace`] must not touch the allocator at
//! all — the layouts, scratch arenas and output buffers are sized once
//! and reused. Uses the same counting global allocator as
//! `tests/netstats_overhead.rs` (its own test binary, since a
//! `#[global_allocator]` is process-wide).
//!
//! All assertions run the serial pool: the claim is about the kernels'
//! own buffer discipline, not about thread-spawn bookkeeping (and the
//! thread-local counter only sees this thread anyway).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cpx_amg::{Smoother, SweepScratch};
use cpx_par::ParPool;
use cpx_sparse::spgemm::{spgemm_spa_reuse, SpaWorkspace};
use cpx_sparse::{Csr, SellCSigma};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Run `f` once (warm-up), then `reps` more times counting allocations.
fn steady_state_allocs(reps: usize, mut f: impl FnMut()) -> u64 {
    f();
    let before = allocs_on_this_thread();
    for _ in 0..reps {
        f();
    }
    allocs_on_this_thread() - before
}

#[test]
fn csr_spmv_is_allocation_free_in_steady_state() {
    let a = Csr::poisson3d(12, 12, 12);
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; a.nrows()];
    let pool = ParPool::serial();
    let allocs = steady_state_allocs(50, || {
        a.spmv_with(&pool, 8, &x, &mut y);
    });
    assert_eq!(allocs, 0, "CSR spmv must not allocate after warm-up");
}

#[test]
fn sell_spmv_is_allocation_free_in_steady_state() {
    let a = Csr::poisson3d(12, 12, 12);
    let sell = SellCSigma::from_csr(&a, 16, 256);
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; a.nrows()];
    let allocs = steady_state_allocs(50, || {
        sell.spmv(&x, &mut y);
    });
    assert_eq!(allocs, 0, "SELL spmv must not allocate after warm-up");
    // The parallel entry point on a serial pool takes the same
    // zero-allocation fast path.
    let pool = ParPool::serial();
    let allocs = steady_state_allocs(50, || {
        sell.spmv_with(&pool, 8, &x, &mut y);
    });
    assert_eq!(allocs, 0, "serial-pool SELL spmv must not allocate");
}

#[test]
fn hybrid_gs_sweep_through_scratch_is_allocation_free() {
    let a = Csr::poisson2d(40, 40);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let mut x = vec![0.0; n];
    let smoother = Smoother::HybridGaussSeidel { blocks: 8 };
    let pool = ParPool::serial();
    let mut scratch = SweepScratch::new();
    let allocs = steady_state_allocs(20, || {
        smoother.sweep_scratch_with(&pool, &a, &b, &mut x, &mut scratch);
    });
    assert_eq!(
        allocs, 0,
        "hybrid GS through a reused scratch must not allocate"
    );
    // Sanity: the convenience wrapper without a caller-held scratch
    // does allocate its frozen-iterate buffer — the contract is about
    // the scratch path, not magic.
    let wrapper_allocs = steady_state_allocs(5, || {
        smoother.sweep_with(&pool, &a, &b, &mut x);
    });
    assert!(wrapper_allocs > 0, "scratch-less wrapper allocates");
}

#[test]
fn arena_spa_spgemm_is_allocation_free_in_steady_state() {
    let a = Csr::poisson2d(24, 24);
    let pool = ParPool::serial();
    let mut ws = SpaWorkspace::new();
    let mut rowptr = Vec::new();
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    let allocs = steady_state_allocs(20, || {
        spgemm_spa_reuse(
            &pool,
            &a,
            &a,
            4,
            &mut ws,
            &mut rowptr,
            &mut colidx,
            &mut vals,
        );
    });
    assert_eq!(
        allocs, 0,
        "arena-SPA SpGEMM with reused workspace and output buffers \
         must not allocate after warm-up"
    );
    // The warm-sized product is still the real product.
    let expected = cpx_sparse::spgemm::spgemm_spa_with(&pool, &a, &a, 4).product;
    assert_eq!(rowptr, expected.rowptr().to_vec());
    assert_eq!(vals, expected.vals().to_vec());
}
