//! Cross-validation of the two execution backends: the threaded
//! virtual-time runtime (`cpx-comm`) and the discrete-event trace
//! replayer (`cpx-machine`) must agree on the timing of identical
//! communication patterns — the replayer is the testbed stand-in, the
//! threaded runtime is the functional reference.

use cpx_comm::{ReduceOp, World};
use cpx_machine::{CollectiveKind, KernelCost, Machine, Replayer, TraceProgram};

/// Ring halo exchange + compute, threaded.
fn threaded_ring(n: usize, steps: usize, flops: f64, bytes: usize) -> f64 {
    let res = World::new(Machine::archer2()).run(n, move |ctx| {
        let me = ctx.rank();
        let p = ctx.size();
        for _ in 0..steps {
            ctx.compute(KernelCost::new(flops, flops));
            ctx.send((me + 1) % p, 7, vec![0.0f64; bytes / 8]);
            let _ = ctx.recv((me + p - 1) % p, 7);
        }
        ctx.now()
    });
    res.iter().map(|(t, _)| *t).fold(0.0, f64::max)
}

/// The same pattern as a trace program.
fn des_ring(n: usize, steps: u32, flops: f64, bytes: usize) -> f64 {
    let mut program = TraceProgram::new(n);
    for r in 0..n {
        let body = vec![
            cpx_machine::Op::Compute(KernelCost::new(flops, flops)),
            cpx_machine::Op::Send {
                dst: (r + 1) % n,
                bytes,
                tag: 7,
            },
            cpx_machine::Op::Recv {
                src: (r + n - 1) % n,
                tag: 7,
            },
        ];
        program
            .rank(r)
            .ops
            .push(cpx_machine::Op::Repeat { count: steps, body });
    }
    Replayer::new(Machine::archer2())
        .run(&program)
        .unwrap()
        .makespan()
}

#[test]
fn ring_pattern_times_agree() {
    for (n, flops, bytes) in [(8usize, 1e7, 8192), (32, 1e6, 1024), (64, 1e8, 65_536)] {
        let t_threaded = threaded_ring(n, 20, flops, bytes);
        let t_des = des_ring(n, 20, flops, bytes);
        let rel = (t_threaded - t_des).abs() / t_des;
        assert!(
            rel < 0.05,
            "n={n}: threaded {t_threaded} vs DES {t_des} ({:.1}% apart)",
            rel * 100.0
        );
    }
}

#[test]
fn compute_only_times_identical() {
    let flops = 3.3e9;
    let t_threaded = World::new(Machine::archer2())
        .run(4, move |ctx| {
            ctx.compute(KernelCost::flops(flops));
            ctx.now()
        })
        .into_iter()
        .map(|(t, _)| t)
        .fold(0.0, f64::max);
    let mut program = TraceProgram::new(4);
    for r in 0..4 {
        program.rank(r).compute(KernelCost::flops(flops));
    }
    let t_des = Replayer::new(Machine::archer2())
        .run(&program)
        .unwrap()
        .makespan();
    assert!((t_threaded - t_des).abs() < 1e-12);
}

#[test]
fn allreduce_costs_same_order() {
    // Collectives use tree algorithms over p2p in the threaded runtime
    // and an analytic α–β model in the replayer; they must agree to
    // within a small factor (both ~2·log2(p)·α for small payloads).
    let n = 64;
    let iters = 50;
    let t_threaded = World::new(Machine::archer2())
        .run(n, move |ctx| {
            let g = ctx.world();
            for _ in 0..iters {
                g.allreduce_scalar(ctx, ReduceOp::Sum, 1.0);
            }
            ctx.now()
        })
        .into_iter()
        .map(|(t, _)| t)
        .fold(0.0, f64::max);
    let mut program = TraceProgram::new(n);
    let group = program.add_world_group();
    for r in 0..n {
        let t = program.rank(r);
        for _ in 0..iters {
            t.collective(CollectiveKind::Allreduce, group, 8);
        }
    }
    let t_des = Replayer::new(Machine::archer2())
        .run(&program)
        .unwrap()
        .makespan();
    let ratio = t_threaded / t_des;
    assert!(
        (0.3..3.5).contains(&ratio),
        "threaded {t_threaded} vs DES {t_des}: ratio {ratio}"
    );
}

#[test]
fn mixed_workload_within_tolerance() {
    // Compute + neighbour exchange + occasional allreduce: the shape of
    // every mini-app step. Compute-dominated, so agreement is tight.
    let n = 16;
    let t_threaded = World::new(Machine::archer2())
        .run(n, move |ctx| {
            let me = ctx.rank();
            let p = ctx.size();
            let g = ctx.world();
            for step in 0..10 {
                ctx.compute(KernelCost::new(5e7, 5e7));
                ctx.send((me + 1) % p, 3, vec![1.0f64; 512]);
                let _ = ctx.recv((me + p - 1) % p, 3);
                if step % 5 == 0 {
                    g.allreduce_scalar(ctx, ReduceOp::Max, me as f64);
                }
            }
            ctx.now()
        })
        .into_iter()
        .map(|(t, _)| t)
        .fold(0.0, f64::max);
    let mut program = TraceProgram::new(n);
    let group = program.add_world_group();
    for r in 0..n {
        for step in 0..10 {
            let t = program.rank(r);
            t.compute(KernelCost::new(5e7, 5e7));
            t.send((r + 1) % n, 4096, 3);
            t.recv((r + n - 1) % n, 3);
            if step % 5 == 0 {
                t.collective(CollectiveKind::Allreduce, group, 8);
            }
        }
    }
    let t_des = Replayer::new(Machine::archer2())
        .run(&program)
        .unwrap()
        .makespan();
    let rel = (t_threaded - t_des).abs() / t_des;
    assert!(rel < 0.1, "threaded {t_threaded} vs DES {t_des}");
}
