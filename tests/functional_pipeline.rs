//! End-to-end functional integration: real numerics on threaded ranks
//! across crates — the distributed Euler solver, the distributed PIC,
//! real coupler-unit transfers, and the shared-memory window primitive,
//! all in one world.

use cpx_core::functional::{run_functional, FunctionalConfig};
use cpx_machine::Machine;

#[test]
fn functional_coupled_simulation_end_to_end() {
    let out = run_functional(
        Machine::archer2(),
        FunctionalConfig {
            mgcfd_ranks: 2,
            simpic_ranks: 2,
            iters: 20,
            mesh_dims: [6, 3, 12],
            simpic_cells: 64,
        },
    );
    // Conservation across both CFD instances.
    assert!((out.mass_a - out.mass_a0).abs() / out.mass_a0 < 1e-12);
    assert!((out.mass_b - out.mass_b0).abs() / out.mass_b0 < 1e-12);
    // All sliding-plane exchanges happened.
    assert_eq!(out.exchanges, 20);
    // SIMPIC conserved its particles through 40 PIC steps.
    assert_eq!(out.simpic_particles, 6400.0);
    // The transferred interface field is physical.
    assert!(!out.last_transfer.is_empty());
    assert!(out.last_transfer.iter().all(|&v| (0.2..3.0).contains(&v)));
    // Virtual time advanced.
    assert!(out.elapsed > 0.0);
}

#[test]
fn functional_run_is_deterministic() {
    let run = || {
        run_functional(
            Machine::archer2(),
            FunctionalConfig {
                iters: 5,
                ..FunctionalConfig::default()
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.mass_a, b.mass_a);
    assert_eq!(a.mass_b, b.mass_b);
    assert_eq!(a.last_transfer, b.last_transfer);
    assert_eq!(a.elapsed, b.elapsed);
}

#[test]
fn wider_decomposition_changes_nothing_physical() {
    let narrow = run_functional(
        Machine::archer2(),
        FunctionalConfig {
            mgcfd_ranks: 2,
            iters: 8,
            ..FunctionalConfig::default()
        },
    );
    let wide = run_functional(
        Machine::archer2(),
        FunctionalConfig {
            mgcfd_ranks: 4,
            iters: 8,
            ..FunctionalConfig::default()
        },
    );
    // Euler stepping is bit-for-bit across decompositions; the mass
    // *reduction* is a tree sum whose grouping depends on rank count,
    // so compare to floating-point tolerance.
    assert!((narrow.mass_a - wide.mass_a).abs() / wide.mass_a < 1e-14);
    assert!((narrow.mass_b - wide.mass_b).abs() / wide.mass_b < 1e-14);
    // Transferred fields agree to numerical tolerance (gather order may
    // differ across decompositions, but values are per-cell exact here).
    assert_eq!(narrow.last_transfer.len(), wide.last_transfer.len());
    for (x, y) in narrow.last_transfer.iter().zip(&wide.last_transfer) {
        assert!((x - y).abs() < 1e-12, "{x} vs {y}");
    }
}
