//! The `NetStats` disabled-path contract: a handle built with
//! [`cpx_obs::NetStats::off`] must be free on the transport hot path —
//! zero allocations and no atomic traffic, just a branch on the
//! `Option` discriminant inside the handle. Uses the same counting
//! global allocator as `tests/wall_recorder_overhead.rs` (its own test
//! binary, since a `#[global_allocator]` is process-wide).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use cpx_obs::NetStats;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn disabled_netstats_adds_zero_allocations_per_frame() {
    let stats = NetStats::off();
    // Warm up any lazy one-time state.
    stats.frame_sent(0, 64);
    stats.frame_recv(0, 64);

    let before = allocs_on_this_thread();
    for i in 0..10_000usize {
        stats.frame_sent(i % 4, 64);
        stats.frame_recv(i % 4, 64);
        stats.heartbeat_sent(i % 4);
        stats.heartbeat_recv(i % 4);
        stats.heartbeat_missed(i % 4);
        stats.crc_failure(i % 4);
        stats.dial_retry(25);
        stats.rtt_sample(i % 4, 120);
    }
    let after = allocs_on_this_thread();
    assert_eq!(after - before, 0, "disabled NetStats must not allocate");

    // The snapshot of a disabled handle is empty, not partial garbage.
    let snap = stats.snapshot();
    assert!(snap.peers.is_empty());
    assert_eq!(snap.dial_retries, 0);
}

#[test]
fn enabled_netstats_counts_and_does_not_allocate_per_record() {
    let stats = NetStats::on(0, 4);
    // Counters are preallocated at construction: recording a frame on
    // the hot path must not allocate either, only the snapshot does.
    stats.frame_sent(1, 64);
    let before = allocs_on_this_thread();
    for i in 0..10_000usize {
        stats.frame_sent(1 + i % 3, 64);
        stats.rtt_sample(1 + i % 3, 120);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "enabled NetStats must record into preallocated atomics"
    );
    let snap = stats.snapshot();
    assert_eq!(snap.total(|p| p.frames_sent), 10_001);
    assert_eq!(snap.total(|p| p.rtt.count), 10_000);
}

fn wall_min(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn disabled_netstats_overhead_on_a_frame_loop_is_bounded() {
    // A stand-in for the transport writer loop: checksum a frame body,
    // then (maybe) record it. The disabled path is a single branch on
    // an `Option` discriminant — no atomics — so its cost must vanish
    // against even this cheap per-frame work.
    let body = vec![0xA5u8; 256];
    let stats = NetStats::off();
    let frames = 200_000usize;
    let reps = 10;

    let checksum = |acc: u64, body: &[u8]| -> u64 {
        body.iter()
            .fold(acc, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64))
    };

    let plain = wall_min(reps, || {
        let mut acc = 0u64;
        for _ in 0..frames {
            acc = checksum(acc, &body);
        }
        std::hint::black_box(acc);
    });
    let wrapped = wall_min(reps, || {
        let mut acc = 0u64;
        for _ in 0..frames {
            acc = checksum(acc, &body);
            stats.frame_sent(1, body.len());
        }
        std::hint::black_box(acc);
    });

    // Generous bound so shared CI runners never flake, while still
    // catching an accidental atomic or allocation sneaking into the
    // disabled path.
    assert!(
        wrapped < plain * 2.0 + 1e-3,
        "disabled NetStats overhead too high: {wrapped:.6}s wrapped vs {plain:.6}s plain"
    );
}
