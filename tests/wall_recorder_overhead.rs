//! The `WallRecorder` disabled-path contract: a recorder built with
//! [`cpx_obs::WallRecorder::off`] must be free — zero allocations and
//! no measurable cost on a hot kernel. Uses the same counting global
//! allocator as `crates/amg/tests/alloc_free.rs` (its own test binary,
//! since a `#[global_allocator]` is process-wide).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use cpx_obs::WallRecorder;
use cpx_sparse::Csr;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn disabled_wall_recorder_adds_zero_allocations() {
    let mut rec = WallRecorder::off();
    // Warm up any lazy one-time state.
    rec.begin("warmup");
    rec.end();

    let before = allocs_on_this_thread();
    for _ in 0..1000 {
        rec.begin("span");
        rec.count("events", 1);
        rec.end();
    }
    let after = allocs_on_this_thread();
    assert_eq!(after - before, 0, "disabled WallRecorder must not allocate");

    // Sanity: an enabled recorder does allocate (span storage), so the
    // counter itself is live.
    let mut on = WallRecorder::on();
    let before = allocs_on_this_thread();
    for _ in 0..16 {
        on.begin("span");
        on.end();
    }
    let after = allocs_on_this_thread();
    assert!(after > before, "enabled recorder should allocate spans");
}

fn wall_min(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn enabled_wall_recorder_overhead_on_spmv_is_bounded() {
    let a = Csr::poisson2d(96, 96);
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
    let mut y = vec![0.0; a.nrows()];
    let reps = 20;
    let sweeps = 10;

    let plain = wall_min(reps, || {
        for _ in 0..sweeps {
            a.spmv(&x, &mut y);
        }
    });
    let wrapped = wall_min(reps, || {
        let mut rec = WallRecorder::on();
        for s in 0..sweeps {
            rec.span("spmv", || a.spmv(&x, &mut y));
            rec.count("sweeps", s as u64);
        }
        let _ = rec.into_timeline(0);
    });

    // Two clock reads and one span push per ~90k-nonzero SpMV: the
    // bound is deliberately generous so shared CI runners never flake,
    // while still catching an accidentally quadratic or allocating hot
    // path.
    assert!(
        wrapped < plain * 2.0 + 1e-3,
        "enabled WallRecorder overhead too high: {wrapped:.6}s wrapped vs {plain:.6}s plain"
    );
}
