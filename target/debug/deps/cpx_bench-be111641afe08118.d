/root/repo/target/debug/deps/cpx_bench-be111641afe08118.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcpx_bench-be111641afe08118.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcpx_bench-be111641afe08118.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
