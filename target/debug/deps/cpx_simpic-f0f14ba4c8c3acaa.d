/root/repo/target/debug/deps/cpx_simpic-f0f14ba4c8c3acaa.d: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/debug/deps/libcpx_simpic-f0f14ba4c8c3acaa.rlib: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/debug/deps/libcpx_simpic-f0f14ba4c8c3acaa.rmeta: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

crates/simpic/src/lib.rs:
crates/simpic/src/config.rs:
crates/simpic/src/diagnostics.rs:
crates/simpic/src/dist.rs:
crates/simpic/src/pic.rs:
crates/simpic/src/trace.rs:
