/root/repo/target/debug/deps/cpx_simpic-b17de866704e578c.d: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/debug/deps/libcpx_simpic-b17de866704e578c.rlib: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/debug/deps/libcpx_simpic-b17de866704e578c.rmeta: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

crates/simpic/src/lib.rs:
crates/simpic/src/config.rs:
crates/simpic/src/diagnostics.rs:
crates/simpic/src/dist.rs:
crates/simpic/src/pic.rs:
crates/simpic/src/trace.rs:
