/root/repo/target/debug/deps/figures-3744e4914ac9909d.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3744e4914ac9909d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
