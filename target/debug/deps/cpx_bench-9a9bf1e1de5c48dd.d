/root/repo/target/debug/deps/cpx_bench-9a9bf1e1de5c48dd.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_bench-9a9bf1e1de5c48dd.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
