/root/repo/target/debug/deps/proptests-2a17e4136233c219.d: crates/sparse/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2a17e4136233c219.rmeta: crates/sparse/tests/proptests.rs Cargo.toml

crates/sparse/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
