/root/repo/target/debug/deps/cpx_coupler-bc44cca416f69844.d: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_coupler-bc44cca416f69844.rmeta: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs Cargo.toml

crates/coupler/src/lib.rs:
crates/coupler/src/conservative.rs:
crates/coupler/src/interp.rs:
crates/coupler/src/layout.rs:
crates/coupler/src/search.rs:
crates/coupler/src/trace.rs:
crates/coupler/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
