/root/repo/target/debug/deps/reproduction_claims-39ef504affe30c17.d: tests/reproduction_claims.rs

/root/repo/target/debug/deps/reproduction_claims-39ef504affe30c17: tests/reproduction_claims.rs

tests/reproduction_claims.rs:
