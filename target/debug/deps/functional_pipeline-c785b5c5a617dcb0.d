/root/repo/target/debug/deps/functional_pipeline-c785b5c5a617dcb0.d: tests/functional_pipeline.rs

/root/repo/target/debug/deps/functional_pipeline-c785b5c5a617dcb0: tests/functional_pipeline.rs

tests/functional_pipeline.rs:
