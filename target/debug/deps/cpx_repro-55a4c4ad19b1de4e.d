/root/repo/target/debug/deps/cpx_repro-55a4c4ad19b1de4e.d: src/lib.rs

/root/repo/target/debug/deps/libcpx_repro-55a4c4ad19b1de4e.rlib: src/lib.rs

/root/repo/target/debug/deps/libcpx_repro-55a4c4ad19b1de4e.rmeta: src/lib.rs

src/lib.rs:
