/root/repo/target/debug/deps/cpx_coupler-0874bb3a9eec2153.d: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/debug/deps/cpx_coupler-0874bb3a9eec2153: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

crates/coupler/src/lib.rs:
crates/coupler/src/conservative.rs:
crates/coupler/src/interp.rs:
crates/coupler/src/layout.rs:
crates/coupler/src/search.rs:
crates/coupler/src/trace.rs:
crates/coupler/src/unit.rs:
