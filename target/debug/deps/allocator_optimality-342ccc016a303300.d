/root/repo/target/debug/deps/allocator_optimality-342ccc016a303300.d: tests/allocator_optimality.rs

/root/repo/target/debug/deps/allocator_optimality-342ccc016a303300: tests/allocator_optimality.rs

tests/allocator_optimality.rs:
