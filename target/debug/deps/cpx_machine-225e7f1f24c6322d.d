/root/repo/target/debug/deps/cpx_machine-225e7f1f24c6322d.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/libcpx_machine-225e7f1f24c6322d.rlib: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/libcpx_machine-225e7f1f24c6322d.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/cost.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
