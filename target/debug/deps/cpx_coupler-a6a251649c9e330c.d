/root/repo/target/debug/deps/cpx_coupler-a6a251649c9e330c.d: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/debug/deps/libcpx_coupler-a6a251649c9e330c.rmeta: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

crates/coupler/src/lib.rs:
crates/coupler/src/conservative.rs:
crates/coupler/src/interp.rs:
crates/coupler/src/layout.rs:
crates/coupler/src/search.rs:
crates/coupler/src/trace.rs:
crates/coupler/src/unit.rs:
