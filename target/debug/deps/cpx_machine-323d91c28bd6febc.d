/root/repo/target/debug/deps/cpx_machine-323d91c28bd6febc.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_machine-323d91c28bd6febc.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/cost.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
