/root/repo/target/debug/deps/cpx_sparse-0d79fa6525a89df9.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_sparse-0d79fa6525a89df9.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dist.rs:
crates/sparse/src/multilevel.rs:
crates/sparse/src/partition.rs:
crates/sparse/src/renumber.rs:
crates/sparse/src/spgemm.rs:
crates/sparse/src/tridiag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
