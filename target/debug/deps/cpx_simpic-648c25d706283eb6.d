/root/repo/target/debug/deps/cpx_simpic-648c25d706283eb6.d: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/debug/deps/cpx_simpic-648c25d706283eb6: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

crates/simpic/src/lib.rs:
crates/simpic/src/config.rs:
crates/simpic/src/diagnostics.rs:
crates/simpic/src/dist.rs:
crates/simpic/src/pic.rs:
crates/simpic/src/trace.rs:
