/root/repo/target/debug/deps/functional_pipeline-c69198e75d98297b.d: tests/functional_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfunctional_pipeline-c69198e75d98297b.rmeta: tests/functional_pipeline.rs Cargo.toml

tests/functional_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
