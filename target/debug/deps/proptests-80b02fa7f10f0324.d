/root/repo/target/debug/deps/proptests-80b02fa7f10f0324.d: crates/perfmodel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-80b02fa7f10f0324.rmeta: crates/perfmodel/tests/proptests.rs Cargo.toml

crates/perfmodel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
