/root/repo/target/debug/deps/cpx_core-37131d5b0c8d4702.d: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

/root/repo/target/debug/deps/libcpx_core-37131d5b0c8d4702.rlib: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

/root/repo/target/debug/deps/libcpx_core-37131d5b0c8d4702.rmeta: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

crates/core/src/lib.rs:
crates/core/src/functional.rs:
crates/core/src/instance.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/testcases.rs:
