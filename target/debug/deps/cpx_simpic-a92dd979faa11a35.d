/root/repo/target/debug/deps/cpx_simpic-a92dd979faa11a35.d: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_simpic-a92dd979faa11a35.rmeta: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs Cargo.toml

crates/simpic/src/lib.rs:
crates/simpic/src/config.rs:
crates/simpic/src/diagnostics.rs:
crates/simpic/src/dist.rs:
crates/simpic/src/pic.rs:
crates/simpic/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
