/root/repo/target/debug/deps/cpx_perfmodel-79f6dac6df37614c.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_perfmodel-79f6dac6df37614c.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/alloc.rs:
crates/perfmodel/src/curve.rs:
crates/perfmodel/src/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
