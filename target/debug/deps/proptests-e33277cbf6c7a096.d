/root/repo/target/debug/deps/proptests-e33277cbf6c7a096.d: crates/perfmodel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e33277cbf6c7a096: crates/perfmodel/tests/proptests.rs

crates/perfmodel/tests/proptests.rs:
