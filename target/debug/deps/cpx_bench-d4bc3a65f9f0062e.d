/root/repo/target/debug/deps/cpx_bench-d4bc3a65f9f0062e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_bench-d4bc3a65f9f0062e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
