/root/repo/target/debug/deps/cpx_pressure-f1b5fe269b504f43.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/debug/deps/cpx_pressure-f1b5fe269b504f43: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
