/root/repo/target/debug/deps/fault_proptests-795c49eb35294b24.d: crates/comm/tests/fault_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libfault_proptests-795c49eb35294b24.rmeta: crates/comm/tests/fault_proptests.rs Cargo.toml

crates/comm/tests/fault_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
