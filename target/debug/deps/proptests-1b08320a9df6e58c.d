/root/repo/target/debug/deps/proptests-1b08320a9df6e58c.d: crates/mesh/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1b08320a9df6e58c: crates/mesh/tests/proptests.rs

crates/mesh/tests/proptests.rs:
