/root/repo/target/debug/deps/functional_pipeline-a107100aacff6ac4.d: tests/functional_pipeline.rs

/root/repo/target/debug/deps/functional_pipeline-a107100aacff6ac4: tests/functional_pipeline.rs

tests/functional_pipeline.rs:
