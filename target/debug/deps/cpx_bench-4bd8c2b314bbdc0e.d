/root/repo/target/debug/deps/cpx_bench-4bd8c2b314bbdc0e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcpx_bench-4bd8c2b314bbdc0e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
