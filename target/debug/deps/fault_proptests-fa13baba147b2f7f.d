/root/repo/target/debug/deps/fault_proptests-fa13baba147b2f7f.d: crates/comm/tests/fault_proptests.rs

/root/repo/target/debug/deps/fault_proptests-fa13baba147b2f7f: crates/comm/tests/fault_proptests.rs

crates/comm/tests/fault_proptests.rs:
