/root/repo/target/debug/deps/cpx_repro-90d3d33a0cc7afbb.d: src/lib.rs

/root/repo/target/debug/deps/cpx_repro-90d3d33a0cc7afbb: src/lib.rs

src/lib.rs:
