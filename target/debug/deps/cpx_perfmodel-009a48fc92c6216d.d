/root/repo/target/debug/deps/cpx_perfmodel-009a48fc92c6216d.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/debug/deps/libcpx_perfmodel-009a48fc92c6216d.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/debug/deps/libcpx_perfmodel-009a48fc92c6216d.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/alloc.rs:
crates/perfmodel/src/curve.rs:
crates/perfmodel/src/scale.rs:
