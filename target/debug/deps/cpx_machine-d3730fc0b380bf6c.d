/root/repo/target/debug/deps/cpx_machine-d3730fc0b380bf6c.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/cpx_machine-d3730fc0b380bf6c: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/cost.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
