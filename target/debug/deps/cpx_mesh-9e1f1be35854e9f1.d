/root/repo/target/debug/deps/cpx_mesh-9e1f1be35854e9f1.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_mesh-9e1f1be35854e9f1.rmeta: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
