/root/repo/target/debug/deps/cpx_simpic-aaceafbf5d64deb2.d: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/debug/deps/libcpx_simpic-aaceafbf5d64deb2.rmeta: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

crates/simpic/src/lib.rs:
crates/simpic/src/config.rs:
crates/simpic/src/diagnostics.rs:
crates/simpic/src/dist.rs:
crates/simpic/src/pic.rs:
crates/simpic/src/trace.rs:
