/root/repo/target/debug/deps/cpx_core-ea0b08d9f7ff6633.d: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_core-ea0b08d9f7ff6633.rmeta: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/functional.rs:
crates/core/src/instance.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/testcases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
