/root/repo/target/debug/deps/cpx_mgcfd-79f1227bacc5033e.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/debug/deps/cpx_mgcfd-79f1227bacc5033e: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
