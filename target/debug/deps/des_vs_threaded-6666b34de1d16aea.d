/root/repo/target/debug/deps/des_vs_threaded-6666b34de1d16aea.d: tests/des_vs_threaded.rs Cargo.toml

/root/repo/target/debug/deps/libdes_vs_threaded-6666b34de1d16aea.rmeta: tests/des_vs_threaded.rs Cargo.toml

tests/des_vs_threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
