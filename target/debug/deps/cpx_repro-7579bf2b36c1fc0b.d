/root/repo/target/debug/deps/cpx_repro-7579bf2b36c1fc0b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_repro-7579bf2b36c1fc0b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
