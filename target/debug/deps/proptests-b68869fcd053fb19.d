/root/repo/target/debug/deps/proptests-b68869fcd053fb19.d: crates/machine/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b68869fcd053fb19: crates/machine/tests/proptests.rs

crates/machine/tests/proptests.rs:
