/root/repo/target/debug/deps/cpx_pressure-a136a6a3024d1679.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_pressure-a136a6a3024d1679.rmeta: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs Cargo.toml

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
