/root/repo/target/debug/deps/des_vs_threaded-f4224d2cc175eab7.d: tests/des_vs_threaded.rs

/root/repo/target/debug/deps/des_vs_threaded-f4224d2cc175eab7: tests/des_vs_threaded.rs

tests/des_vs_threaded.rs:
