/root/repo/target/debug/deps/cpx_mesh-c9b9f03f0b3a044a.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/libcpx_mesh-c9b9f03f0b3a044a.rlib: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/libcpx_mesh-c9b9f03f0b3a044a.rmeta: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
