/root/repo/target/debug/deps/cpx_comm-4a460a8c5b0b45af.d: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/debug/deps/cpx_comm-4a460a8c5b0b45af: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

crates/comm/src/lib.rs:
crates/comm/src/group.rs:
crates/comm/src/nonblocking.rs:
crates/comm/src/payload.rs:
crates/comm/src/runtime.rs:
crates/comm/src/window.rs:
