/root/repo/target/debug/deps/serde-253dcebd707d997f.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-253dcebd707d997f.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-253dcebd707d997f.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
