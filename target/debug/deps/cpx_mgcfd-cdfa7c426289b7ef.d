/root/repo/target/debug/deps/cpx_mgcfd-cdfa7c426289b7ef.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/debug/deps/libcpx_mgcfd-cdfa7c426289b7ef.rlib: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/debug/deps/libcpx_mgcfd-cdfa7c426289b7ef.rmeta: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
