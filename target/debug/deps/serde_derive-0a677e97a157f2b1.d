/root/repo/target/debug/deps/serde_derive-0a677e97a157f2b1.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-0a677e97a157f2b1.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
