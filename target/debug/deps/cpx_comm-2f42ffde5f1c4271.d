/root/repo/target/debug/deps/cpx_comm-2f42ffde5f1c4271.d: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/debug/deps/libcpx_comm-2f42ffde5f1c4271.rlib: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/debug/deps/libcpx_comm-2f42ffde5f1c4271.rmeta: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

crates/comm/src/lib.rs:
crates/comm/src/group.rs:
crates/comm/src/nonblocking.rs:
crates/comm/src/payload.rs:
crates/comm/src/runtime.rs:
crates/comm/src/window.rs:
