/root/repo/target/debug/deps/crossbeam-9cd7d6e708da04ce.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-9cd7d6e708da04ce.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
