/root/repo/target/debug/deps/serde_derive-46716840d883f0c6.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-46716840d883f0c6.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
