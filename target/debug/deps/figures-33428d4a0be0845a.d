/root/repo/target/debug/deps/figures-33428d4a0be0845a.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-33428d4a0be0845a.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
