/root/repo/target/debug/deps/cpx_perfmodel-76a1c21207bc3513.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/debug/deps/cpx_perfmodel-76a1c21207bc3513: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/alloc.rs:
crates/perfmodel/src/curve.rs:
crates/perfmodel/src/scale.rs:
