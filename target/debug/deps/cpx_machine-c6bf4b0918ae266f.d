/root/repo/target/debug/deps/cpx_machine-c6bf4b0918ae266f.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_machine-c6bf4b0918ae266f.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/cost.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
