/root/repo/target/debug/deps/cpx_mgcfd-b2eb0fb4608ef93c.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/debug/deps/cpx_mgcfd-b2eb0fb4608ef93c: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
