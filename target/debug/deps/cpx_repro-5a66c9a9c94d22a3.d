/root/repo/target/debug/deps/cpx_repro-5a66c9a9c94d22a3.d: src/lib.rs

/root/repo/target/debug/deps/libcpx_repro-5a66c9a9c94d22a3.rlib: src/lib.rs

/root/repo/target/debug/deps/libcpx_repro-5a66c9a9c94d22a3.rmeta: src/lib.rs

src/lib.rs:
