/root/repo/target/debug/deps/cpx_core-7e02b977837076f8.d: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

/root/repo/target/debug/deps/libcpx_core-7e02b977837076f8.rmeta: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

crates/core/src/lib.rs:
crates/core/src/functional.rs:
crates/core/src/instance.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/testcases.rs:
