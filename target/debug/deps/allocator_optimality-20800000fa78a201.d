/root/repo/target/debug/deps/allocator_optimality-20800000fa78a201.d: tests/allocator_optimality.rs Cargo.toml

/root/repo/target/debug/deps/liballocator_optimality-20800000fa78a201.rmeta: tests/allocator_optimality.rs Cargo.toml

tests/allocator_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
