/root/repo/target/debug/deps/cpx_mgcfd-d0026fece5286502.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/debug/deps/libcpx_mgcfd-d0026fece5286502.rlib: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/debug/deps/libcpx_mgcfd-d0026fece5286502.rmeta: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
