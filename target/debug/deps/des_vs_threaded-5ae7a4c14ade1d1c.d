/root/repo/target/debug/deps/des_vs_threaded-5ae7a4c14ade1d1c.d: tests/des_vs_threaded.rs

/root/repo/target/debug/deps/des_vs_threaded-5ae7a4c14ade1d1c: tests/des_vs_threaded.rs

tests/des_vs_threaded.rs:
