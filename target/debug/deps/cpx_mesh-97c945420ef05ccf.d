/root/repo/target/debug/deps/cpx_mesh-97c945420ef05ccf.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/libcpx_mesh-97c945420ef05ccf.rmeta: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
