/root/repo/target/debug/deps/cpx_repro-1de4f85e23438da4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_repro-1de4f85e23438da4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
