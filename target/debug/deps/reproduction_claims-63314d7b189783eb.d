/root/repo/target/debug/deps/reproduction_claims-63314d7b189783eb.d: tests/reproduction_claims.rs

/root/repo/target/debug/deps/reproduction_claims-63314d7b189783eb: tests/reproduction_claims.rs

tests/reproduction_claims.rs:
