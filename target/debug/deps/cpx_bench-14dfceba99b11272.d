/root/repo/target/debug/deps/cpx_bench-14dfceba99b11272.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cpx_bench-14dfceba99b11272: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
