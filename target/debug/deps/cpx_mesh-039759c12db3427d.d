/root/repo/target/debug/deps/cpx_mesh-039759c12db3427d.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/libcpx_mesh-039759c12db3427d.rlib: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/libcpx_mesh-039759c12db3427d.rmeta: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
