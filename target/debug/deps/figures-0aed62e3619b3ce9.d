/root/repo/target/debug/deps/figures-0aed62e3619b3ce9.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-0aed62e3619b3ce9: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
