/root/repo/target/debug/deps/cpx_amg-48b71c5b9e91f83d.d: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

/root/repo/target/debug/deps/libcpx_amg-48b71c5b9e91f83d.rmeta: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

crates/amg/src/lib.rs:
crates/amg/src/aggregate.rs:
crates/amg/src/chebyshev.rs:
crates/amg/src/cycle.rs:
crates/amg/src/hierarchy.rs:
crates/amg/src/interp.rs:
crates/amg/src/pcg.rs:
crates/amg/src/smoother.rs:
crates/amg/src/strength.rs:
