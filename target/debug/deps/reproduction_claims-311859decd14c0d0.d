/root/repo/target/debug/deps/reproduction_claims-311859decd14c0d0.d: tests/reproduction_claims.rs Cargo.toml

/root/repo/target/debug/deps/libreproduction_claims-311859decd14c0d0.rmeta: tests/reproduction_claims.rs Cargo.toml

tests/reproduction_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
