/root/repo/target/debug/deps/cpx_repro-b1a0c3be57be508c.d: src/lib.rs

/root/repo/target/debug/deps/libcpx_repro-b1a0c3be57be508c.rlib: src/lib.rs

/root/repo/target/debug/deps/libcpx_repro-b1a0c3be57be508c.rmeta: src/lib.rs

src/lib.rs:
