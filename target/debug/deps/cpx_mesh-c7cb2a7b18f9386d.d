/root/repo/target/debug/deps/cpx_mesh-c7cb2a7b18f9386d.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/libcpx_mesh-c7cb2a7b18f9386d.rlib: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/libcpx_mesh-c7cb2a7b18f9386d.rmeta: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
