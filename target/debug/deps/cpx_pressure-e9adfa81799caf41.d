/root/repo/target/debug/deps/cpx_pressure-e9adfa81799caf41.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/debug/deps/libcpx_pressure-e9adfa81799caf41.rmeta: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
