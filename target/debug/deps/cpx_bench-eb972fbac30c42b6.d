/root/repo/target/debug/deps/cpx_bench-eb972fbac30c42b6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cpx_bench-eb972fbac30c42b6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
