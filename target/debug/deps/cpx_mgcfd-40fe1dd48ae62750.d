/root/repo/target/debug/deps/cpx_mgcfd-40fe1dd48ae62750.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/debug/deps/libcpx_mgcfd-40fe1dd48ae62750.rmeta: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
