/root/repo/target/debug/deps/miniapps-32da0bbb78e00b15.d: crates/bench/benches/miniapps.rs Cargo.toml

/root/repo/target/debug/deps/libminiapps-32da0bbb78e00b15.rmeta: crates/bench/benches/miniapps.rs Cargo.toml

crates/bench/benches/miniapps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
