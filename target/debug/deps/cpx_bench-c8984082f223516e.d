/root/repo/target/debug/deps/cpx_bench-c8984082f223516e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcpx_bench-c8984082f223516e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcpx_bench-c8984082f223516e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
