/root/repo/target/debug/deps/cpx_coupler-43fd881eb679d205.d: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/debug/deps/libcpx_coupler-43fd881eb679d205.rlib: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/debug/deps/libcpx_coupler-43fd881eb679d205.rmeta: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

crates/coupler/src/lib.rs:
crates/coupler/src/conservative.rs:
crates/coupler/src/interp.rs:
crates/coupler/src/layout.rs:
crates/coupler/src/search.rs:
crates/coupler/src/trace.rs:
crates/coupler/src/unit.rs:
