/root/repo/target/debug/deps/cpx_repro-a89641de63873fc1.d: src/lib.rs

/root/repo/target/debug/deps/cpx_repro-a89641de63873fc1: src/lib.rs

src/lib.rs:
