/root/repo/target/debug/deps/cpx_amg-14f587b1b78d2e17.d: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

/root/repo/target/debug/deps/libcpx_amg-14f587b1b78d2e17.rlib: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

/root/repo/target/debug/deps/libcpx_amg-14f587b1b78d2e17.rmeta: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

crates/amg/src/lib.rs:
crates/amg/src/aggregate.rs:
crates/amg/src/chebyshev.rs:
crates/amg/src/cycle.rs:
crates/amg/src/hierarchy.rs:
crates/amg/src/interp.rs:
crates/amg/src/pcg.rs:
crates/amg/src/smoother.rs:
crates/amg/src/strength.rs:
