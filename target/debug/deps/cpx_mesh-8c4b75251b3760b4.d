/root/repo/target/debug/deps/cpx_mesh-8c4b75251b3760b4.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/debug/deps/cpx_mesh-8c4b75251b3760b4: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
