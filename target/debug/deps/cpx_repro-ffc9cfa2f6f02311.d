/root/repo/target/debug/deps/cpx_repro-ffc9cfa2f6f02311.d: src/lib.rs

/root/repo/target/debug/deps/libcpx_repro-ffc9cfa2f6f02311.rmeta: src/lib.rs

src/lib.rs:
