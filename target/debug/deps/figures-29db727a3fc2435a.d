/root/repo/target/debug/deps/figures-29db727a3fc2435a.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-29db727a3fc2435a.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
