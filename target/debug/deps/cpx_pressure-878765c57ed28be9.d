/root/repo/target/debug/deps/cpx_pressure-878765c57ed28be9.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/debug/deps/libcpx_pressure-878765c57ed28be9.rlib: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/debug/deps/libcpx_pressure-878765c57ed28be9.rmeta: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
