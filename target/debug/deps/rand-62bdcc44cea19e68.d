/root/repo/target/debug/deps/rand-62bdcc44cea19e68.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-62bdcc44cea19e68.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
