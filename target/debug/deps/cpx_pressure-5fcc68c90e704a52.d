/root/repo/target/debug/deps/cpx_pressure-5fcc68c90e704a52.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/debug/deps/libcpx_pressure-5fcc68c90e704a52.rlib: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/debug/deps/libcpx_pressure-5fcc68c90e704a52.rmeta: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
