/root/repo/target/debug/deps/allocator_optimality-ac7d58e19fd847d2.d: tests/allocator_optimality.rs

/root/repo/target/debug/deps/allocator_optimality-ac7d58e19fd847d2: tests/allocator_optimality.rs

tests/allocator_optimality.rs:
