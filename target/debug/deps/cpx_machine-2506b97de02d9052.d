/root/repo/target/debug/deps/cpx_machine-2506b97de02d9052.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/libcpx_machine-2506b97de02d9052.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/cost.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
