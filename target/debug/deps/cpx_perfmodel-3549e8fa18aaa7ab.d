/root/repo/target/debug/deps/cpx_perfmodel-3549e8fa18aaa7ab.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/debug/deps/libcpx_perfmodel-3549e8fa18aaa7ab.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/alloc.rs:
crates/perfmodel/src/curve.rs:
crates/perfmodel/src/scale.rs:
