/root/repo/target/debug/deps/proptest-cc76172a6ea00e64.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cc76172a6ea00e64.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
