/root/repo/target/debug/deps/cpx_amg-66d819f4cef5eeb6.d: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_amg-66d819f4cef5eeb6.rmeta: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs Cargo.toml

crates/amg/src/lib.rs:
crates/amg/src/aggregate.rs:
crates/amg/src/chebyshev.rs:
crates/amg/src/cycle.rs:
crates/amg/src/hierarchy.rs:
crates/amg/src/interp.rs:
crates/amg/src/pcg.rs:
crates/amg/src/smoother.rs:
crates/amg/src/strength.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
