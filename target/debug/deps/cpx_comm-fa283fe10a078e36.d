/root/repo/target/debug/deps/cpx_comm-fa283fe10a078e36.d: crates/comm/src/lib.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_comm-fa283fe10a078e36.rmeta: crates/comm/src/lib.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/nonblocking.rs:
crates/comm/src/payload.rs:
crates/comm/src/runtime.rs:
crates/comm/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
