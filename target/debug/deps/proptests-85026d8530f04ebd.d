/root/repo/target/debug/deps/proptests-85026d8530f04ebd.d: crates/mesh/tests/proptests.rs

/root/repo/target/debug/deps/proptests-85026d8530f04ebd: crates/mesh/tests/proptests.rs

crates/mesh/tests/proptests.rs:
