/root/repo/target/debug/deps/cpx_mgcfd-bdbfeab445848b73.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcpx_mgcfd-bdbfeab445848b73.rmeta: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs Cargo.toml

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
