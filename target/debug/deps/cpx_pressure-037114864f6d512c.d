/root/repo/target/debug/deps/cpx_pressure-037114864f6d512c.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/debug/deps/cpx_pressure-037114864f6d512c: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
