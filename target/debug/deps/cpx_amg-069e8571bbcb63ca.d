/root/repo/target/debug/deps/cpx_amg-069e8571bbcb63ca.d: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

/root/repo/target/debug/deps/libcpx_amg-069e8571bbcb63ca.rlib: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

/root/repo/target/debug/deps/libcpx_amg-069e8571bbcb63ca.rmeta: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

crates/amg/src/lib.rs:
crates/amg/src/aggregate.rs:
crates/amg/src/chebyshev.rs:
crates/amg/src/cycle.rs:
crates/amg/src/hierarchy.rs:
crates/amg/src/interp.rs:
crates/amg/src/pcg.rs:
crates/amg/src/smoother.rs:
crates/amg/src/strength.rs:
