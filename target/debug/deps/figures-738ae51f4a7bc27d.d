/root/repo/target/debug/deps/figures-738ae51f4a7bc27d.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-738ae51f4a7bc27d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
