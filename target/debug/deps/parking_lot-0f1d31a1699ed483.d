/root/repo/target/debug/deps/parking_lot-0f1d31a1699ed483.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0f1d31a1699ed483.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
