/root/repo/target/debug/deps/criterion-36b09771dbcff577.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-36b09771dbcff577.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
