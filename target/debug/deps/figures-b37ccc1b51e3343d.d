/root/repo/target/debug/deps/figures-b37ccc1b51e3343d.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-b37ccc1b51e3343d.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
