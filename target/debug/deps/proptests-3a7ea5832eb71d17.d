/root/repo/target/debug/deps/proptests-3a7ea5832eb71d17.d: crates/sparse/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3a7ea5832eb71d17: crates/sparse/tests/proptests.rs

crates/sparse/tests/proptests.rs:
