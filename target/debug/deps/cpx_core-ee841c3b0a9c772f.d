/root/repo/target/debug/deps/cpx_core-ee841c3b0a9c772f.d: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

/root/repo/target/debug/deps/libcpx_core-ee841c3b0a9c772f.rlib: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

/root/repo/target/debug/deps/libcpx_core-ee841c3b0a9c772f.rmeta: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

crates/core/src/lib.rs:
crates/core/src/functional.rs:
crates/core/src/instance.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/testcases.rs:
