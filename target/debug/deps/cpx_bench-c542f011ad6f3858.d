/root/repo/target/debug/deps/cpx_bench-c542f011ad6f3858.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcpx_bench-c542f011ad6f3858.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcpx_bench-c542f011ad6f3858.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
