/root/repo/target/debug/deps/cpx_comm-27541b14d705d83b.d: crates/comm/src/lib.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/debug/deps/libcpx_comm-27541b14d705d83b.rmeta: crates/comm/src/lib.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

crates/comm/src/lib.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/nonblocking.rs:
crates/comm/src/payload.rs:
crates/comm/src/runtime.rs:
crates/comm/src/window.rs:
