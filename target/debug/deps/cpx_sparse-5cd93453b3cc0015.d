/root/repo/target/debug/deps/cpx_sparse-5cd93453b3cc0015.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

/root/repo/target/debug/deps/libcpx_sparse-5cd93453b3cc0015.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dist.rs:
crates/sparse/src/multilevel.rs:
crates/sparse/src/partition.rs:
crates/sparse/src/renumber.rs:
crates/sparse/src/spgemm.rs:
crates/sparse/src/tridiag.rs:
