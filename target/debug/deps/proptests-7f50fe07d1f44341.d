/root/repo/target/debug/deps/proptests-7f50fe07d1f44341.d: crates/sparse/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7f50fe07d1f44341: crates/sparse/tests/proptests.rs

crates/sparse/tests/proptests.rs:
