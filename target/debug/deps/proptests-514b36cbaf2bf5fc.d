/root/repo/target/debug/deps/proptests-514b36cbaf2bf5fc.d: crates/mesh/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-514b36cbaf2bf5fc.rmeta: crates/mesh/tests/proptests.rs Cargo.toml

crates/mesh/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
