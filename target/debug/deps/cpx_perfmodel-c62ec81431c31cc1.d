/root/repo/target/debug/deps/cpx_perfmodel-c62ec81431c31cc1.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/debug/deps/libcpx_perfmodel-c62ec81431c31cc1.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/debug/deps/libcpx_perfmodel-c62ec81431c31cc1.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/alloc.rs:
crates/perfmodel/src/curve.rs:
crates/perfmodel/src/scale.rs:
