/root/repo/target/debug/deps/proptests-6b0b707d037ffd22.d: crates/machine/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6b0b707d037ffd22.rmeta: crates/machine/tests/proptests.rs Cargo.toml

crates/machine/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
