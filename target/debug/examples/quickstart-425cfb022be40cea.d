/root/repo/target/debug/examples/quickstart-425cfb022be40cea.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-425cfb022be40cea: examples/quickstart.rs

examples/quickstart.rs:
