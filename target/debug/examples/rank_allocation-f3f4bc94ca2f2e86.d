/root/repo/target/debug/examples/rank_allocation-f3f4bc94ca2f2e86.d: examples/rank_allocation.rs

/root/repo/target/debug/examples/rank_allocation-f3f4bc94ca2f2e86: examples/rank_allocation.rs

examples/rank_allocation.rs:
