/root/repo/target/debug/examples/rank_allocation-66274e2bddc9562f.d: examples/rank_allocation.rs Cargo.toml

/root/repo/target/debug/examples/librank_allocation-66274e2bddc9562f.rmeta: examples/rank_allocation.rs Cargo.toml

examples/rank_allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
