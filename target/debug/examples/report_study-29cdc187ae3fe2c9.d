/root/repo/target/debug/examples/report_study-29cdc187ae3fe2c9.d: examples/report_study.rs

/root/repo/target/debug/examples/report_study-29cdc187ae3fe2c9: examples/report_study.rs

examples/report_study.rs:
