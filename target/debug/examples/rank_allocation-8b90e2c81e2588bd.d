/root/repo/target/debug/examples/rank_allocation-8b90e2c81e2588bd.d: examples/rank_allocation.rs

/root/repo/target/debug/examples/rank_allocation-8b90e2c81e2588bd: examples/rank_allocation.rs

examples/rank_allocation.rs:
