/root/repo/target/debug/examples/coupled_engine-9eedfe4aecac75e3.d: examples/coupled_engine.rs Cargo.toml

/root/repo/target/debug/examples/libcoupled_engine-9eedfe4aecac75e3.rmeta: examples/coupled_engine.rs Cargo.toml

examples/coupled_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
