/root/repo/target/debug/examples/fault_study-1eb273b3c19efc03.d: examples/fault_study.rs Cargo.toml

/root/repo/target/debug/examples/libfault_study-1eb273b3c19efc03.rmeta: examples/fault_study.rs Cargo.toml

examples/fault_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
