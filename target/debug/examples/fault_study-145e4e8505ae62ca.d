/root/repo/target/debug/examples/fault_study-145e4e8505ae62ca.d: examples/fault_study.rs

/root/repo/target/debug/examples/fault_study-145e4e8505ae62ca: examples/fault_study.rs

examples/fault_study.rs:
