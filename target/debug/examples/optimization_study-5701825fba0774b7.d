/root/repo/target/debug/examples/optimization_study-5701825fba0774b7.d: examples/optimization_study.rs Cargo.toml

/root/repo/target/debug/examples/liboptimization_study-5701825fba0774b7.rmeta: examples/optimization_study.rs Cargo.toml

examples/optimization_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
