/root/repo/target/debug/examples/coupled_engine-e5daf7c45f24724a.d: examples/coupled_engine.rs

/root/repo/target/debug/examples/coupled_engine-e5daf7c45f24724a: examples/coupled_engine.rs

examples/coupled_engine.rs:
