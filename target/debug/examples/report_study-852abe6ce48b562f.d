/root/repo/target/debug/examples/report_study-852abe6ce48b562f.d: examples/report_study.rs

/root/repo/target/debug/examples/report_study-852abe6ce48b562f: examples/report_study.rs

examples/report_study.rs:
