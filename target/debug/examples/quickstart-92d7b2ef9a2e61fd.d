/root/repo/target/debug/examples/quickstart-92d7b2ef9a2e61fd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-92d7b2ef9a2e61fd: examples/quickstart.rs

examples/quickstart.rs:
