/root/repo/target/debug/examples/report_study-7075745c7ffe1819.d: examples/report_study.rs Cargo.toml

/root/repo/target/debug/examples/libreport_study-7075745c7ffe1819.rmeta: examples/report_study.rs Cargo.toml

examples/report_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
