/root/repo/target/debug/examples/coupled_engine-ec45e5a0d69468fe.d: examples/coupled_engine.rs

/root/repo/target/debug/examples/coupled_engine-ec45e5a0d69468fe: examples/coupled_engine.rs

examples/coupled_engine.rs:
