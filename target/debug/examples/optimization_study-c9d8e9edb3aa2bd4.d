/root/repo/target/debug/examples/optimization_study-c9d8e9edb3aa2bd4.d: examples/optimization_study.rs

/root/repo/target/debug/examples/optimization_study-c9d8e9edb3aa2bd4: examples/optimization_study.rs

examples/optimization_study.rs:
