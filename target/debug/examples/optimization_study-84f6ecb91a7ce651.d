/root/repo/target/debug/examples/optimization_study-84f6ecb91a7ce651.d: examples/optimization_study.rs

/root/repo/target/debug/examples/optimization_study-84f6ecb91a7ce651: examples/optimization_study.rs

examples/optimization_study.rs:
