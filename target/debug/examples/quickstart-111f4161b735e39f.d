/root/repo/target/debug/examples/quickstart-111f4161b735e39f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-111f4161b735e39f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
