/root/repo/target/release/deps/crossbeam-49c5476d9c48c24c.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-49c5476d9c48c24c.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-49c5476d9c48c24c.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
