/root/repo/target/release/deps/cpx_simpic-5fbb051161f42da8.d: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/release/deps/libcpx_simpic-5fbb051161f42da8.rlib: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/release/deps/libcpx_simpic-5fbb051161f42da8.rmeta: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

crates/simpic/src/lib.rs:
crates/simpic/src/config.rs:
crates/simpic/src/diagnostics.rs:
crates/simpic/src/dist.rs:
crates/simpic/src/pic.rs:
crates/simpic/src/trace.rs:
