/root/repo/target/release/deps/cpx_repro-405d64f5dbc0132c.d: src/lib.rs

/root/repo/target/release/deps/libcpx_repro-405d64f5dbc0132c.rlib: src/lib.rs

/root/repo/target/release/deps/libcpx_repro-405d64f5dbc0132c.rmeta: src/lib.rs

src/lib.rs:
