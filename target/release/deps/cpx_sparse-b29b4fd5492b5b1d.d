/root/repo/target/release/deps/cpx_sparse-b29b4fd5492b5b1d.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

/root/repo/target/release/deps/libcpx_sparse-b29b4fd5492b5b1d.rlib: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

/root/repo/target/release/deps/libcpx_sparse-b29b4fd5492b5b1d.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dist.rs:
crates/sparse/src/multilevel.rs:
crates/sparse/src/partition.rs:
crates/sparse/src/renumber.rs:
crates/sparse/src/spgemm.rs:
crates/sparse/src/tridiag.rs:
