/root/repo/target/release/deps/cpx_comm-bb65841fef632757.d: crates/comm/src/lib.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/release/deps/libcpx_comm-bb65841fef632757.rlib: crates/comm/src/lib.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/release/deps/libcpx_comm-bb65841fef632757.rmeta: crates/comm/src/lib.rs crates/comm/src/fault.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

crates/comm/src/lib.rs:
crates/comm/src/fault.rs:
crates/comm/src/group.rs:
crates/comm/src/nonblocking.rs:
crates/comm/src/payload.rs:
crates/comm/src/runtime.rs:
crates/comm/src/window.rs:
