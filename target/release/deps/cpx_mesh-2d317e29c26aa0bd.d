/root/repo/target/release/deps/cpx_mesh-2d317e29c26aa0bd.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/release/deps/libcpx_mesh-2d317e29c26aa0bd.rlib: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/release/deps/libcpx_mesh-2d317e29c26aa0bd.rmeta: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
