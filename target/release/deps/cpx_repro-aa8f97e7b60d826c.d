/root/repo/target/release/deps/cpx_repro-aa8f97e7b60d826c.d: src/lib.rs

/root/repo/target/release/deps/libcpx_repro-aa8f97e7b60d826c.rlib: src/lib.rs

/root/repo/target/release/deps/libcpx_repro-aa8f97e7b60d826c.rmeta: src/lib.rs

src/lib.rs:
