/root/repo/target/release/deps/cpx_simpic-b6bde706fb6c3191.d: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/release/deps/libcpx_simpic-b6bde706fb6c3191.rlib: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

/root/repo/target/release/deps/libcpx_simpic-b6bde706fb6c3191.rmeta: crates/simpic/src/lib.rs crates/simpic/src/config.rs crates/simpic/src/diagnostics.rs crates/simpic/src/dist.rs crates/simpic/src/pic.rs crates/simpic/src/trace.rs

crates/simpic/src/lib.rs:
crates/simpic/src/config.rs:
crates/simpic/src/diagnostics.rs:
crates/simpic/src/dist.rs:
crates/simpic/src/pic.rs:
crates/simpic/src/trace.rs:
