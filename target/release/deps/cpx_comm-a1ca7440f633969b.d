/root/repo/target/release/deps/cpx_comm-a1ca7440f633969b.d: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/release/deps/libcpx_comm-a1ca7440f633969b.rlib: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

/root/repo/target/release/deps/libcpx_comm-a1ca7440f633969b.rmeta: crates/comm/src/lib.rs crates/comm/src/group.rs crates/comm/src/nonblocking.rs crates/comm/src/payload.rs crates/comm/src/runtime.rs crates/comm/src/window.rs

crates/comm/src/lib.rs:
crates/comm/src/group.rs:
crates/comm/src/nonblocking.rs:
crates/comm/src/payload.rs:
crates/comm/src/runtime.rs:
crates/comm/src/window.rs:
