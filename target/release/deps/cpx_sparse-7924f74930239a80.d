/root/repo/target/release/deps/cpx_sparse-7924f74930239a80.d: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

/root/repo/target/release/deps/libcpx_sparse-7924f74930239a80.rlib: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

/root/repo/target/release/deps/libcpx_sparse-7924f74930239a80.rmeta: crates/sparse/src/lib.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dist.rs crates/sparse/src/multilevel.rs crates/sparse/src/partition.rs crates/sparse/src/renumber.rs crates/sparse/src/spgemm.rs crates/sparse/src/tridiag.rs

crates/sparse/src/lib.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dist.rs:
crates/sparse/src/multilevel.rs:
crates/sparse/src/partition.rs:
crates/sparse/src/renumber.rs:
crates/sparse/src/spgemm.rs:
crates/sparse/src/tridiag.rs:
