/root/repo/target/release/deps/cpx_core-0969690b0c886570.d: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

/root/repo/target/release/deps/libcpx_core-0969690b0c886570.rlib: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

/root/repo/target/release/deps/libcpx_core-0969690b0c886570.rmeta: crates/core/src/lib.rs crates/core/src/functional.rs crates/core/src/instance.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/testcases.rs

crates/core/src/lib.rs:
crates/core/src/functional.rs:
crates/core/src/instance.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/testcases.rs:
