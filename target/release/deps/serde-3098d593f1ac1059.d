/root/repo/target/release/deps/serde-3098d593f1ac1059.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-3098d593f1ac1059.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-3098d593f1ac1059.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
