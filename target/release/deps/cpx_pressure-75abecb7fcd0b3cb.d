/root/repo/target/release/deps/cpx_pressure-75abecb7fcd0b3cb.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/release/deps/libcpx_pressure-75abecb7fcd0b3cb.rlib: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/release/deps/libcpx_pressure-75abecb7fcd0b3cb.rmeta: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
