/root/repo/target/release/deps/cpx_pressure-0444f3526c63b26b.d: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/release/deps/libcpx_pressure-0444f3526c63b26b.rlib: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

/root/repo/target/release/deps/libcpx_pressure-0444f3526c63b26b.rmeta: crates/pressure/src/lib.rs crates/pressure/src/async_spray.rs crates/pressure/src/config.rs crates/pressure/src/solver.rs crates/pressure/src/spray.rs crates/pressure/src/trace.rs

crates/pressure/src/lib.rs:
crates/pressure/src/async_spray.rs:
crates/pressure/src/config.rs:
crates/pressure/src/solver.rs:
crates/pressure/src/spray.rs:
crates/pressure/src/trace.rs:
