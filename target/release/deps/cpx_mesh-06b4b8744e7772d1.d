/root/repo/target/release/deps/cpx_mesh-06b4b8744e7772d1.d: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/release/deps/libcpx_mesh-06b4b8744e7772d1.rlib: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

/root/repo/target/release/deps/libcpx_mesh-06b4b8744e7772d1.rmeta: crates/mesh/src/lib.rs crates/mesh/src/hierarchy.rs crates/mesh/src/interface.rs crates/mesh/src/mesh.rs crates/mesh/src/partition.rs

crates/mesh/src/lib.rs:
crates/mesh/src/hierarchy.rs:
crates/mesh/src/interface.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/partition.rs:
