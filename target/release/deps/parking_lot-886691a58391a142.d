/root/repo/target/release/deps/parking_lot-886691a58391a142.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-886691a58391a142.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-886691a58391a142.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
