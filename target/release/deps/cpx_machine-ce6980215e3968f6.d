/root/repo/target/release/deps/cpx_machine-ce6980215e3968f6.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/release/deps/libcpx_machine-ce6980215e3968f6.rlib: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/release/deps/libcpx_machine-ce6980215e3968f6.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/cost.rs crates/machine/src/des.rs crates/machine/src/model.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/cost.rs:
crates/machine/src/des.rs:
crates/machine/src/model.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
