/root/repo/target/release/deps/cpx_mgcfd-331ea46483570e0d.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/release/deps/libcpx_mgcfd-331ea46483570e0d.rlib: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/release/deps/libcpx_mgcfd-331ea46483570e0d.rmeta: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
