/root/repo/target/release/deps/cpx_amg-73a332db8f48c2b7.d: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

/root/repo/target/release/deps/libcpx_amg-73a332db8f48c2b7.rlib: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

/root/repo/target/release/deps/libcpx_amg-73a332db8f48c2b7.rmeta: crates/amg/src/lib.rs crates/amg/src/aggregate.rs crates/amg/src/chebyshev.rs crates/amg/src/cycle.rs crates/amg/src/hierarchy.rs crates/amg/src/interp.rs crates/amg/src/pcg.rs crates/amg/src/smoother.rs crates/amg/src/strength.rs

crates/amg/src/lib.rs:
crates/amg/src/aggregate.rs:
crates/amg/src/chebyshev.rs:
crates/amg/src/cycle.rs:
crates/amg/src/hierarchy.rs:
crates/amg/src/interp.rs:
crates/amg/src/pcg.rs:
crates/amg/src/smoother.rs:
crates/amg/src/strength.rs:
