/root/repo/target/release/deps/cpx_coupler-ca5c6d11ced54c1c.d: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/release/deps/libcpx_coupler-ca5c6d11ced54c1c.rlib: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/release/deps/libcpx_coupler-ca5c6d11ced54c1c.rmeta: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

crates/coupler/src/lib.rs:
crates/coupler/src/conservative.rs:
crates/coupler/src/interp.rs:
crates/coupler/src/layout.rs:
crates/coupler/src/search.rs:
crates/coupler/src/trace.rs:
crates/coupler/src/unit.rs:
