/root/repo/target/release/deps/cpx_mgcfd-bbb77905e9a5b7dc.d: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/release/deps/libcpx_mgcfd-bbb77905e9a5b7dc.rlib: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

/root/repo/target/release/deps/libcpx_mgcfd-bbb77905e9a5b7dc.rmeta: crates/mgcfd/src/lib.rs crates/mgcfd/src/config.rs crates/mgcfd/src/dist.rs crates/mgcfd/src/euler.rs crates/mgcfd/src/trace.rs

crates/mgcfd/src/lib.rs:
crates/mgcfd/src/config.rs:
crates/mgcfd/src/dist.rs:
crates/mgcfd/src/euler.rs:
crates/mgcfd/src/trace.rs:
