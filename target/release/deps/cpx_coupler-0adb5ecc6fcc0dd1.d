/root/repo/target/release/deps/cpx_coupler-0adb5ecc6fcc0dd1.d: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/release/deps/libcpx_coupler-0adb5ecc6fcc0dd1.rlib: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

/root/repo/target/release/deps/libcpx_coupler-0adb5ecc6fcc0dd1.rmeta: crates/coupler/src/lib.rs crates/coupler/src/conservative.rs crates/coupler/src/interp.rs crates/coupler/src/layout.rs crates/coupler/src/search.rs crates/coupler/src/trace.rs crates/coupler/src/unit.rs

crates/coupler/src/lib.rs:
crates/coupler/src/conservative.rs:
crates/coupler/src/interp.rs:
crates/coupler/src/layout.rs:
crates/coupler/src/search.rs:
crates/coupler/src/trace.rs:
crates/coupler/src/unit.rs:
