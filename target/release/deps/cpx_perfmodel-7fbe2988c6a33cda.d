/root/repo/target/release/deps/cpx_perfmodel-7fbe2988c6a33cda.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/release/deps/libcpx_perfmodel-7fbe2988c6a33cda.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

/root/repo/target/release/deps/libcpx_perfmodel-7fbe2988c6a33cda.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/alloc.rs crates/perfmodel/src/curve.rs crates/perfmodel/src/scale.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/alloc.rs:
crates/perfmodel/src/curve.rs:
crates/perfmodel/src/scale.rs:
