/root/repo/target/release/deps/proptest-15e8279c4a8cb874.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-15e8279c4a8cb874.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-15e8279c4a8cb874.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
