/root/repo/target/release/examples/fault_study-67763f0e7f9c49fe.d: examples/fault_study.rs

/root/repo/target/release/examples/fault_study-67763f0e7f9c49fe: examples/fault_study.rs

examples/fault_study.rs:
