/root/repo/target/release/examples/_probe-9304209f48acd7e2.d: examples/_probe.rs

/root/repo/target/release/examples/_probe-9304209f48acd7e2: examples/_probe.rs

examples/_probe.rs:
