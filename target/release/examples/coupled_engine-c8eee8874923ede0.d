/root/repo/target/release/examples/coupled_engine-c8eee8874923ede0.d: examples/coupled_engine.rs

/root/repo/target/release/examples/coupled_engine-c8eee8874923ede0: examples/coupled_engine.rs

examples/coupled_engine.rs:
