//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small deterministic-PRNG surface it actually uses: seeded
//! [`rngs::StdRng`] construction ([`SeedableRng::seed_from_u64`]) and the
//! [`Rng`] sampling methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistical
//! quality is more than adequate for the synthetic meshes, sprays and
//! test inputs this workspace draws. The stream differs from upstream
//! `rand`'s `StdRng` (ChaCha12); nothing in the workspace depends on the
//! exact stream, only on determinism for a given seed.

use std::ops::Range;

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // Guard against the all-zero state (unreachable via splitmix64,
        // but cheap to assert).
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Generators re-exported under the upstream module path.
pub mod rngs {
    pub use crate::StdRng;
}

/// Types sampleable uniformly over their "natural" domain (`rng.gen()`):
/// floats over `[0, 1)`, integers over their full range, `bool` fair.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the type's natural domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
