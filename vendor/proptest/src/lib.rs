//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this stub implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` macros, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`, range and tuple strategies, and
//! [`collection::vec`].
//!
//! Semantics versus upstream: inputs are drawn from a deterministic
//! per-test seeded PRNG (no persistence file, no environment-variable
//! seeding), and failing cases are **not shrunk** — the failing input is
//! reported as-is by the underlying `assert!`. That trades debugging
//! convenience for zero dependencies; test *coverage* is equivalent.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic test PRNG (xoshiro256++ seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator seeded deterministically from `label` (the test
        /// name), so every run draws the same inputs.
        pub fn deterministic(label: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u128) -> u128 {
            assert!(span > 0);
            (self.next_u64() as u128) % span
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate`
    /// draws one concrete value.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from
        /// it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector strategy (length uniform in `size`, exclusive upper
    /// bound, as upstream's `Range<usize>` conversion behaves).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Supports the upstream form used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0usize..10, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                $body
            }
        }
    )*};
}

/// `assert!` that reports through the property harness (no shrinking in
/// this stub — delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(limit: usize) -> impl Strategy<Value = (usize, usize)> {
        (1..limit, 1..limit)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..32, x in -1.5f64..2.5, k in -100i32..100) {
            prop_assert!((2..32).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!((-100..100).contains(&k));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0usize..5, 0.0f64..1.0), 0..20),
            pair in arb_pair(10).prop_map(|(a, b)| a + b),
            nested in (1usize..4).prop_flat_map(|n| crate::collection::vec(0..n, 1..5)),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!((2..=18).contains(&pair));
            prop_assert!(!nested.is_empty());
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        let strat = (0u64..1_000_000, 0.0f64..1.0);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            let (va, vb) = (
                crate::strategy::Strategy::generate(&strat, &mut a),
                crate::strategy::Strategy::generate(&strat, &mut b),
            );
            assert_eq!(va.0, vb.0);
            assert_eq!(va.1.to_bits(), vb.1.to_bits());
        }
    }
}
