//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's benches use — benchmark
//! groups, `bench_function`, `iter`/`iter_batched`, `sample_size`, the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! mean-over-samples wall-clock measurement printed to stdout. No
//! statistics, plots or saved baselines; swap the upstream crate back in
//! when registry access is available if those are needed.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (ignored; per-iteration setup always).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Close the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure to time the routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called `samples` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up, then timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total.as_secs_f64() / b.iters as f64;
        println!(
            "bench {id:<50} {:>12.3} µs/iter ({} iters)",
            mean * 1e6,
            b.iters
        );
    } else {
        println!("bench {id:<50} (no timed iterations)");
    }
}

/// Group benchmark functions; supports the plain and `name/config/
/// targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        let mut calls = 0u64;
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = unit_group;
        config = Criterion::default().sample_size(2);
        targets = probe
    }

    #[test]
    fn harness_runs() {
        unit_group();
    }
}
