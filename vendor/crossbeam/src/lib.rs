//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}` (plus the error types) and `crossbeam::thread::scope`.
//! Since Rust 1.72 `std::sync::mpsc` channels are `Sync` senders backed
//! by the same crossbeam queue algorithm upstream, and since Rust 1.63
//! `std::thread::scope` provides the same structured-concurrency
//! guarantee crossbeam's scoped threads pioneered (every spawned thread
//! is joined before `scope` returns, so non-`'static` borrows may cross
//! into workers) — so this stub simply re-exports std under the
//! crossbeam paths.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (the subset `cpx-par` uses), std-shaped: `scope(|s| {
/// s.spawn(|| ...); })` joins every spawned thread before returning,
/// which is what lets workers borrow stack data from the caller.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn recv_timeout_on_empty() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnected_send_errors() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_joins_and_allows_borrows() {
        let data = [1u32, 2, 3, 4];
        let mut partials = [0u32; 2];
        let (lo, hi) = partials.split_at_mut(1);
        super::thread::scope(|s| {
            s.spawn(|| lo[0] = data[..2].iter().sum());
            s.spawn(|| hi[0] = data[2..].iter().sum());
        });
        assert_eq!(partials, [3, 7]);
    }

    #[test]
    fn senders_shared_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let tx = std::sync::Arc::new(tx);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = std::sync::Arc::clone(&tx);
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
