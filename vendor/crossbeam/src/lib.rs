//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! The workspace uses only `crossbeam::channel::{unbounded, Sender,
//! Receiver}` (plus the error types), and since Rust 1.72
//! `std::sync::mpsc` channels are `Sync` senders backed by the same
//! crossbeam queue algorithm upstream — so this stub simply re-exports
//! std's channels under the crossbeam paths.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn recv_timeout_on_empty() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnected_send_errors() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn senders_shared_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let tx = std::sync::Arc::new(tx);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = std::sync::Arc::clone(&tx);
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
