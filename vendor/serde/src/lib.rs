//! Offline vendored stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few model
//! structs but never instantiates a serializer (no format crate is in
//! the dependency tree), so this stub provides the trait names as
//! blanket-implemented markers and re-exports no-op derive macros. If a
//! real serialization format is ever needed, replace this stub with the
//! upstream crate.

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` module shape for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        x: f64,
        #[serde(default)]
        y: u32,
    }

    fn takes_serialize<T: super::Serialize>(_t: &T) {}

    #[test]
    fn derive_compiles_and_traits_are_blanket() {
        let p = Probe { x: 1.0, y: 2 };
        takes_serialize(&p);
        assert_eq!(p, Probe { x: 1.0, y: 2 });
    }
}
