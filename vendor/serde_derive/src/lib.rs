//! Offline vendored stand-in for `serde_derive`.
//!
//! The vendored `serde` stub blanket-implements its marker traits for
//! every type, so these derives have nothing to emit — they exist so
//! `#[derive(Serialize, Deserialize)]` (and `#[serde(...)]` helper
//! attributes) keep compiling without crates.io access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (the trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (the trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
