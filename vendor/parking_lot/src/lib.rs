//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! Provides the `Mutex`/`RwLock` API shape the workspace uses — locking
//! returns the guard directly (no `Result`), and a lock held by a
//! panicking thread is not poisoned for later users. Backed by
//! `std::sync`, with poison errors unwrapped into their inner guards.

use std::sync::{self, PoisonError};

/// A mutex whose `lock` never fails (poisoning is ignored).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
