//! Umbrella crate for the CPX coupled mini-app reproduction workspace.
//!
//! This crate exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). The actual library surface lives in
//! the `cpx-*` crates; the most convenient entry point is
//! [`cpx_core::prelude`].

pub use cpx_core as core;
