//! Property-based tests of the SELL-C-σ layout: for *any* matrix and
//! *any* (c, σ, chunk, thread) configuration, the SELL SpMV must be
//! bit-identical to the serial CSR SpMV — the layout is an execution
//! detail, never a numerics change.

use proptest::prelude::*;

use cpx_par::ParPool;
use cpx_sparse::coo::Coo;
use cpx_sparse::csr::Csr;
use cpx_sparse::{SellCSigma, SELL_MAX_C};

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
/// Duplicate pushes accumulate, rows may be empty, and column spreads
/// routinely straddle the 256-wide narrow-mode limit.
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -100i32..100), 0..max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(nr, nc);
            for (r, c, v) in trips {
                coo.push(r, c, v as f64 * 0.25);
            }
            coo.to_csr()
        })
    })
}

fn csr_reference(a: &Csr, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    a.spmv_with(&ParPool::serial(), 1, x, &mut y);
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sell_spmv_bit_identical_for_any_c_sigma(
        a in arb_csr(40, 300),
        c in 1usize..(2 * SELL_MAX_C + 1), // beyond the clamp on purpose
        sigma in 1usize..96,
    ) {
        let sell = SellCSigma::from_csr(&a, c, sigma);
        prop_assert_eq!(sell.nrows(), a.nrows());
        prop_assert_eq!(sell.nnz(), a.nnz());
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin() + 0.5).collect();
        let expected = csr_reference(&a, &x);
        let mut y = vec![0.0; a.nrows()];
        sell.spmv(&x, &mut y);
        prop_assert_eq!(&y, &expected);
    }

    #[test]
    fn sell_spmv_bit_identical_across_threads_and_chunks(
        a in arb_csr(30, 200),
        c in 1usize..(SELL_MAX_C + 1),
        sigma in 1usize..64,
        chunks in 1usize..10,
    ) {
        let sell = SellCSigma::from_csr(&a, c, sigma);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).cos()).collect();
        let expected = csr_reference(&a, &x);
        for threads in [1usize, 2, 4, 8] {
            let pool = ParPool::with_threads(threads);
            let mut y = vec![0.0; a.nrows()];
            sell.spmv_with(&pool, chunks, &x, &mut y);
            prop_assert_eq!(&y, &expected, "threads={} chunks={}", threads, chunks);
        }
    }

    #[test]
    fn sell_handles_empty_and_dense_rows(
        nrows in 1usize..40,
        ncols in 1usize..40,
        c in 1usize..(SELL_MAX_C + 1),
        sigma in 1usize..48,
        seed in 0u64..500,
    ) {
        // Adversarial shape: even rows dense, odd rows empty — maximal
        // padding imbalance inside a chunk.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(nrows, ncols);
        for r in (0..nrows).step_by(2) {
            for col in 0..ncols {
                if rng.gen_bool(0.7) {
                    coo.push(r, col, rng.gen_range(-2.0..2.0));
                }
            }
        }
        let a = coo.to_csr();
        let sell = SellCSigma::from_csr(&a, c, sigma);
        let x: Vec<f64> = (0..ncols).map(|i| 1.0 + i as f64 * 0.125).collect();
        let expected = csr_reference(&a, &x);
        let mut y = vec![0.0; nrows];
        sell.spmv(&x, &mut y);
        prop_assert_eq!(&y, &expected);
        // Occupancy accounting stays a valid fraction even here.
        prop_assert!(sell.occupancy() >= 0.0 && sell.occupancy() <= 1.0);
    }

    #[test]
    fn sell_single_row_matrix(ncols in 1usize..300, c in 1usize..(SELL_MAX_C + 1)) {
        // One row, columns spread wide enough to force wide-mode chunks
        // when ncols > 256.
        let mut coo = Coo::new(1, ncols);
        for col in (0..ncols).step_by(3) {
            coo.push(0, col, col as f64 - 1.5);
        }
        let a = coo.to_csr();
        let sell = SellCSigma::from_csr(&a, c, 256);
        let x: Vec<f64> = (0..ncols).map(|i| (i as f64).sin()).collect();
        let expected = csr_reference(&a, &x);
        let mut y = vec![0.0; 1];
        sell.spmv(&x, &mut y);
        prop_assert_eq!(&y, &expected);
    }

    #[test]
    fn sell_tail_view_matches_full_spmv_tail(
        a in arb_csr(30, 150),
        c in 1usize..(SELL_MAX_C + 1),
        sigma in 1usize..32,
        knum in 0usize..100,
    ) {
        let k = knum % (a.nrows() + 1);
        let tail = SellCSigma::from_csr_tail(&a, k, c, sigma);
        prop_assert_eq!(tail.nrows(), a.nrows() - k);
        let x: Vec<f64> = (0..a.ncols()).map(|i| 0.25 * i as f64 - 1.0).collect();
        let expected = csr_reference(&a, &x);
        let mut y = vec![0.0; a.nrows() - k];
        tail.spmv(&x, &mut y);
        prop_assert_eq!(&y[..], &expected[k..]);
    }
}
