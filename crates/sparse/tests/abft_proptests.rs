//! Property tests for the ABFT checksum layer.
//!
//! Two promises the silent-data-corruption design makes:
//!
//! 1. **No false positives**: on uncorrupted matrices, every checked
//!    kernel verifies clean for arbitrary shapes, sparsity patterns and
//!    input vectors — the tolerance absorbs legitimate rounding.
//! 2. **Above-threshold detection**: a seeded bit flip in the stored
//!    values whose induced output perturbation exceeds the published
//!    detection threshold is always caught by the next checked kernel.

use proptest::prelude::*;

use cpx_comm::BitFlipInjector;
use cpx_sparse::abft::{spgemm_hash_checked, spgemm_spa_checked, spgemm_twopass_checked};
use cpx_sparse::coo::Coo;
use cpx_sparse::csr::Csr;
use cpx_sparse::AbftCsr;

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..max_dim, 2..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -100i32..100), 1..max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(nr, nc);
            for (r, c, v) in trips {
                coo.push(r, c, v as f64 * 0.25);
            }
            coo.to_csr()
        })
    })
}

/// A square variant for SpGEMM pairs.
fn arb_square(dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0..dim, 0..dim, -50i32..50), 1..max_nnz).prop_map(move |trips| {
        let mut coo = Coo::new(dim, dim);
        for (r, c, v) in trips {
            coo.push(r, c, v as f64 * 0.5);
        }
        coo.to_csr()
    })
}

fn input_vec(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + (i as f64 * 0.37 + phase).sin())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clean_spmv_never_false_positives(a in arb_csr(24, 120), phase in 0.0f64..6.0) {
        let work = AbftCsr::new(a);
        let x = input_vec(work.matrix().ncols(), phase);
        let mut y = vec![0.0; work.matrix().nrows()];
        prop_assert!(work.verify_values().is_ok());
        prop_assert!(work.spmv_checked(&x, &mut y).is_ok());
        // Repeated application stays clean: the check is stateless.
        prop_assert!(work.spmv_checked(&x, &mut y).is_ok());
    }

    #[test]
    fn clean_spgemm_never_false_positives(
        a in arb_square(14, 70),
        b in arb_square(14, 70),
    ) {
        let a = AbftCsr::new(a);
        let b = AbftCsr::new(b);
        prop_assert!(spgemm_twopass_checked(&a, &b).is_ok());
        prop_assert!(spgemm_spa_checked(&a, &b, 4).is_ok());
        prop_assert!(spgemm_hash_checked(&a, &b).is_ok());
    }

    #[test]
    fn above_threshold_value_flips_always_caught(
        a in arb_csr(20, 100),
        idx in 0usize..1_000_000,
        bit in 48usize..62,
        phase in 0.0f64..6.0,
    ) {
        let mut work = AbftCsr::new(a);
        let nnz = work.matrix().nnz();
        if nnz == 0 {
            continue;
        }
        let x = input_vec(work.matrix().ncols(), phase);
        let threshold = work.spmv_tolerance(&x);
        let gidx = idx % nnz;

        // Column of the struck entry: walk the rows.
        let mut col = 0;
        let mut seen = 0;
        'rows: for r in 0..work.matrix().nrows() {
            let (cols, _) = work.matrix().row(r);
            if seen + cols.len() > gidx {
                col = cols[gidx - seen];
                break 'rows;
            }
            seen += cols.len();
        }

        let orig = work.matrix().vals()[gidx];
        let flipped = BitFlipInjector::flip(orig, bit as u32);
        if !flipped.is_finite() {
            // Non-finite corruption trivially detected; covered elsewhere.
            continue;
        }
        // Output perturbation the flip induces in Σy.
        let delta = (flipped - orig).abs() * x[col].abs();
        if delta <= 2.0 * threshold {
            continue; // below the published detection threshold: maskable
        }
        work.matrix_mut().vals_mut()[gidx] = flipped;
        let mut y = vec![0.0; work.matrix().nrows()];
        prop_assert!(
            work.spmv_checked(&x, &mut y).is_err(),
            "flip of {delta:e} above threshold {threshold:e} went undetected"
        );
        prop_assert!(work.verify_values().is_err());
    }

    #[test]
    fn struck_spgemm_operand_is_caught(
        a in arb_square(12, 60),
        b in arb_square(12, 60),
        idx in 0usize..1_000_000,
    ) {
        let a = AbftCsr::new(a);
        let mut b = AbftCsr::new(b);
        let nnz = b.matrix().nnz();
        if nnz == 0 {
            continue;
        }
        let gidx = idx % nnz;
        let orig = b.matrix().vals()[gidx];
        if orig == 0.0 {
            continue; // flipping a stored zero's low bits can be maskable
        }
        // Row of the struck entry: the product only sees row k of B
        // through column k of A, so detection via the product requires a
        // nonzero somewhere in that column.
        let mut k_row = 0;
        let mut seen = 0;
        for r in 0..b.matrix().nrows() {
            let (cols, _) = b.matrix().row(r);
            if seen + cols.len() > gidx {
                k_row = r;
                break;
            }
            seen += cols.len();
        }
        let reaches_product = (0..a.matrix().nrows()).any(|r| {
            let (cols, vals) = a.matrix().row(r);
            cols.iter().zip(vals).any(|(&c, &v)| c == k_row && v != 0.0)
        });
        // A high exponent-bit flip scales the entry by ≥2^16: far above
        // any element-wise tolerance once it reaches a product entry.
        let flipped = BitFlipInjector::flip(orig, 56);
        if !flipped.is_finite() {
            continue;
        }
        b.matrix_mut().vals_mut()[gidx] = flipped;
        // The corrupted operand itself is always caught.
        prop_assert!(b.verify_values().is_err());
        if reaches_product {
            prop_assert!(spgemm_twopass_checked(&a, &b).is_err());
        }
    }
}
