//! Property-based tests for the sparse substrate.

use proptest::prelude::*;

use cpx_sparse::coo::Coo;
use cpx_sparse::csr::Csr;
use cpx_sparse::renumber::{renumber_hash_merge, renumber_sort};
use cpx_sparse::spgemm::{spgemm_hash, spgemm_spa, spgemm_twopass};
use cpx_sparse::{partition::partition_quality, rcb_partition};

/// Strategy: a random sparse matrix as (nrows, ncols, triplets).
fn arb_csr(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -100i32..100), 0..max_nnz).prop_map(move |trips| {
            let mut coo = Coo::new(nr, nc);
            for (r, c, v) in trips {
                coo.push(r, c, v as f64 * 0.25);
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_from_coo_always_valid(a in arb_csr(20, 80)) {
        prop_assert!(a.validate().is_ok());
    }

    #[test]
    fn transpose_is_involution(a in arb_csr(20, 80)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_preserves_entries(a in arb_csr(12, 40)) {
        let at = a.transpose();
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                prop_assert_eq!(at.get(c, r), v);
            }
        }
    }

    #[test]
    fn spmv_linear_in_x(a in arb_csr(15, 60), k in -4.0f64..4.0) {
        let n = a.ncols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let kx: Vec<f64> = x.iter().map(|v| k * v).collect();
        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y1);
        a.spmv(&kx, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((k * u - v).abs() < 1e-9 * (1.0 + u.abs()));
        }
    }

    #[test]
    fn spgemm_variants_agree(seed in 0u64..1000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (n, k, m) = (
            rng.gen_range(1..15usize),
            rng.gen_range(1..15usize),
            rng.gen_range(1..15usize),
        );
        let mut ca = Coo::new(n, k);
        let mut cb = Coo::new(k, m);
        for _ in 0..rng.gen_range(0..40) {
            ca.push(rng.gen_range(0..n), rng.gen_range(0..k), rng.gen_range(-2.0..2.0));
        }
        for _ in 0..rng.gen_range(0..40) {
            cb.push(rng.gen_range(0..k), rng.gen_range(0..m), rng.gen_range(-2.0..2.0));
        }
        let (a, b) = (ca.to_csr(), cb.to_csr());
        let c1 = spgemm_twopass(&a, &b).product;
        let c2 = spgemm_spa(&a, &b, 1 + (seed as usize % 5)).product;
        let c3 = spgemm_hash(&a, &b).product;
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(&c1, &c3);
        prop_assert!(c1.validate().is_ok());
    }

    #[test]
    fn spgemm_respects_distributivity(seed in 0u64..200) {
        // A(B + C) == AB + AC (within fp tolerance).
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..10usize);
        let mk = |rng: &mut StdRng| {
            let mut c = Coo::new(n, n);
            for _ in 0..rng.gen_range(0..25) {
                c.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-1.0..1.0));
            }
            c.to_csr()
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let c = mk(&mut rng);
        let lhs = spgemm_spa(&a, &b.add(&c), 2).product;
        let rhs = spgemm_spa(&a, &b, 2).product.add(&spgemm_spa(&a, &c, 2).product);
        for r in 0..n {
            for cc in 0..n {
                prop_assert!((lhs.get(r, cc) - rhs.get(r, cc)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn renumber_methods_identical(refs in proptest::collection::vec(0u64..500, 0..400), workers in 1usize..9) {
        let a = renumber_sort(&refs);
        let b = renumber_hash_merge(&refs, workers);
        prop_assert_eq!(&a.table, &b.table);
        // Table sorted and unique.
        for w in a.table.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Every reference resolvable.
        for &r in &refs {
            prop_assert!(a.local_of(r).is_some());
        }
    }

    #[test]
    fn rcb_partition_covers(nx in 1usize..10, ny in 1usize..10, parts in 1usize..9) {
        let mut coords = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                coords.push([i as f64, j as f64, 0.0]);
            }
        }
        let a = rcb_partition(&coords, parts);
        prop_assert_eq!(a.len(), coords.len());
        prop_assert!(a.iter().all(|&p| p < parts));
        // When there are at least as many points as parts, no part empty.
        if coords.len() >= parts {
            let mut seen = vec![false; parts];
            for &p in &a {
                seen[p] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn partition_quality_conserves_load(n in 2usize..12, parts in 1usize..6) {
        let (adj, coords) = cpx_sparse::partition::grid_adjacency(n, n, 1);
        let a = rcb_partition(&coords, parts);
        let q = partition_quality(&adj, &a, parts);
        prop_assert!(q.max_load as f64 >= q.avg_load);
        prop_assert!(q.imbalance() >= 1.0 - 1e-12);
        // Halo of every part bounded by total remote cells.
        for &h in &q.halo_sizes {
            prop_assert!(h <= n * n);
        }
    }
}
