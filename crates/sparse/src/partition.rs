//! Mesh and matrix partitioners.
//!
//! Two k-way partitioners used throughout the workspace:
//!
//! * [`rcb_partition`] — recursive coordinate bisection over entity
//!   centroids: geometric, fast, deterministic, the standard choice for
//!   the spatial decompositions in the mini-apps;
//! * [`greedy_graph_partition`] — BFS-based greedy graph growing over an
//!   adjacency structure (a symmetric CSR), used where coordinates are
//!   unavailable (pure algebraic settings).
//!
//! [`PartitionQuality`] measures what the performance model actually
//! cares about: load imbalance and halo (cut) sizes, whose growth with
//! part count is what bends every parallel-efficiency curve in the paper.

use crate::csr::Csr;

/// Partition quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub parts: usize,
    /// Cells in the largest part.
    pub max_load: usize,
    /// Mean cells per part.
    pub avg_load: f64,
    /// Edges crossing part boundaries (each counted once).
    pub edge_cut: usize,
    /// For each part, the number of remote cells it must ghost (halo).
    pub halo_sizes: Vec<usize>,
    /// For each part, the number of neighbouring parts it talks to.
    pub neighbor_counts: Vec<usize>,
}

impl PartitionQuality {
    /// `max_load / avg_load` — 1.0 is perfect balance.
    pub fn imbalance(&self) -> f64 {
        if self.avg_load == 0.0 {
            1.0
        } else {
            self.max_load as f64 / self.avg_load
        }
    }

    /// Largest halo across parts.
    pub fn max_halo(&self) -> usize {
        self.halo_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Mean halo across parts.
    pub fn avg_halo(&self) -> f64 {
        if self.halo_sizes.is_empty() {
            0.0
        } else {
            self.halo_sizes.iter().sum::<usize>() as f64 / self.halo_sizes.len() as f64
        }
    }
}

/// Recursive coordinate bisection: split `coords` (d-dimensional points)
/// into `parts` parts of near-equal size by recursively bisecting along
/// the longest extent. Returns `assignment[i] = part`.
pub fn rcb_partition(coords: &[[f64; 3]], parts: usize) -> Vec<usize> {
    assert!(parts >= 1);
    let n = coords.len();
    let mut assignment = vec![0usize; n];
    if parts == 1 || n == 0 {
        return assignment;
    }
    let mut ids: Vec<usize> = (0..n).collect();
    rcb_recurse(coords, &mut ids, 0, parts, &mut assignment);
    assignment
}

fn rcb_recurse(
    coords: &[[f64; 3]],
    ids: &mut [usize],
    first_part: usize,
    parts: usize,
    assignment: &mut [usize],
) {
    if parts == 1 {
        for &i in ids.iter() {
            assignment[i] = first_part;
        }
        return;
    }
    // Longest axis of the bounding box of this id set.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in ids.iter() {
        for d in 0..3 {
            lo[d] = lo[d].min(coords[i][d]);
            hi[d] = hi[d].max(coords[i][d]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap();
    // Split proportional to the part counts on each side.
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let split = ids.len() * left_parts / parts;
    ids.sort_unstable_by(|&a, &b| {
        coords[a][axis]
            .partial_cmp(&coords[b][axis])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let (left, right) = ids.split_at_mut(split);
    rcb_recurse(coords, left, first_part, left_parts, assignment);
    rcb_recurse(
        coords,
        right,
        first_part + left_parts,
        right_parts,
        assignment,
    );
}

/// Greedy BFS graph growing over a symmetric adjacency CSR: grow parts
/// one at a time from the lowest-numbered unassigned vertex.
pub fn greedy_graph_partition(adj: &Csr, parts: usize) -> Vec<usize> {
    assert!(parts >= 1);
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    let n = adj.nrows();
    let mut assignment = vec![usize::MAX; n];
    if n == 0 {
        return assignment;
    }
    let target = n.div_ceil(parts);
    let mut queue = std::collections::VecDeque::new();
    let mut next_seed = 0usize;
    for part in 0..parts {
        let mut grown = 0usize;
        // Cap the last part at "the rest".
        let cap = if part + 1 == parts { n } else { target };
        while grown < cap {
            let v = match queue.pop_front() {
                Some(v) if assignment[v] == usize::MAX => v,
                Some(_) => continue,
                None => {
                    // Find the next unassigned seed.
                    while next_seed < n && assignment[next_seed] != usize::MAX {
                        next_seed += 1;
                    }
                    if next_seed >= n {
                        break;
                    }
                    next_seed
                }
            };
            assignment[v] = part;
            grown += 1;
            let (neigh, _) = adj.row(v);
            for &u in neigh {
                if assignment[u] == usize::MAX {
                    queue.push_back(u);
                }
            }
        }
        queue.clear();
    }
    // Any leftovers (disconnected tails) go to the last part.
    for a in assignment.iter_mut() {
        if *a == usize::MAX {
            *a = parts - 1;
        }
    }
    assignment
}

/// Measure partition quality for `assignment` over adjacency `adj`.
pub fn partition_quality(adj: &Csr, assignment: &[usize], parts: usize) -> PartitionQuality {
    assert_eq!(adj.nrows(), assignment.len());
    let n = adj.nrows();
    let mut loads = vec![0usize; parts];
    for &p in assignment {
        loads[p] += 1;
    }
    let mut edge_cut = 0usize;
    // halo[p] counts distinct remote cells adjacent to part p.
    let mut halo_sets: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); parts];
    let mut neigh_sets: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); parts];
    for v in 0..n {
        let pv = assignment[v];
        let (neigh, _) = adj.row(v);
        for &u in neigh {
            let pu = assignment[u];
            if pu != pv {
                if v < u {
                    edge_cut += 1;
                }
                halo_sets[pv].insert(u);
                neigh_sets[pv].insert(pu);
            }
        }
    }
    PartitionQuality {
        parts,
        max_load: loads.iter().copied().max().unwrap_or(0),
        avg_load: n as f64 / parts as f64,
        edge_cut,
        halo_sizes: halo_sets.iter().map(|s| s.len()).collect(),
        neighbor_counts: neigh_sets.iter().map(|s| s.len()).collect(),
    }
}

/// Build a grid adjacency (for tests and analytic studies): the graph of
/// an `nx × ny × nz` structured grid with 6-point connectivity.
pub fn grid_adjacency(nx: usize, ny: usize, nz: usize) -> (Csr, Vec<[f64; 3]>) {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = crate::coo::Coo::with_capacity(n, n, 6 * n);
    let mut coords = Vec::with_capacity(n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                coords.push([i as f64, j as f64, k as f64]);
                let me = idx(i, j, k);
                if i > 0 {
                    coo.push(me, idx(i - 1, j, k), 1.0);
                }
                if i + 1 < nx {
                    coo.push(me, idx(i + 1, j, k), 1.0);
                }
                if j > 0 {
                    coo.push(me, idx(i, j - 1, k), 1.0);
                }
                if j + 1 < ny {
                    coo.push(me, idx(i, j + 1, k), 1.0);
                }
                if k > 0 {
                    coo.push(me, idx(i, j, k - 1), 1.0);
                }
                if k + 1 < nz {
                    coo.push(me, idx(i, j, k + 1), 1.0);
                }
            }
        }
    }
    (coo.to_csr(), coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcb_covers_and_balances() {
        let (_, coords) = grid_adjacency(8, 8, 8);
        for parts in [1, 2, 3, 4, 7, 8, 16] {
            let a = rcb_partition(&coords, parts);
            let mut loads = vec![0usize; parts];
            for &p in &a {
                assert!(p < parts);
                loads[p] += 1;
            }
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            assert!(min > 0, "parts={parts}: empty part");
            assert!(
                max - min <= (512 / parts).max(2),
                "parts={parts}: imbalance {loads:?}"
            );
        }
    }

    #[test]
    fn rcb_single_part_is_trivial() {
        let (_, coords) = grid_adjacency(3, 3, 3);
        let a = rcb_partition(&coords, 1);
        assert!(a.iter().all(|&p| p == 0));
    }

    #[test]
    fn greedy_covers_all_vertices() {
        let (adj, _) = grid_adjacency(6, 6, 6);
        for parts in [2, 4, 9] {
            let a = greedy_graph_partition(&adj, parts);
            assert!(a.iter().all(|&p| p < parts));
            let mut loads = vec![0usize; parts];
            for &p in &a {
                loads[p] += 1;
            }
            assert!(loads.iter().all(|&l| l > 0));
        }
    }

    #[test]
    fn quality_halo_grows_sublinearly() {
        // Surface-to-volume: doubling parts should grow total halo by
        // roughly 2^(1/3) per part dimension, not linearly per cell.
        let (adj, coords) = grid_adjacency(16, 16, 16);
        let q2 = partition_quality(&adj, &rcb_partition(&coords, 2), 2);
        let q16 = partition_quality(&adj, &rcb_partition(&coords, 16), 16);
        // Per-part volume shrinks 8x; per-part halo must shrink but far
        // less than 8x (surface scaling).
        let shrink = q2.max_halo() as f64 / q16.max_halo() as f64;
        assert!(shrink < 4.0, "halo shrank too fast: {shrink}");
        assert!(q16.max_halo() > 0);
        assert!(q16.imbalance() < 1.2);
    }

    #[test]
    fn quality_of_perfect_split() {
        // 2x1x1 grid of two cells split into 2 parts: 1 cut edge, halo 1
        // each.
        let (adj, coords) = grid_adjacency(2, 1, 1);
        let a = rcb_partition(&coords, 2);
        let q = partition_quality(&adj, &a, 2);
        assert_eq!(q.edge_cut, 1);
        assert_eq!(q.halo_sizes, vec![1, 1]);
        assert_eq!(q.neighbor_counts, vec![1, 1]);
        assert!((q.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_cut_zero_for_single_part() {
        let (adj, coords) = grid_adjacency(4, 4, 1);
        let a = rcb_partition(&coords, 1);
        let q = partition_quality(&adj, &a, 1);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.max_halo(), 0);
    }

    #[test]
    fn greedy_on_disconnected_graph() {
        // Two disconnected vertices.
        let adj = Csr::zeros(2, 2);
        let a = greedy_graph_partition(&adj, 2);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|&p| p < 2));
    }

    #[test]
    fn determinism() {
        let (adj, coords) = grid_adjacency(10, 10, 4);
        assert_eq!(rcb_partition(&coords, 8), rcb_partition(&coords, 8));
        assert_eq!(
            greedy_graph_partition(&adj, 8),
            greedy_graph_partition(&adj, 8)
        );
    }
}
