//! Algorithm-based fault tolerance (ABFT) for the sparse kernels.
//!
//! Huang–Abraham style checksums adapted to sparse storage: an
//! [`AbftCsr`] carries the row-sum (`A·e`) and column-sum (`eᵀ·A`)
//! checksum vectors of its matrix, captured when the wrapper is built
//! (the *trusted baseline*). Every checked kernel then verifies an
//! identity the checksums imply:
//!
//! * `y = A x` — the output must satisfy `Σᵢ yᵢ = (eᵀA)·x`
//!   ([`AbftCsr::spmv_checked`], [`AbftCsr::spmv_identity_top_checked`]);
//! * `C = A B` — the product's column sums must equal `(eᵀA)·B` and its
//!   row sums must equal `A·(B e)` ([`spgemm_twopass_checked`],
//!   [`spgemm_spa_checked`], [`spgemm_hash_checked`]). Both directions
//!   run because each is blind to one input: a corrupted `B` cancels
//!   out of the column identity (both sides see the same `B`) but not
//!   the row identity, and vice versa for `A`.
//!
//! A bit flipped in a value array after the baseline was captured
//! perturbs one side of the identity and not the other, so the check
//! fails — that is the detection. Flips whose numerical effect is below
//! the floating-point tolerance are *masked*: indistinguishable from
//! rounding, and harmless at the same magnitude.
//!
//! # Tolerance design
//!
//! Checks compare quantities computed along different summation orders,
//! so they differ by genuine rounding. Each verification derives a
//! bound from the *magnitude* sums (`eᵀ|A|`, `|A|·e` — also carried by
//! the wrapper): for a length-`n` accumulation of terms bounded by `M`,
//! the error is below `n · ε · M`, and the detection threshold is that
//! bound times [`ABFT_TOL_FACTOR`]. The factor makes false positives
//! impossible in practice (the real error behaves like `√n · ε · M`)
//! while keeping the threshold many orders of magnitude below any bit
//! flip that matters. [`AbftCsr::spmv_tolerance`] exposes the threshold
//! so experiments can classify injected flips as above or below it.

use std::error::Error;
use std::fmt;

use crate::csr::Csr;
use crate::spgemm::{spgemm_hash, spgemm_spa, spgemm_twopass, SpGemmResult};
use crate::SpOpStats;

/// Safety factor between the worst-case rounding bound and the
/// detection threshold. Large enough that rounding can never trip a
/// check, small enough that only sub-rounding flips are masked.
pub const ABFT_TOL_FACTOR: f64 = 32.0;

/// Absolute tolerance floor, so an all-zero problem (zero magnitudes)
/// still tolerates denormal dust without dividing by zero anywhere.
const ABFT_TOL_FLOOR: f64 = 1e-290;

/// A failed ABFT verification: the checksum identity of `kernel` was
/// violated by more than the rounding tolerance — silent data
/// corruption detected.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftError {
    /// The kernel whose check failed.
    pub kernel: &'static str,
    /// Observed violation of the checksum identity (`NaN`/`Inf` if the
    /// data itself was non-finite).
    pub discrepancy: f64,
    /// The rounding tolerance the violation exceeded.
    pub tolerance: f64,
}

impl fmt::Display for AbftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ABFT check failed in {}: checksum discrepancy {:e} exceeds tolerance {:e}",
            self.kernel, self.discrepancy, self.tolerance
        )
    }
}

impl Error for AbftError {}

/// Column sums `eᵀ·A` and their magnitude counterpart `eᵀ·|A|`.
fn col_sums_of(a: &Csr) -> (Vec<f64>, Vec<f64>) {
    let mut sums = vec![0.0; a.ncols()];
    let mut mags = vec![0.0; a.ncols()];
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            sums[c] += v;
            mags[c] += v.abs();
        }
    }
    (sums, mags)
}

/// Row sums `A·e` and their magnitude counterpart `|A|·e`.
fn row_sums_of(a: &Csr) -> (Vec<f64>, Vec<f64>) {
    let mut sums = vec![0.0; a.nrows()];
    let mut mags = vec![0.0; a.nrows()];
    for r in 0..a.nrows() {
        let (_, vals) = a.row(r);
        for &v in vals {
            sums[r] += v;
            mags[r] += v.abs();
        }
    }
    (sums, mags)
}

fn check(kernel: &'static str, discrepancy: f64, tolerance: f64) -> Result<(), AbftError> {
    if discrepancy.is_finite() && discrepancy <= tolerance {
        Ok(())
    } else {
        Err(AbftError {
            kernel,
            discrepancy,
            tolerance,
        })
    }
}

/// A CSR matrix carrying its ABFT checksum vectors.
///
/// The checksums are captured at construction (or on
/// [`AbftCsr::refresh`]) and are the *trusted baseline* every check
/// compares against: corruption striking the value array afterwards —
/// via [`cpx_comm::BitFlipInjector`] or otherwise — is caught by the
/// next checked kernel or by [`AbftCsr::verify_values`].
#[derive(Debug, Clone)]
pub struct AbftCsr {
    matrix: Csr,
    col_sums: Vec<f64>,
    col_mags: Vec<f64>,
    row_sums: Vec<f64>,
    row_mags: Vec<f64>,
}

impl AbftCsr {
    /// Wrap `matrix`, capturing its checksum vectors as the trusted
    /// baseline. One `O(nnz)` pass.
    pub fn new(matrix: Csr) -> AbftCsr {
        let (col_sums, col_mags) = col_sums_of(&matrix);
        let (row_sums, row_mags) = row_sums_of(&matrix);
        AbftCsr {
            matrix,
            col_sums,
            col_mags,
            row_sums,
            row_mags,
        }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Csr {
        &self.matrix
    }

    /// Mutable access to the wrapped matrix. The checksum baseline is
    /// deliberately *not* refreshed — mutations made here are exactly
    /// what the checks detect (this is the fault-injection surface).
    /// After a legitimate update, call [`AbftCsr::refresh`].
    pub fn matrix_mut(&mut self) -> &mut Csr {
        &mut self.matrix
    }

    /// Unwrap.
    pub fn into_matrix(self) -> Csr {
        self.matrix
    }

    /// Recapture the checksum baseline after a legitimate matrix
    /// update.
    pub fn refresh(&mut self) {
        let (col_sums, col_mags) = col_sums_of(&self.matrix);
        let (row_sums, row_mags) = row_sums_of(&self.matrix);
        self.col_sums = col_sums;
        self.col_mags = col_mags;
        self.row_sums = row_sums;
        self.row_mags = row_mags;
    }

    /// The trusted column-sum vector `eᵀ·A`.
    pub fn col_sums(&self) -> &[f64] {
        &self.col_sums
    }

    /// The trusted row-sum vector `A·e`.
    pub fn row_sums(&self) -> &[f64] {
        &self.row_sums
    }

    /// Verify the stored values against the baseline row sums —
    /// an `O(nnz)` scrub catching any above-threshold flip in the value
    /// array without running a kernel.
    pub fn verify_values(&self) -> Result<(), AbftError> {
        let (sums, mags) = row_sums_of(&self.matrix);
        for r in 0..self.matrix.nrows() {
            let nnz_r = self.matrix.row(r).0.len() as f64;
            let tol =
                ABFT_TOL_FACTOR * f64::EPSILON * (nnz_r + 1.0) * self.row_mags[r].max(mags[r])
                    + ABFT_TOL_FLOOR;
            check("verify_values", (sums[r] - self.row_sums[r]).abs(), tol)?;
        }
        Ok(())
    }

    /// The detection threshold of [`AbftCsr::spmv_checked`] for input
    /// `x`: an injected perturbation of the product with numerical
    /// effect above this is guaranteed caught; below it, masked.
    pub fn spmv_tolerance(&self, x: &[f64]) -> f64 {
        let mag: f64 = self
            .col_mags
            .iter()
            .zip(x)
            .map(|(m, xi)| m * xi.abs())
            .sum();
        let n = (self.matrix.nrows() + self.matrix.ncols()) as f64;
        ABFT_TOL_FACTOR * f64::EPSILON * n * mag + ABFT_TOL_FLOOR
    }

    /// `y = A x` with ABFT verification: checks `Σᵢ yᵢ = (eᵀA)·x`
    /// against the trusted baseline. `O(n)` on top of the kernel.
    pub fn spmv_checked(&self, x: &[f64], y: &mut [f64]) -> Result<SpOpStats, AbftError> {
        let stats = self.matrix.spmv(x, y);
        self.verify_spmv_output("spmv", x, y)?;
        Ok(stats)
    }

    /// [`Csr::spmv_identity_top`] with the same ABFT verification as
    /// [`AbftCsr::spmv_checked`].
    pub fn spmv_identity_top_checked(
        &self,
        k: usize,
        x: &[f64],
        y: &mut [f64],
    ) -> Result<SpOpStats, AbftError> {
        let stats = self.matrix.spmv_identity_top(k, x, y);
        self.verify_spmv_output("spmv_identity_top", x, y)?;
        Ok(stats)
    }

    fn verify_spmv_output(
        &self,
        kernel: &'static str,
        x: &[f64],
        y: &[f64],
    ) -> Result<(), AbftError> {
        let got: f64 = y.iter().sum();
        let want: f64 = self.col_sums.iter().zip(x).map(|(c, xi)| c * xi).sum();
        check(kernel, (got - want).abs(), self.spmv_tolerance(x))
    }
}

/// Verify `C = A·B` against the trusted baselines of both inputs:
/// column sums of `C` against `(eᵀA)·B` (catches corruption of `A` or
/// `C`) and row sums of `C` against `A·(B e)` (catches corruption of
/// `B` or `C`). Element-wise, so cancellation in one row or column of
/// an input cannot hide a flip. `O(nnz(A) + nnz(B) + nnz(C))`.
pub fn verify_spgemm(
    kernel: &'static str,
    a: &AbftCsr,
    b: &AbftCsr,
    c: &Csr,
) -> Result<(), AbftError> {
    let am = a.matrix();
    let bm = b.matrix();
    let n = am.nrows();
    let m = bm.ncols();
    let depth = f64::EPSILON * (n + m) as f64 * ABFT_TOL_FACTOR;

    // Column identity: colsums(C) =?= (eᵀA)_trusted · B_current.
    let mut want = vec![0.0; m];
    let mut mag = vec![0.0; m];
    for k in 0..bm.nrows() {
        let (cols, vals) = bm.row(k);
        let (s, g) = (a.col_sums()[k], a.col_mags[k]);
        for (&c0, &v) in cols.iter().zip(vals) {
            want[c0] += s * v;
            mag[c0] += g * v.abs();
        }
    }
    let (got, got_mag) = col_sums_of(c);
    for j in 0..m {
        let tol = depth * mag[j].max(got_mag[j]) + ABFT_TOL_FLOOR;
        check(kernel, (got[j] - want[j]).abs(), tol)?;
    }

    // Row identity: rowsums(C) =?= A_current · (B e)_trusted.
    let (got, got_mag) = row_sums_of(c);
    for i in 0..n {
        let (cols, vals) = am.row(i);
        let mut want_i = 0.0;
        let mut mag_i = 0.0;
        for (&k, &v) in cols.iter().zip(vals) {
            want_i += v * b.row_sums()[k];
            mag_i += v.abs() * b.row_mags[k];
        }
        let tol = depth * mag_i.max(got_mag[i]) + ABFT_TOL_FLOOR;
        check(kernel, (got[i] - want_i).abs(), tol)?;
    }
    Ok(())
}

/// [`spgemm_twopass`] with ABFT verification of the product.
pub fn spgemm_twopass_checked(a: &AbftCsr, b: &AbftCsr) -> Result<SpGemmResult, AbftError> {
    let result = spgemm_twopass(a.matrix(), b.matrix());
    verify_spgemm("spgemm_twopass", a, b, &result.product)?;
    Ok(result)
}

/// [`spgemm_spa`] with ABFT verification of the product.
pub fn spgemm_spa_checked(
    a: &AbftCsr,
    b: &AbftCsr,
    chunks: usize,
) -> Result<SpGemmResult, AbftError> {
    let result = spgemm_spa(a.matrix(), b.matrix(), chunks);
    verify_spgemm("spgemm_spa", a, b, &result.product)?;
    Ok(result)
}

/// [`spgemm_hash`] with ABFT verification of the product.
pub fn spgemm_hash_checked(a: &AbftCsr, b: &AbftCsr) -> Result<SpGemmResult, AbftError> {
    let result = spgemm_hash(a.matrix(), b.matrix());
    verify_spgemm("spgemm_hash", a, b, &result.product)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_comm::BitFlipInjector;

    fn flip_val(m: &mut Csr, idx: usize, bit: u32) -> f64 {
        let old = m.vals()[idx];
        let new = BitFlipInjector::flip(old, bit);
        m.vals_mut()[idx] = new;
        (new - old).abs()
    }

    #[test]
    fn clean_spmv_passes() {
        let a = AbftCsr::new(Csr::poisson2d(20, 20));
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut y = vec![0.0; 400];
        a.spmv_checked(&x, &mut y).expect("clean spmv must pass");
        let mut y2 = vec![0.0; 400];
        a.matrix().spmv(&x, &mut y2);
        assert_eq!(y, y2, "checked spmv must not perturb the result");
    }

    #[test]
    fn exponent_flip_in_vals_is_caught_by_spmv() {
        let mut a = AbftCsr::new(Csr::poisson2d(16, 16));
        flip_val(a.matrix_mut(), 100, 62); // exponent bit: huge delta
        let x = vec![1.0; 256];
        let mut y = vec![0.0; 256];
        let err = a.spmv_checked(&x, &mut y).expect_err("must detect");
        assert_eq!(err.kernel, "spmv");
        assert!(err.discrepancy > err.tolerance);
    }

    #[test]
    fn nan_producing_flip_is_caught() {
        let mut a = AbftCsr::new(Csr::poisson1d(50));
        // Set all exponent bits: -1.0 -> NaN territory via bit 52..62.
        let v = a.matrix().vals()[10];
        a.matrix_mut().vals_mut()[10] = f64::from_bits(v.to_bits() | 0x7ff0_0000_0000_0001);
        let x = vec![1.0; 50];
        let mut y = vec![0.0; 50];
        assert!(a.spmv_checked(&x, &mut y).is_err());
    }

    #[test]
    fn below_threshold_flip_is_masked() {
        let mut a = AbftCsr::new(Csr::poisson2d(16, 16));
        let delta = flip_val(a.matrix_mut(), 100, 0); // lowest mantissa bit
        let x = vec![1.0; 256];
        assert!(delta < a.spmv_tolerance(&x), "bit 0 flip is sub-rounding");
        let mut y = vec![0.0; 256];
        a.spmv_checked(&x, &mut y)
            .expect("sub-tolerance flip must not fire");
    }

    #[test]
    fn verify_values_scrub_catches_flip() {
        let mut a = AbftCsr::new(Csr::poisson3d(6, 6, 6));
        a.verify_values().expect("clean scrub");
        flip_val(a.matrix_mut(), 50, 61);
        assert!(a.verify_values().is_err());
        a.refresh();
        a.verify_values().expect("refresh re-baselines");
    }

    #[test]
    fn spmv_identity_top_checked_matches_and_detects() {
        use crate::coo::Coo;
        let mut coo = Coo::new(6, 3);
        for i in 0..3 {
            coo.push(i, i, 1.0);
        }
        coo.push(3, 0, 0.5);
        coo.push(4, 1, 2.0);
        coo.push(5, 2, -1.5);
        let a = AbftCsr::new(coo.to_csr());
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 6];
        a.spmv_identity_top_checked(3, &x, &mut y).expect("clean");
        assert_eq!(y[..3], x[..]);

        let mut bad = a.clone();
        // Flip a tail value (the identity top is never read by the
        // kernel, so only tail flips can corrupt the output).
        let idx = bad.matrix().rowptr()[4];
        flip_val(bad.matrix_mut(), idx, 62);
        assert!(bad.spmv_identity_top_checked(3, &x, &mut y).is_err());
    }

    #[test]
    fn clean_spgemm_passes_all_variants() {
        let a = AbftCsr::new(Csr::poisson2d(12, 12));
        let b = AbftCsr::new(Csr::poisson2d(12, 12));
        spgemm_twopass_checked(&a, &b).expect("twopass clean");
        spgemm_spa_checked(&a, &b, 4).expect("spa clean");
        spgemm_hash_checked(&a, &b).expect("hash clean");
    }

    #[test]
    fn corrupted_a_input_is_caught_by_spgemm() {
        let mut a = AbftCsr::new(Csr::poisson2d(10, 10));
        let b = AbftCsr::new(Csr::poisson2d(10, 10));
        flip_val(a.matrix_mut(), 17, 60);
        assert!(spgemm_twopass_checked(&a, &b).is_err());
        assert!(spgemm_spa_checked(&a, &b, 2).is_err());
        assert!(spgemm_hash_checked(&a, &b).is_err());
    }

    #[test]
    fn corrupted_b_input_is_caught_by_spgemm() {
        let a = AbftCsr::new(Csr::poisson2d(10, 10));
        let mut b = AbftCsr::new(Csr::poisson2d(10, 10));
        flip_val(b.matrix_mut(), 23, 60);
        assert!(spgemm_spa_checked(&a, &b, 3).is_err());
    }

    #[test]
    fn corrupted_product_is_caught_by_verify() {
        let a = AbftCsr::new(Csr::poisson2d(10, 10));
        let b = AbftCsr::new(Csr::poisson2d(10, 10));
        let mut c = spgemm_spa(a.matrix(), b.matrix(), 1).product;
        verify_spgemm("test", &a, &b, &c).expect("clean product");
        flip_val(&mut c, 40, 59);
        assert!(verify_spgemm("test", &a, &b, &c).is_err());
    }

    #[test]
    fn zero_row_sums_do_not_hide_input_corruption() {
        // Poisson interior rows/cols sum to ~0 — the scalar-total check
        // would be blind there; the element-wise identity is not.
        let n = 20;
        let mut a = AbftCsr::new(Csr::poisson1d(n));
        let b = AbftCsr::new(Csr::poisson1d(n));
        // Corrupt a value in an interior row (row sums to zero).
        let idx = a.matrix().rowptr()[n / 2] + 1;
        flip_val(a.matrix_mut(), idx, 58);
        assert!(spgemm_spa_checked(&a, &b, 2).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = AbftError {
            kernel: "spmv",
            discrepancy: 1.5,
            tolerance: 1e-12,
        };
        let s = e.to_string();
        assert!(s.contains("spmv") && s.contains("tolerance"));
    }
}
