//! SELL-C-σ: a SIMD-friendly sliced-ELL sparse layout behind the
//! [`Csr`] API.
//!
//! Rows are sorted by descending length inside windows of σ rows, then
//! packed into chunks of C consecutive lanes. Each chunk stores its
//! entries **slot-major**: slot s holds the s-th entry of every lane
//! that is still active, so the inner loop walks C independent
//! accumulators over contiguous memory — the cross-row vectorization
//! shape — instead of one serial dot product per row.
//!
//! On top of the layout, column indices are compressed per slot: when
//! every active lane's column at a slot stays within 255 of the slot's
//! smallest (true for any stencil-like matrix, where a slot addresses
//! the same stencil offset of C consecutive rows), the slot stores one
//! `u32` base plus one `u8` offset per lane — ~1.25 bytes per entry
//! against CSR's 8-byte `usize` columns. Chunks whose slots spread
//! wider fall back to plain `u32` columns, decided per chunk at build
//! time, so the kernel is exact for arbitrary matrices.
//!
//! ## Bit-identity with serial CSR
//!
//! Two properties make the result bit-identical to [`Csr::spmv`]:
//!
//! 1. Lane `l`'s accumulator sees that row's entries in slot order
//!    0, 1, 2, …, which is exactly the row's ascending-column CSR
//!    order, starting from the same `0.0` — the identical sequence of
//!    `acc += v * x[c]` operations, hence identical rounding.
//! 2. Because lanes within a chunk are sorted by descending length,
//!    the lanes active at slot `s` are a contiguous *prefix* — there
//!    is no padding value, so no `-0.0 + 0.0 → +0.0`-style artefact
//!    can ever enter an accumulator.
//!
//! σ windows also bound the permutation: a window's lanes are a
//! permutation of that window's rows, so window `w` owns output rows
//! `[wσ, (w+1)σ)` and parallel execution can hand each task whole
//! windows ([`cpx_par::ParPool::ranges_mut`]) while every row's value
//! stays a single independent write.

use cpx_par::{chunk_ranges, ParPool};
use std::ops::Range;

use crate::csr::Csr;
use crate::SpOpStats;

/// Upper bound on the chunk height C: the per-chunk accumulator block
/// lives on the stack (`[f64; SELL_MAX_C]`, 8 cache lines).
pub const SELL_MAX_C: usize = 64;

/// Metadata for one chunk of up to C lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Chunk {
    /// First lane (index into `perm`).
    lane0: u32,
    /// Lanes in this chunk (`1..=C`).
    lanes: u32,
    /// Slots (= length of the longest lane; lanes are length-sorted).
    width: u32,
    /// Leading slots where every lane is active (active counts are
    /// non-increasing, so these form a prefix): a dense
    /// `full_slots × lanes` block the kernel runs with a constant
    /// trip count, which is what lets LLVM unroll and vectorize it.
    full_slots: u32,
    /// Start of this chunk's values in `vals`.
    val_off: usize,
    /// Start of this chunk's columns in `cols_u32` (wide mode) or
    /// `col_offs` (compressed mode).
    col_off: usize,
    /// Start of this chunk's per-slot active counts in `slot_counts`.
    slot_off: usize,
    /// Start of this chunk's per-slot bases in `slot_bases`
    /// (compressed mode only).
    base_off: usize,
    /// Compressed (`base + u8`) column mode?
    narrow: bool,
}

/// A SELL-C-σ matrix built from (a row suffix of) a [`Csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct SellCSigma {
    /// Rows covered (the CSR's `nrows - row_base`).
    nrows: usize,
    ncols: usize,
    nnz: usize,
    c: usize,
    sigma: usize,
    /// First covered CSR row (0 for a full matrix; `k` for the tail of
    /// an identity-top operator). `perm` and outputs are relative to it.
    row_base: usize,
    /// Lane → covered-row index (relative to `row_base`).
    perm: Vec<u32>,
    chunks: Vec<Chunk>,
    /// Per window, the index of its first chunk (length `nwindows + 1`).
    window_chunk_off: Vec<usize>,
    /// Active-lane count per (chunk, slot), concatenated in chunk order.
    slot_counts: Vec<u32>,
    /// Wide-mode column indices, slot-major within each chunk.
    cols_u32: Vec<u32>,
    /// Compressed-mode per-slot base columns.
    slot_bases: Vec<u32>,
    /// Compressed-mode per-entry offsets from the slot base.
    col_offs: Vec<u8>,
    vals: Vec<f64>,
}

impl SellCSigma {
    /// Build from a full CSR matrix. `c` is clamped to
    /// `1..=`[`SELL_MAX_C`]; `sigma` is clamped to at least `c`.
    pub fn from_csr(a: &Csr, c: usize, sigma: usize) -> SellCSigma {
        SellCSigma::from_csr_rows(a, 0, c, sigma)
    }

    /// Build over the tail rows `k..nrows` of an identity-top operator
    /// (§IV-B reordered interpolation): the resulting matrix has
    /// `nrows() == a.nrows() - k` and its SpMV writes the tail of `y`.
    pub fn from_csr_tail(a: &Csr, k: usize, c: usize, sigma: usize) -> SellCSigma {
        assert!(k <= a.nrows(), "from_csr_tail: k out of range");
        SellCSigma::from_csr_rows(a, k, c, sigma)
    }

    fn from_csr_rows(a: &Csr, row_base: usize, c: usize, sigma: usize) -> SellCSigma {
        let c = c.clamp(1, SELL_MAX_C);
        let sigma = sigma.max(c);
        let nrows = a.nrows() - row_base;
        let ncols = a.ncols();
        let rowptr = a.rowptr();
        let row_len = |r: usize| rowptr[row_base + r + 1] - rowptr[row_base + r];
        // The unchecked gathers in `spmv_with` lean on every stored
        // column being in range; a release-mode CSR is only
        // debug-asserted, so re-verify here, once, at build time.
        for &col in &a.colidx()[rowptr[row_base]..] {
            assert!(col < ncols, "SellCSigma: column {col} out of range {ncols}");
        }

        let nwindows = nrows.div_ceil(sigma.max(1));
        let mut perm: Vec<u32> = Vec::with_capacity(nrows);
        let mut chunks = Vec::new();
        let mut window_chunk_off = Vec::with_capacity(nwindows + 1);
        let mut slot_counts: Vec<u32> = Vec::new();
        let mut cols_u32: Vec<u32> = Vec::new();
        let mut slot_bases: Vec<u32> = Vec::new();
        let mut col_offs: Vec<u8> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();

        window_chunk_off.push(0);
        for w in 0..nwindows {
            let wlo = w * sigma;
            let whi = (wlo + sigma).min(nrows);
            let mut lanes: Vec<u32> = (wlo..whi).map(|r| r as u32).collect();
            // Stable sort, descending by length: equal-length rows keep
            // ascending row order, so the layout is deterministic.
            lanes.sort_by_key(|&r| std::cmp::Reverse(row_len(r as usize)));
            for chunk_lanes in lanes.chunks(c) {
                let lane0 = perm.len() as u32;
                let width = row_len(chunk_lanes[0] as usize);
                let val_off = vals.len();
                let slot_off = slot_counts.len();
                let base_off = slot_bases.len();
                perm.extend_from_slice(chunk_lanes);

                // Slot s of lane r is entry `rowptr[row] + s`; lanes
                // still active at s are a prefix (length-sorted).
                let active_at = |s: usize| {
                    chunk_lanes
                        .iter()
                        .take_while(|&&r| row_len(r as usize) > s)
                        .count()
                };
                let col_at = |r: u32, s: usize| a.colidx()[rowptr[row_base + r as usize] + s];

                // Mode probe: compressed iff every slot's columns stay
                // within 255 of the slot's minimum.
                let narrow = (0..width).all(|s| {
                    let lanes_s = &chunk_lanes[..active_at(s)];
                    let mn = lanes_s.iter().map(|&r| col_at(r, s)).min().unwrap();
                    lanes_s.iter().all(|&r| col_at(r, s) - mn < 256)
                });
                let col_off = if narrow {
                    col_offs.len()
                } else {
                    cols_u32.len()
                };

                for s in 0..width {
                    let active = active_at(s);
                    slot_counts.push(active as u32);
                    if narrow {
                        let mn = chunk_lanes[..active]
                            .iter()
                            .map(|&r| col_at(r, s))
                            .min()
                            .unwrap();
                        slot_bases.push(mn as u32);
                        for &r in &chunk_lanes[..active] {
                            col_offs.push((col_at(r, s) - mn) as u8);
                            vals.push(a.vals()[rowptr[row_base + r as usize] + s]);
                        }
                    } else {
                        for &r in &chunk_lanes[..active] {
                            cols_u32.push(col_at(r, s) as u32);
                            vals.push(a.vals()[rowptr[row_base + r as usize] + s]);
                        }
                    }
                }
                let full_slots = slot_counts[slot_off..]
                    .iter()
                    .take_while(|&&a| a as usize == chunk_lanes.len())
                    .count();
                chunks.push(Chunk {
                    lane0,
                    lanes: chunk_lanes.len() as u32,
                    width: width as u32,
                    full_slots: full_slots as u32,
                    val_off,
                    col_off,
                    slot_off,
                    base_off,
                    narrow,
                });
            }
            window_chunk_off.push(chunks.len());
        }

        SellCSigma {
            nrows,
            ncols,
            nnz: vals.len(),
            c,
            sigma,
            row_base,
            perm,
            chunks,
            window_chunk_off,
            slot_counts,
            cols_u32,
            slot_bases,
            col_offs,
            vals,
        }
    }

    /// Rows covered by this layout.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries (identical to the source CSR rows' nnz — the
    /// prefix-active layout stores no padding values).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Chunk height C.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Sorting-window size σ.
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// First covered CSR row (`k` for a tail layout, else 0).
    #[inline]
    pub fn row_base(&self) -> usize {
        self.row_base
    }

    /// Fraction of entries whose columns use the compressed
    /// base-plus-`u8` encoding (1.0 for stencil-like matrices).
    pub fn narrow_fraction(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.col_offs.len() as f64 / self.nnz as f64
        }
    }

    /// Lane occupancy: stored entries over the `width × lanes` slots
    /// the chunk shape implies. 1.0 means every lane in every chunk
    /// has equal length (no divergence); lower means tail lanes idle.
    pub fn occupancy(&self) -> f64 {
        let cells: usize = self
            .chunks
            .iter()
            .map(|ch| ch.width as usize * ch.lanes as usize)
            .sum();
        if cells == 0 {
            1.0
        } else {
            self.nnz as f64 / cells as f64
        }
    }

    /// `y = A x`, bit-identical to [`Csr::spmv`] on the covered rows.
    /// Runs on the global pool with granularity limiting.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> SpOpStats {
        let pool = ParPool::current().limited(self.nnz);
        self.spmv_with(&pool, pool.chunks(), x, y)
    }

    /// [`SellCSigma::spmv`] on an explicit pool split into `parts`
    /// window-aligned tasks. `y` covers only the rows of this layout
    /// (the tail slice for a [`SellCSigma::from_csr_tail`] build).
    pub fn spmv_with(&self, pool: &ParPool, parts: usize, x: &[f64], y: &mut [f64]) -> SpOpStats {
        assert_eq!(x.len(), self.ncols, "sell spmv: x length");
        assert_eq!(y.len(), self.nrows, "sell spmv: y length");
        if pool.threads() <= 1 || self.chunks.len() <= 1 {
            self.spmv_chunks(0..self.chunks.len(), x, y, 0);
            return self.spmv_stats();
        }
        // Deal whole σ windows into `parts` contiguous tasks: every
        // task owns whole output rows, so each row is still a single
        // independent write and the result is partition-invariant.
        let nwindows = self.window_chunk_off.len() - 1;
        let wranges = chunk_ranges(nwindows, parts);
        let rranges: Vec<Range<usize>> = wranges
            .iter()
            .map(|wr| {
                (wr.start * self.sigma).min(self.nrows)..(wr.end * self.sigma).min(self.nrows)
            })
            .collect();
        pool.ranges_mut(y, &rranges, |part, rows, y_part| {
            let wr = &wranges[part];
            let chunks = self.window_chunk_off[wr.start]..self.window_chunk_off[wr.end];
            self.spmv_chunks(chunks, x, y_part, rows.start);
        });
        self.spmv_stats()
    }

    /// The serial kernel over a chunk range. `y_base` is the first
    /// covered-row index `y` is offset by (window-aligned partitions).
    /// Dispatches to a monomorphised body for the common chunk heights
    /// so the dense-block loop has a compile-time trip count.
    fn spmv_chunks(&self, chunk_range: Range<usize>, x: &[f64], y: &mut [f64], y_base: usize) {
        match self.c {
            2 => self.spmv_chunks_c::<2>(chunk_range, x, y, y_base),
            4 => self.spmv_chunks_c::<4>(chunk_range, x, y, y_base),
            8 => self.spmv_chunks_c::<8>(chunk_range, x, y, y_base),
            16 => self.spmv_chunks_c::<16>(chunk_range, x, y, y_base),
            32 => self.spmv_chunks_c::<32>(chunk_range, x, y, y_base),
            64 => self.spmv_chunks_c::<64>(chunk_range, x, y, y_base),
            // C = 0 is a sentinel no chunk height equals: every chunk
            // takes the variable-width path.
            _ => self.spmv_chunks_c::<0>(chunk_range, x, y, y_base),
        }
    }

    fn spmv_chunks_c<const C: usize>(
        &self,
        chunk_range: Range<usize>,
        x: &[f64],
        y: &mut [f64],
        y_base: usize,
    ) {
        // SAFETY (all unchecked accesses in the per-chunk kernels):
        // entry cursors stay below the stream lengths because slot
        // counts sum to exactly each chunk's entry count and the
        // streams were filled in the same order; every decoded column
        // equals a stored CSR column `< ncols == x.len()` (verified at
        // build time); lane indices are `< lanes <= c <= SELL_MAX_C`.
        for ch in &self.chunks[chunk_range] {
            if C != 0 && ch.lanes as usize == C {
                if ch.narrow {
                    self.chunk_narrow::<C>(ch, x, y, y_base);
                } else {
                    self.chunk_wide::<C>(ch, x, y, y_base);
                }
            } else {
                self.chunk_short(ch, x, y, y_base);
            }
        }
    }

    /// Full-height chunk, compressed columns: a fixed `[f64; C]`
    /// accumulator block LLVM keeps in registers and constant inner
    /// trip counts it unrolls — the cross-row vectorization shape.
    #[inline(always)]
    fn chunk_narrow<const C: usize>(&self, ch: &Chunk, x: &[f64], y: &mut [f64], y_base: usize) {
        let full = ch.full_slots as usize;
        let mut acc = [0.0f64; C];
        let mut p = ch.val_off;
        let mut q = ch.col_off;
        let mut sb = ch.base_off;
        for _s in 0..full {
            unsafe {
                let base = *self.slot_bases.get_unchecked(sb) as usize;
                for l in 0..C {
                    let c = base + *self.col_offs.get_unchecked(q + l) as usize;
                    let v = *self.vals.get_unchecked(p + l);
                    acc[l] += v * x.get_unchecked(c);
                }
            }
            sb += 1;
            p += C;
            q += C;
        }
        // Ragged tail slots: variable active prefix per slot.
        let slots = &self.slot_counts[ch.slot_off + full..ch.slot_off + ch.width as usize];
        for &active in slots {
            let k = active as usize;
            unsafe {
                let base = *self.slot_bases.get_unchecked(sb) as usize;
                for l in 0..k {
                    let c = base + *self.col_offs.get_unchecked(q + l) as usize;
                    let v = *self.vals.get_unchecked(p + l);
                    *acc.get_unchecked_mut(l) += v * x.get_unchecked(c);
                }
            }
            sb += 1;
            p += k;
            q += k;
        }
        let lane0 = ch.lane0 as usize;
        for (l, &a) in acc.iter().enumerate() {
            let row = self.perm[lane0 + l] as usize;
            y[row - y_base] = a;
        }
    }

    /// Full-height chunk, wide (`u32`) columns.
    #[inline(always)]
    fn chunk_wide<const C: usize>(&self, ch: &Chunk, x: &[f64], y: &mut [f64], y_base: usize) {
        let full = ch.full_slots as usize;
        let mut acc = [0.0f64; C];
        let mut p = ch.val_off;
        let mut q = ch.col_off;
        for _s in 0..full {
            for l in 0..C {
                unsafe {
                    let c = *self.cols_u32.get_unchecked(q + l) as usize;
                    let v = *self.vals.get_unchecked(p + l);
                    acc[l] += v * x.get_unchecked(c);
                }
            }
            p += C;
            q += C;
        }
        let slots = &self.slot_counts[ch.slot_off + full..ch.slot_off + ch.width as usize];
        for &active in slots {
            let k = active as usize;
            for l in 0..k {
                unsafe {
                    let c = *self.cols_u32.get_unchecked(q + l) as usize;
                    let v = *self.vals.get_unchecked(p + l);
                    *acc.get_unchecked_mut(l) += v * x.get_unchecked(c);
                }
            }
            p += k;
            q += k;
        }
        let lane0 = ch.lane0 as usize;
        for (l, &a) in acc.iter().enumerate() {
            let row = self.perm[lane0 + l] as usize;
            y[row - y_base] = a;
        }
    }

    /// Short chunk (window tail) or unspecialised height, either mode.
    fn chunk_short(&self, ch: &Chunk, x: &[f64], y: &mut [f64], y_base: usize) {
        let lanes = ch.lanes as usize;
        let mut acc = [0.0f64; SELL_MAX_C];
        let mut p = ch.val_off;
        let mut q = ch.col_off;
        let mut sb = ch.base_off;
        let slots = &self.slot_counts[ch.slot_off..ch.slot_off + ch.width as usize];
        for &active in slots {
            let k = active as usize;
            if ch.narrow {
                unsafe {
                    let base = *self.slot_bases.get_unchecked(sb) as usize;
                    for l in 0..k {
                        let c = base + *self.col_offs.get_unchecked(q + l) as usize;
                        let v = *self.vals.get_unchecked(p + l);
                        *acc.get_unchecked_mut(l) += v * x.get_unchecked(c);
                    }
                }
                sb += 1;
            } else {
                for l in 0..k {
                    unsafe {
                        let c = *self.cols_u32.get_unchecked(q + l) as usize;
                        let v = *self.vals.get_unchecked(p + l);
                        *acc.get_unchecked_mut(l) += v * x.get_unchecked(c);
                    }
                }
            }
            p += k;
            q += k;
        }
        let lane0 = ch.lane0 as usize;
        for (l, &a) in acc.iter().take(lanes).enumerate() {
            let row = self.perm[lane0 + l] as usize;
            y[row - y_base] = a;
        }
    }

    /// Modelled op statistics of one SpMV in this layout: same flops
    /// as CSR, bytes from the actual compressed storage footprint.
    pub fn spmv_stats(&self) -> SpOpStats {
        let nnz = self.nnz as f64;
        SpOpStats {
            flops: 2.0 * nnz,
            // vals + x gather per entry, then the column streams,
            // per-slot metadata and the lane permutation.
            bytes_read: nnz * (8.0 + 8.0)
                + self.cols_u32.len() as f64 * 4.0
                + self.col_offs.len() as f64
                + self.slot_bases.len() as f64 * 4.0
                + self.slot_counts.len() as f64 * 4.0
                + self.nrows as f64 * 4.0,
            bytes_written: self.nrows as f64 * 8.0,
            input_passes: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn csr_spmv_serial(a: &Csr, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        a.spmv_with(&ParPool::serial(), 1, x, &mut y);
        y
    }

    fn check_bit_identical(a: &Csr, c: usize, sigma: usize) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.7).sin()).collect();
        let want = csr_spmv_serial(a, &x);
        let sell = SellCSigma::from_csr(a, c, sigma);
        assert_eq!(sell.nnz(), a.nnz());
        for threads in [1, 2, 4, 8] {
            let pool = ParPool::with_threads(threads);
            for parts in [1, 3, 8] {
                let mut y = vec![f64::NAN; a.nrows()];
                sell.spmv_with(&pool, parts, &x, &mut y);
                assert_eq!(
                    y, want,
                    "c={c} sigma={sigma} threads={threads} parts={parts}"
                );
            }
        }
    }

    #[test]
    fn sell_matches_csr_on_poisson() {
        check_bit_identical(&Csr::poisson2d(13, 11), 8, 64);
        check_bit_identical(&Csr::poisson3d(7, 6, 5), 4, 16);
        check_bit_identical(&Csr::poisson1d(100), 8, 32);
    }

    #[test]
    fn sell_handles_empty_and_ragged_rows() {
        let mut coo = Coo::new(9, 9);
        // Rows 0, 4, 8 empty; row 1 dense-ish; others ragged.
        for c in 0..9 {
            coo.push(1, c, (c as f64) - 4.0);
        }
        coo.push(2, 3, 2.0);
        coo.push(3, 0, -1.0);
        coo.push(3, 8, 1.5);
        coo.push(5, 5, 4.0);
        coo.push(6, 1, 0.5);
        coo.push(6, 2, 0.25);
        coo.push(6, 7, -0.75);
        coo.push(7, 6, 1.0);
        let a = coo.to_csr();
        for (c, sigma) in [(1, 1), (2, 4), (3, 9), (8, 64)] {
            check_bit_identical(&a, c, sigma);
        }
    }

    #[test]
    fn sell_single_row_and_empty_matrix() {
        let mut coo = Coo::new(1, 4);
        coo.push(0, 1, 2.0);
        coo.push(0, 3, -1.0);
        check_bit_identical(&coo.to_csr(), 8, 64);
        let empty = Csr::zeros(0, 3);
        let sell = SellCSigma::from_csr(&empty, 8, 64);
        let mut y = vec![];
        sell.spmv(&[1.0, 2.0, 3.0], &mut y);
    }

    #[test]
    fn wide_columns_fall_back_and_still_match() {
        // Columns spread far beyond 255 within a slot: forces the
        // wide (u32) chunk mode.
        let n = 40;
        let m = 10_000;
        let mut coo = Coo::new(n, m);
        for r in 0..n {
            coo.push(r, (r * 241) % m, 1.0 + r as f64);
            coo.push(r, (r * 241) % m / 2 + 5_000, -0.5 * r as f64);
        }
        let a = coo.to_csr();
        let sell = SellCSigma::from_csr(&a, 8, 64);
        assert!(
            sell.narrow_fraction() < 1.0,
            "expected some wide chunks, got narrow_fraction={}",
            sell.narrow_fraction()
        );
        check_bit_identical(&a, 8, 64);
        // Mixed narrow/wide chunks in one matrix: prepend a
        // stencil-like block.
        let mut coo2 = Coo::new(n + 64, m);
        for r in 0..64 {
            coo2.push(r, r, 2.0);
            if r + 1 < 64 {
                coo2.push(r, r + 1, -1.0);
            }
        }
        for r in 0..n {
            coo2.push(64 + r, (r * 241) % m, 1.0 + r as f64);
        }
        let a2 = coo2.to_csr();
        let sell2 = SellCSigma::from_csr(&a2, 8, 8);
        assert!(sell2.narrow_fraction() > 0.0 && sell2.narrow_fraction() < 1.0);
        check_bit_identical(&a2, 8, 8);
    }

    #[test]
    fn stencil_matrices_compress_fully() {
        let a = Csr::poisson3d(8, 8, 8);
        let sell = SellCSigma::from_csr(&a, 8, 64);
        assert_eq!(sell.narrow_fraction(), 1.0);
    }

    #[test]
    fn sell_tail_matches_identity_top() {
        let mut coo = Coo::new(6, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, 1.0);
        coo.push(3, 0, 0.5);
        coo.push(3, 2, 0.5);
        coo.push(4, 1, 0.25);
        coo.push(5, 0, 0.125);
        coo.push(5, 1, 0.25);
        coo.push(5, 2, 0.5);
        let a = coo.to_csr();
        let k = 3;
        let x = vec![2.0, -4.0, 8.0];
        let mut want = vec![0.0; 6];
        a.spmv_identity_top(k, &x, &mut want);
        let tail = SellCSigma::from_csr_tail(&a, k, 2, 4);
        assert_eq!(tail.nrows(), 3);
        assert_eq!(tail.row_base(), k);
        let mut y = vec![0.0; 6];
        y[..k].copy_from_slice(&x[..k]);
        tail.spmv_with(&ParPool::serial(), 1, &x, &mut y[k..]);
        assert_eq!(y, want);
    }

    #[test]
    fn occupancy_is_full_on_uniform_rows_and_reported_below_one_on_ragged() {
        let uniform = Csr::identity(32);
        assert_eq!(SellCSigma::from_csr(&uniform, 8, 32).occupancy(), 1.0);
        let mut coo = Coo::new(8, 8);
        for c in 0..8 {
            coo.push(0, c, 1.0);
        }
        coo.push(1, 0, 1.0);
        let ragged = coo.to_csr();
        // σ=1 disables sorting across rows, so chunk 0 pairs an 8-long
        // lane with shorter ones.
        let sell = SellCSigma::from_csr(&ragged, 8, 1);
        assert!(sell.occupancy() < 1.0);
        check_bit_identical(&ragged, 8, 1);
    }

    #[test]
    fn sigma_sorting_groups_similar_lengths() {
        // One long row per group of short ones: with σ covering the
        // whole matrix the long rows sort together and occupancy
        // beats the unsorted (σ=c) layout.
        let n = 64;
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            if r % 8 == 0 {
                for c in 0..n {
                    coo.push(r, c, 1.0 + (r + c) as f64);
                }
            } else {
                coo.push(r, r, 2.0);
            }
        }
        let a = coo.to_csr();
        let sorted = SellCSigma::from_csr(&a, 8, n);
        let unsorted = SellCSigma::from_csr(&a, 8, 8);
        assert!(sorted.occupancy() > unsorted.occupancy());
        check_bit_identical(&a, 8, n);
        check_bit_identical(&a, 8, 8);
    }

    #[test]
    fn stats_count_less_index_traffic_than_csr() {
        let a = Csr::poisson3d(8, 8, 8);
        let sell = SellCSigma::from_csr(&a, 8, 64);
        assert_eq!(sell.spmv_stats().flops, a.spmv_stats().flops);
        assert!(sell.spmv_stats().bytes_read < a.spmv_stats().bytes_read);
    }
}
