//! Distributed column renumbering.
//!
//! When AMG runs distributed, each rank stores its block of matrix rows
//! in CSR with *local* column numbering; after a halo exchange introduces
//! new global columns (e.g. following an SpGEMM), the rank must rebuild
//! the mapping between global column ids and local indices. The paper
//! (§IV-B, after Park et al.) contrasts:
//!
//! * [`renumber_sort`] — the baseline: collect the global ids and sort
//!   them; renumbering is then a binary search per reference. Parallel
//!   reordering like this is expensive.
//! * [`renumber_hash_merge`] — the optimization: each worker builds a
//!   private hash set of the ids it sees, the per-worker sets are merged
//!   with a parallel merge sort, and a reverse map distributes the local
//!   indices back.
//!
//! Both produce the identical mapping (global ids in ascending order →
//! local index) and report cost statistics.

use std::collections::HashSet;

use cpx_par::ParPool;

use crate::SpOpStats;

/// The result of a renumbering: the ascending table of global column ids
/// (`table[local] = global`) and the kernel's cost statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Renumbering {
    /// Sorted unique global ids; the local index of a global id is its
    /// position in this table.
    pub table: Vec<u64>,
    /// Op statistics of the construction.
    pub stats: SpOpStats,
}

impl Renumbering {
    /// Local index of `global`, if present.
    pub fn local_of(&self, global: u64) -> Option<usize> {
        self.table.binary_search(&global).ok()
    }
}

/// Baseline: sort-with-dedup over the whole reference stream.
pub fn renumber_sort(refs: &[u64]) -> Renumbering {
    let mut table = refs.to_vec();
    table.sort_unstable();
    table.dedup();
    let n = refs.len() as f64;
    // Comparison sort over the full stream: n log n touches.
    let log_n = (n.max(2.0)).log2();
    let stats = SpOpStats {
        flops: 0.0,
        bytes_read: n * 8.0 * log_n,
        bytes_written: table.len() as f64 * 8.0 + n * 8.0 * log_n * 0.5,
        input_passes: 1,
    };
    Renumbering { table, stats }
}

/// Optimized: per-worker hash sets merged by a (simulated) parallel merge
/// sort of the much smaller unique-id lists.
pub fn renumber_hash_merge(refs: &[u64], workers: usize) -> Renumbering {
    let pool = ParPool::current().limited(refs.len());
    renumber_hash_merge_with(&pool, refs, workers)
}

/// [`renumber_hash_merge`] on an explicit pool. `workers` is the
/// *logical* merge width (it keys both the slicing and the modelled
/// stats); the pool only decides how many OS threads execute those
/// logical workers, so the table and stats are identical for any pool.
pub fn renumber_hash_merge_with(pool: &ParPool, refs: &[u64], workers: usize) -> Renumbering {
    assert!(workers >= 1);
    let chunk = refs.len().div_ceil(workers).max(1);
    // Each logical worker hashes its slice of the reference stream.
    let mut per_worker: Vec<Vec<u64>> = pool.map(workers, |w| {
        let lo = (w * chunk).min(refs.len());
        let hi = ((w + 1) * chunk).min(refs.len());
        let set: HashSet<u64> = refs[lo..hi].iter().copied().collect();
        let mut v: Vec<u64> = set.into_iter().collect();
        v.sort_unstable();
        v
    });
    // Merge the sorted unique lists pairwise (parallel merge sort shape).
    while per_worker.len() > 1 {
        let leftover = if per_worker.len() % 2 == 1 {
            per_worker.pop()
        } else {
            None
        };
        let pairs = per_worker.len() / 2;
        let mut next = pool.map(pairs, |i| {
            merge_dedup(&per_worker[2 * i], &per_worker[2 * i + 1])
        });
        next.extend(leftover);
        per_worker = next;
    }
    let table = per_worker.pop().unwrap_or_default();

    let n = refs.len() as f64;
    let u = table.len() as f64;
    let merge_levels = (workers.max(2) as f64).log2().ceil();
    let stats = SpOpStats {
        flops: 0.0,
        // One hashing pass over the stream + merges over unique ids only.
        bytes_read: n * 16.0 + u * 8.0 * merge_levels,
        bytes_written: u * 8.0 * (merge_levels + 1.0),
        input_passes: 1,
    };
    Renumbering { table, stats }
}

fn merge_dedup(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn both_methods_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        let refs: Vec<u64> = (0..5000).map(|_| rng.gen_range(0..800)).collect();
        let a = renumber_sort(&refs);
        for workers in [1, 2, 8, 13] {
            let b = renumber_hash_merge(&refs, workers);
            assert_eq!(a.table, b.table, "workers={workers}");
        }
    }

    #[test]
    fn table_sorted_unique() {
        let refs = vec![5, 1, 5, 3, 1, 9];
        let r = renumber_sort(&refs);
        assert_eq!(r.table, vec![1, 3, 5, 9]);
        assert_eq!(r.local_of(5), Some(2));
        assert_eq!(r.local_of(4), None);
    }

    #[test]
    fn hash_merge_cheaper_when_many_duplicates() {
        // A halo-exchange reference stream touches few unique ids many
        // times — exactly the case the optimization targets.
        let mut rng = StdRng::seed_from_u64(11);
        let refs: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..500)).collect();
        let sort = renumber_sort(&refs);
        let hash = renumber_hash_merge(&refs, 16);
        assert!(
            hash.stats.bytes() < sort.stats.bytes(),
            "hash {} vs sort {}",
            hash.stats.bytes(),
            sort.stats.bytes()
        );
    }

    #[test]
    fn empty_stream() {
        assert!(renumber_sort(&[]).table.is_empty());
        assert!(renumber_hash_merge(&[], 4).table.is_empty());
    }

    #[test]
    fn merge_dedup_basic() {
        assert_eq!(merge_dedup(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_dedup(&[], &[1]), vec![1]);
    }
}
