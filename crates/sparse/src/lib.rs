//! # cpx-sparse
//!
//! Sparse linear algebra substrate for the CPX reproduction.
//!
//! The production pressure solver the paper profiles spends the bulk of
//! its time in an algebraic-multigrid preconditioned conjugate-gradient
//! pressure solve whose hot kernels are SpMV and SpGEMM (§IV). This crate
//! provides those kernels, including the specific SpGEMM/SpMV
//! optimizations the paper's §IV-B analyses:
//!
//! * [`spgemm::spgemm_twopass`] — the traditional two-pass SpGEMM that
//!   reads its inputs twice (symbolic sizing pass + numeric pass);
//! * [`spgemm::spgemm_spa`] — single-pass Gustavson with a **sparse
//!   accumulator (SPA)** giving constant-time access to output entries,
//!   with per-chunk output buffers copied into contiguous memory at the
//!   end (the "allocate each thread a large chunk" optimization);
//! * [`spgemm::spgemm_hash`] — hash-map accumulation, the variant used
//!   for the distributed column-renumbering comparison;
//! * [`renumber`] — baseline sort-based vs optimized hash+merge column
//!   renumbering for distributed CSR after halo exchange;
//! * [`csr::Csr::spmv_identity_top`] — SpMV exploiting an identity block
//!   in reordered interpolation/restriction operators.
//!
//! It also provides the distribution machinery the solvers share:
//! [`dist::DistCsr`] (row-block distributed CSR with halo exchange over
//! `cpx-comm`) and [`partition`] (recursive coordinate bisection and
//! greedy graph growing).
//!
//! For silent-data-corruption resilience, [`abft`] wraps the kernels
//! with Huang–Abraham checksum verification ([`abft::AbftCsr`], the
//! `*_checked` SpGEMM variants), and [`dist::DistCsr`] offers a
//! checksummed halo exchange whose per-peer packets are verified after
//! assembly.
//!
//! The hot kernels (SpMV, SpGEMM, renumbering) execute on the
//! `cpx-par` deterministic thread pool: chunk layout — and therefore
//! every result bit and every modelled [`SpOpStats`] — is keyed to the
//! chunk count, never the runtime thread count, so `CPX_THREADS=N`
//! changes wall time only. `*_with` variants take an explicit
//! [`cpx_par::ParPool`] for benchmarks and tests.
//!
//! Every kernel reports its operation counts ([`SpOpStats`]) so that
//! trace generation is grounded in what the code actually does.

pub mod abft;
pub mod coo;
pub mod csr;
pub mod dist;
pub mod multilevel;
pub mod partition;
pub mod policy;
pub mod renumber;
pub mod sell;
pub mod spgemm;
pub mod tridiag;

pub use abft::{AbftCsr, AbftError};
pub use coo::Coo;
pub use csr::Csr;
pub use dist::DistCsr;
pub use multilevel::{multilevel_partition, MultilevelConfig};
pub use partition::{greedy_graph_partition, rcb_partition, PartitionQuality};
pub use policy::{KernelPolicy, Layout, LayoutMatrix, MatRef};
pub use sell::{SellCSigma, SELL_MAX_C};

/// Operation counts for a sparse kernel invocation, used to drive the
/// roofline cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpOpStats {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read from matrix/vector storage.
    pub bytes_read: f64,
    /// Bytes written.
    pub bytes_written: f64,
    /// Number of passes over the input matrices (2 for the classic
    /// SpGEMM, 1 for the SPA variant — the optimization's whole point).
    pub input_passes: u32,
}

impl SpOpStats {
    /// Total memory traffic.
    pub fn bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// As a [`cpx_machine`]-style kernel cost (flops, bytes). Kept as a
    /// plain tuple so this crate does not depend on `cpx-machine`.
    pub fn as_cost(&self) -> (f64, f64) {
        (self.flops, self.bytes())
    }

    /// Arithmetic intensity in flops per byte of traffic (0 when the
    /// kernel moved no bytes) — the roofline x-coordinate.
    pub fn intensity(&self) -> f64 {
        let bytes = self.bytes();
        if bytes > 0.0 {
            self.flops / bytes
        } else {
            0.0
        }
    }
}
