//! Tridiagonal solvers.
//!
//! SIMPIC's field solve is a 1-D Poisson equation — a tridiagonal system.
//! The serial Thomas algorithm solves a rank's sub-block; the distributed
//! variant in `cpx-simpic` couples blocks through a pipelined sweep whose
//! serialisation across ranks is the scaling limiter the paper's SIMPIC
//! curves exhibit.

/// A tridiagonal system `lower[i]·x[i-1] + diag[i]·x[i] + upper[i]·x[i+1]
/// = rhs[i]` (with `lower[0]` and `upper[n-1]` ignored).
#[derive(Debug, Clone)]
pub struct Tridiag {
    /// Sub-diagonal (index 0 unused).
    pub lower: Vec<f64>,
    /// Diagonal.
    pub diag: Vec<f64>,
    /// Super-diagonal (last index unused).
    pub upper: Vec<f64>,
}

impl Tridiag {
    /// The 1-D Poisson operator `[-1, 2, -1] / h²` on `n` interior nodes.
    pub fn poisson(n: usize, h: f64) -> Self {
        let h2 = h * h;
        Tridiag {
            lower: vec![-1.0 / h2; n],
            diag: vec![2.0 / h2; n],
            upper: vec![-1.0 / h2; n],
        }
    }

    /// System size.
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Solve by the Thomas algorithm. Returns `None` if a pivot vanishes
    /// (the system is singular or needs pivoting).
    pub fn solve(&self, rhs: &[f64]) -> Option<Vec<f64>> {
        let n = self.len();
        assert_eq!(rhs.len(), n, "rhs length");
        if n == 0 {
            return Some(Vec::new());
        }
        let mut c = vec![0.0f64; n]; // modified upper
        let mut d = vec![0.0f64; n]; // modified rhs
        if self.diag[0] == 0.0 {
            return None;
        }
        c[0] = self.upper.first().copied().unwrap_or(0.0) / self.diag[0];
        d[0] = rhs[0] / self.diag[0];
        for i in 1..n {
            let m = self.diag[i] - self.lower[i] * c[i - 1];
            if m == 0.0 {
                return None;
            }
            c[i] = if i + 1 < n { self.upper[i] / m } else { 0.0 };
            d[i] = (rhs[i] - self.lower[i] * d[i - 1]) / m;
        }
        let mut x = vec![0.0f64; n];
        x[n - 1] = d[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = d[i] - c[i] * x[i + 1];
        }
        Some(x)
    }

    /// Residual infinity norm `‖A x − b‖_∞`.
    pub fn residual_inf(&self, x: &[f64], rhs: &[f64]) -> f64 {
        let n = self.len();
        let mut worst: f64 = 0.0;
        for i in 0..n {
            let mut ax = self.diag[i] * x[i];
            if i > 0 {
                ax += self.lower[i] * x[i - 1];
            }
            if i + 1 < n {
                ax += self.upper[i] * x[i + 1];
            }
            worst = worst.max((ax - rhs[i]).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_poisson_quadratic() {
        // -u'' = 2 on (0,1), u(0)=u(1)=0 → u(x) = x(1-x).
        let n = 64;
        let h = 1.0 / (n as f64 + 1.0);
        let sys = Tridiag::poisson(n, h);
        let rhs = vec![2.0; n];
        let x = sys.solve(&rhs).unwrap();
        for i in 0..n {
            let xi = (i as f64 + 1.0) * h;
            let exact = xi * (1.0 - xi);
            assert!(
                (x[i] - exact).abs() < 1e-10,
                "node {i}: {} vs {exact}",
                x[i]
            );
        }
        assert!(sys.residual_inf(&x, &rhs) < 1e-8);
    }

    #[test]
    fn singular_detected() {
        let sys = Tridiag {
            lower: vec![0.0, 0.0],
            diag: vec![0.0, 1.0],
            upper: vec![0.0, 0.0],
        };
        assert!(sys.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn size_one_system() {
        let sys = Tridiag {
            lower: vec![0.0],
            diag: vec![4.0],
            upper: vec![0.0],
        };
        assert_eq!(sys.solve(&[8.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn empty_system() {
        let sys = Tridiag {
            lower: vec![],
            diag: vec![],
            upper: vec![],
        };
        assert!(sys.solve(&[]).unwrap().is_empty());
    }

    #[test]
    fn general_system_matches_manual() {
        // [2 1 0; 1 3 1; 0 1 2] x = [3, 5, 3] → x = [1, 1, 1].
        let sys = Tridiag {
            lower: vec![0.0, 1.0, 1.0],
            diag: vec![2.0, 3.0, 2.0],
            upper: vec![1.0, 1.0, 0.0],
        };
        let x = sys.solve(&[3.0, 5.0, 3.0]).unwrap();
        for v in x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
