//! Row-block distributed CSR with halo exchange.
//!
//! The distributed layout matches what the paper describes for the
//! production AMG (§IV-B): matrix rows are spread across ranks in
//! contiguous blocks in compressed sparse row format; off-block column
//! references become *halo* entries whose values are fetched from their
//! owners before each SpMV. The halo plan (who needs what from whom) is
//! negotiated once with an all-to-all and reused.

use cpx_comm::{Group, RankCtx, ReduceOp};
use cpx_machine::KernelCost;

use crate::abft::{AbftError, ABFT_TOL_FACTOR};
use crate::csr::Csr;
use crate::renumber::renumber_hash_merge;

/// Absolute tolerance floor for the halo checksum comparison.
const HALO_TOL_FLOOR: f64 = 1e-290;

/// This rank's block of a row-distributed sparse matrix.
#[derive(Debug, Clone)]
pub struct DistCsr {
    /// Global row offsets: rank `p` owns global rows
    /// `offsets[p]..offsets[p+1]`.
    offsets: Vec<usize>,
    /// This rank's index in the distribution.
    my_part: usize,
    /// Local matrix: `local_rows × (owned + halo)` with owned columns
    /// first (local numbering) and halo columns after.
    local: Csr,
    /// Global column id of each halo slot.
    halo_globals: Vec<u64>,
    /// For each peer part: the local indices of *our* rows whose values
    /// we must send before an SpMV.
    send_lists: Vec<Vec<usize>>,
    /// For each peer part: the halo slots filled by that peer's values.
    recv_slots: Vec<Vec<usize>>,
    /// Trusted ABFT baseline captured at construction: column sums
    /// `eᵀ·A_local` over the extended (owned + halo) column space.
    local_col_sums: Vec<f64>,
    /// Magnitude counterpart `eᵀ·|A_local|` (tolerance scaling).
    local_col_mags: Vec<f64>,
}

impl DistCsr {
    /// Build this rank's block from a replicated global matrix (tests
    /// and setup paths build globally and distribute; production-scale
    /// paths in this workspace use trace generation instead).
    ///
    /// `group` is the communicator over which the matrix is distributed;
    /// `offsets` (length `group.size() + 1`) gives the row blocks. This
    /// is a collective call.
    pub fn from_global(
        ctx: &mut RankCtx,
        group: &Group,
        global: &Csr,
        offsets: &[usize],
    ) -> DistCsr {
        let p = group.size();
        assert_eq!(
            offsets.len(),
            p + 1,
            "offsets must have one entry per part + 1"
        );
        assert_eq!(offsets[p], global.nrows(), "offsets must cover all rows");
        let me = group.index();
        let (lo, hi) = (offsets[me], offsets[me + 1]);
        let owned = hi - lo;

        // Collect the off-block global columns referenced by our rows.
        let mut halo_refs: Vec<u64> = Vec::new();
        for r in lo..hi {
            let (cols, _) = global.row(r);
            for &c in cols {
                if c < lo || c >= hi {
                    halo_refs.push(c as u64);
                }
            }
        }
        // Fixed logical merge width: the renumbering table is canonical
        // (sorted unique) for any width, but the modelled stats are keyed
        // to it — a constant keeps traces independent of the runtime
        // thread count.
        const HALO_RENUMBER_WORKERS: usize = 8;
        let renum = renumber_hash_merge(&halo_refs, HALO_RENUMBER_WORKERS);
        let halo_globals = renum.table.clone();

        // Build the local matrix with owned columns first, halo after.
        let mut coo = crate::coo::Coo::new(owned, owned + halo_globals.len());
        for r in lo..hi {
            let (cols, vals) = global.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let lc = if c >= lo && c < hi {
                    c - lo
                } else {
                    owned + renum.local_of(c as u64).expect("halo id registered")
                };
                coo.push(r - lo, lc, v);
            }
        }
        let local = coo.to_csr();

        // Who owns each halo id, and which slot it fills.
        let owner_of = |gid: usize| -> usize {
            // offsets is ascending; find p with offsets[p] <= gid < offsets[p+1].
            match offsets.binary_search(&gid) {
                Ok(i) => i,
                Err(i) => i - 1,
            }
        };
        let mut want_from: Vec<Vec<u64>> = vec![Vec::new(); p];
        let mut recv_slots: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (slot, &gid) in halo_globals.iter().enumerate() {
            let owner = owner_of(gid as usize);
            debug_assert_ne!(owner, me, "halo id cannot be owned locally");
            want_from[owner].push(gid);
            recv_slots[owner].push(slot);
        }

        // Tell each owner which of its rows we want (ids as f64 bit
        // patterns — lossless for u64 transport).
        let requests: Vec<Vec<f64>> = want_from
            .iter()
            .map(|ids| ids.iter().map(|&g| f64::from_bits(g)).collect())
            .collect();
        let incoming = group.alltoallv(ctx, requests);
        let send_lists: Vec<Vec<usize>> = incoming
            .into_iter()
            .map(|ids| {
                ids.into_iter()
                    .map(|bits| {
                        let gid = bits.to_bits() as usize;
                        assert!(gid >= lo && gid < hi, "peer requested non-owned row");
                        gid - lo
                    })
                    .collect()
            })
            .collect();

        let mut local_col_sums = vec![0.0; local.ncols()];
        let mut local_col_mags = vec![0.0; local.ncols()];
        for r in 0..local.nrows() {
            let (cols, vals) = local.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                local_col_sums[c] += v;
                local_col_mags[c] += v.abs();
            }
        }

        DistCsr {
            offsets: offsets.to_vec(),
            my_part: me,
            local,
            halo_globals,
            send_lists,
            recv_slots,
            local_col_sums,
            local_col_mags,
        }
    }

    /// Number of locally owned rows.
    pub fn owned(&self) -> usize {
        self.local.nrows()
    }

    /// Number of halo slots.
    pub fn halo_len(&self) -> usize {
        self.halo_globals.len()
    }

    /// The local matrix (owned + halo column space).
    pub fn local_matrix(&self) -> &Csr {
        &self.local
    }

    /// Mutable access to the local matrix. The ABFT baseline captured
    /// at construction is deliberately *not* refreshed — mutations made
    /// here are what [`DistCsr::spmv_checked`] detects (this is the
    /// fault-injection surface for distributed SDC experiments).
    pub fn local_matrix_mut(&mut self) -> &mut Csr {
        &mut self.local
    }

    /// Global row offsets.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Total bytes this rank sends in one halo exchange.
    pub fn halo_send_bytes(&self) -> usize {
        self.send_lists.iter().map(|l| l.len() * 8).sum()
    }

    /// Exchange halo values of `x` (length [`DistCsr::owned`]) and return
    /// the extended vector `[x, halo]`. Collective.
    pub fn exchange_halo(&self, ctx: &mut RankCtx, group: &Group, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.owned(), "x must be the owned block");
        let p = group.size();
        // Pack per-peer sends (gather charged at memory bandwidth).
        let mut sends: Vec<Vec<f64>> = Vec::with_capacity(p);
        let mut pack_bytes = 0usize;
        for peer in 0..p {
            let list = &self.send_lists[peer];
            pack_bytes += list.len() * 16;
            sends.push(list.iter().map(|&i| x[i]).collect());
        }
        ctx.compute(KernelCost::bytes(pack_bytes as f64));
        let received = group.alltoallv(ctx, sends);
        let mut ext = Vec::with_capacity(self.owned() + self.halo_len());
        ext.extend_from_slice(x);
        ext.resize(self.owned() + self.halo_len(), 0.0);
        for peer in 0..p {
            for (vals, &slot) in received[peer].iter().zip(&self.recv_slots[peer]) {
                ext[self.owned() + slot] = *vals;
            }
        }
        ext
    }

    /// Checksummed halo exchange: each per-peer packet carries its own
    /// sum and magnitude-sum as two trailing elements, and the receiver
    /// verifies every packet after halo assembly — a bit flip anywhere
    /// in flight (data or checksum) surfaces as an [`AbftError`]
    /// instead of silently seeding the halo. Collective.
    pub fn exchange_halo_checked(
        &self,
        ctx: &mut RankCtx,
        group: &Group,
        x: &[f64],
    ) -> Result<Vec<f64>, AbftError> {
        assert_eq!(x.len(), self.owned(), "x must be the owned block");
        let p = group.size();
        let mut sends: Vec<Vec<f64>> = Vec::with_capacity(p);
        let mut pack_bytes = 0usize;
        for peer in 0..p {
            let list = &self.send_lists[peer];
            pack_bytes += (list.len() + 2) * 16;
            let mut pack: Vec<f64> = list.iter().map(|&i| x[i]).collect();
            let sum: f64 = pack.iter().sum();
            let mag: f64 = pack.iter().map(|v| v.abs()).sum();
            pack.push(sum);
            pack.push(mag);
            sends.push(pack);
        }
        ctx.compute(KernelCost::bytes(pack_bytes as f64));
        let received = group.alltoallv(ctx, sends);
        let mut ext = Vec::with_capacity(self.owned() + self.halo_len());
        ext.extend_from_slice(x);
        ext.resize(self.owned() + self.halo_len(), 0.0);
        for peer in 0..p {
            let pack = &received[peer];
            let slots = &self.recv_slots[peer];
            debug_assert_eq!(pack.len(), slots.len() + 2);
            let (vals, trailer) = pack.split_at(slots.len());
            let got: f64 = vals.iter().sum();
            let tol = ABFT_TOL_FACTOR * f64::EPSILON * (slots.len() + 1) as f64 * trailer[1]
                + HALO_TOL_FLOOR;
            let discrepancy = (got - trailer[0]).abs();
            if !discrepancy.is_finite() || discrepancy > tol {
                return Err(AbftError {
                    kernel: "exchange_halo",
                    discrepancy,
                    tolerance: tol,
                });
            }
            for (v, &slot) in vals.iter().zip(slots) {
                ext[self.owned() + slot] = *v;
            }
        }
        Ok(ext)
    }

    /// Distributed `y = A x` over the group. `x` and the returned `y`
    /// are the owned blocks. Collective.
    pub fn spmv(&self, ctx: &mut RankCtx, group: &Group, x: &[f64]) -> Vec<f64> {
        let ext = self.exchange_halo(ctx, group, x);
        let mut y = vec![0.0; self.owned()];
        let stats = self.local.spmv(&ext, &mut y);
        ctx.compute(KernelCost::new(stats.flops, stats.bytes()));
        y
    }

    /// Distributed SpMV over the checksummed halo exchange, with the
    /// local product ABFT-verified against the local column sums of the
    /// extended operator. Collective.
    pub fn spmv_checked(
        &self,
        ctx: &mut RankCtx,
        group: &Group,
        x: &[f64],
    ) -> Result<Vec<f64>, AbftError> {
        let ext = self.exchange_halo_checked(ctx, group, x)?;
        let mut y = vec![0.0; self.owned()];
        let stats = self.local.spmv(&ext, &mut y);
        ctx.compute(KernelCost::new(stats.flops, stats.bytes()));

        // Local ABFT against the trusted baseline captured at
        // construction: Σ y =?= (eᵀ A_local)_trusted · ext. A value
        // flipped after construction perturbs y but not the baseline.
        let got: f64 = y.iter().sum();
        let want: f64 = self
            .local_col_sums
            .iter()
            .zip(&ext)
            .map(|(s, xi)| s * xi)
            .sum();
        let mag: f64 = self
            .local_col_mags
            .iter()
            .zip(&ext)
            .map(|(m, xi)| m * xi.abs())
            .sum();
        let n = (self.local.nrows() + self.local.ncols()) as f64;
        let tol = ABFT_TOL_FACTOR * f64::EPSILON * n * mag + HALO_TOL_FLOOR;
        // Charge the O(ncols) verification (three vector passes).
        ctx.compute(KernelCost::bytes(self.local.ncols() as f64 * 48.0));
        let discrepancy = (got - want).abs();
        if !discrepancy.is_finite() || discrepancy > tol {
            return Err(AbftError {
                kernel: "dist_spmv",
                discrepancy,
                tolerance: tol,
            });
        }
        Ok(y)
    }

    /// Distributed dot product of two owned blocks. Collective.
    pub fn dot(&self, ctx: &mut RankCtx, group: &Group, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        ctx.compute(KernelCost::new(2.0 * a.len() as f64, 16.0 * a.len() as f64));
        group.allreduce_scalar(ctx, ReduceOp::Sum, local)
    }

    /// The part that owns global row `gid`.
    pub fn owner_of(&self, gid: usize) -> usize {
        match self.offsets.binary_search(&gid) {
            Ok(i) => i.min(self.offsets.len() - 2),
            Err(i) => i - 1,
        }
    }

    /// This rank's part index.
    pub fn my_part(&self) -> usize {
        self.my_part
    }
}

/// Even row-block offsets for `n` rows over `p` parts.
pub fn even_offsets(n: usize, p: usize) -> Vec<usize> {
    (0..=p).map(|i| i * n / p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_comm::World;
    use cpx_machine::Machine;

    fn world() -> World {
        World::new(Machine::archer2())
    }

    #[test]
    fn distributed_spmv_matches_serial() {
        let global = Csr::poisson2d(8, 8);
        let n = global.nrows();
        let x_full: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_want = vec![0.0; n];
        global.spmv(&x_full, &mut y_want);

        for p in [1usize, 2, 3, 5] {
            let g2 = global.clone();
            let xf = x_full.clone();
            let res = world().run(p, move |ctx| {
                let group = ctx.world();
                let offsets = even_offsets(g2.nrows(), group.size());
                let dist = DistCsr::from_global(ctx, &group, &g2, &offsets);
                let me = group.index();
                let x_local = xf[offsets[me]..offsets[me + 1]].to_vec();
                dist.spmv(ctx, &group, &x_local)
            });
            let mut y_got = Vec::new();
            for (block, _) in res {
                y_got.extend(block);
            }
            for i in 0..n {
                assert!(
                    (y_got[i] - y_want[i]).abs() < 1e-12,
                    "p={p} row {i}: {} vs {}",
                    y_got[i],
                    y_want[i]
                );
            }
        }
    }

    #[test]
    fn halo_sizes_match_structure() {
        // 1-D Poisson split in 2: each part needs exactly 1 halo value.
        let global = Csr::poisson1d(10);
        let res = world().run(2, move |ctx| {
            let group = ctx.world();
            let offsets = even_offsets(10, 2);
            let dist = DistCsr::from_global(ctx, &group, &global, &offsets);
            (dist.halo_len(), dist.halo_send_bytes())
        });
        for ((halo, send_bytes), _) in res {
            assert_eq!(halo, 1);
            assert_eq!(send_bytes, 8);
        }
    }

    #[test]
    fn distributed_dot_matches_serial() {
        let n = 40;
        let a_full: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b_full: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let want: f64 = a_full.iter().zip(&b_full).map(|(x, y)| x * y).sum();
        let global = Csr::identity(n);
        let res = world().run(4, move |ctx| {
            let group = ctx.world();
            let offsets = even_offsets(n, 4);
            let dist = DistCsr::from_global(ctx, &group, &global, &offsets);
            let me = group.index();
            let a = a_full[offsets[me]..offsets[me + 1]].to_vec();
            let b = b_full[offsets[me]..offsets[me + 1]].to_vec();
            dist.dot(ctx, &group, &a, &b)
        });
        for (got, _) in res {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn checked_spmv_matches_serial_when_clean() {
        let global = Csr::poisson2d(6, 6);
        let n = global.nrows();
        let x_full: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let mut y_want = vec![0.0; n];
        global.spmv(&x_full, &mut y_want);
        let res = world().run(3, move |ctx| {
            let group = ctx.world();
            let offsets = even_offsets(global.nrows(), group.size());
            let dist = DistCsr::from_global(ctx, &group, &global, &offsets);
            let me = group.index();
            let x = x_full[offsets[me]..offsets[me + 1]].to_vec();
            dist.spmv_checked(ctx, &group, &x).expect("clean run")
        });
        let mut got = Vec::new();
        for (block, _) in res {
            got.extend(block);
        }
        for i in 0..n {
            assert!((got[i] - y_want[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn checked_spmv_detects_corrupted_local_values() {
        let global = Csr::poisson2d(6, 6);
        let res = world().run(2, move |ctx| {
            let group = ctx.world();
            let offsets = even_offsets(global.nrows(), group.size());
            let mut dist = DistCsr::from_global(ctx, &group, &global, &offsets);
            if group.index() == 1 {
                // Flip an exponent bit in one stored value after the
                // baseline was captured.
                let v = dist.local_matrix().vals()[3];
                dist.local_matrix_mut().vals_mut()[3] = v * 2f64.powi(40);
            }
            let me = group.index();
            let x = vec![1.0; offsets[me + 1] - offsets[me]];
            dist.spmv_checked(ctx, &group, &x).map(|_| ())
        });
        assert!(res[0].0.is_ok(), "unaffected rank stays clean");
        let err = res[1].0.as_ref().expect_err("corruption must be caught");
        assert_eq!(err.kernel, "dist_spmv");
    }

    #[test]
    fn checked_halo_detects_non_finite_in_flight() {
        let global = Csr::poisson1d(10);
        let res = world().run(2, move |ctx| {
            let group = ctx.world();
            let offsets = even_offsets(10, 2);
            let dist = DistCsr::from_global(ctx, &group, &global, &offsets);
            let me = group.index();
            let mut x = vec![1.0; offsets[me + 1] - offsets[me]];
            if me == 0 {
                // Poison the boundary element that crosses the halo.
                let last = x.len() - 1;
                x[last] = f64::NAN;
            }
            dist.exchange_halo_checked(ctx, &group, &x).map(|_| ())
        });
        let err = res[1].0.as_ref().expect_err("NaN through the halo");
        assert_eq!(err.kernel, "exchange_halo");
    }

    #[test]
    fn owner_lookup() {
        let global = Csr::poisson1d(10);
        let res = world().run(2, move |ctx| {
            let group = ctx.world();
            let dist = DistCsr::from_global(ctx, &group, &global, &[0, 5, 10]);
            (
                dist.owner_of(0),
                dist.owner_of(4),
                dist.owner_of(5),
                dist.owner_of(9),
            )
        });
        assert_eq!(res[0].0, (0, 0, 1, 1));
    }

    #[test]
    fn uneven_offsets_work() {
        let global = Csr::poisson1d(9);
        let want: Vec<f64> = {
            let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
            let mut y = vec![0.0; 9];
            global.spmv(&x, &mut y);
            y
        };
        let res = world().run(3, move |ctx| {
            let group = ctx.world();
            let offsets = vec![0, 2, 3, 9]; // deliberately uneven
            let dist = DistCsr::from_global(ctx, &group, &global, &offsets);
            let me = group.index();
            let x: Vec<f64> = (offsets[me]..offsets[me + 1]).map(|i| i as f64).collect();
            dist.spmv(ctx, &group, &x)
        });
        let mut got = Vec::new();
        for (block, _) in res {
            got.extend(block);
        }
        for i in 0..9 {
            assert!((got[i] - want[i]).abs() < 1e-12);
        }
    }
}
