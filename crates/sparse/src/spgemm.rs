//! Sparse general matrix–matrix multiplication.
//!
//! SpGEMM dominates the AMG setup phase (Galerkin triple products) that
//! the paper's profiling identifies as a pressure-field bottleneck
//! (§IV-B). Three functionally identical variants are provided whose
//! *cost profiles* differ exactly as the paper describes:
//!
//! * [`spgemm_twopass`] — the traditional algorithm: a symbolic pass
//!   sizes the output, then a numeric pass fills it. The inputs are read
//!   **twice**.
//! * [`spgemm_spa`] — Gustavson's algorithm with a dense **sparse
//!   accumulator (SPA)**: constant-time access to output entries, one
//!   pass over the inputs, and per-chunk output buffers that are copied
//!   into contiguous storage at the end — the "allocate each thread a
//!   large chunk of memory and copy the disjoint results" optimization.
//! * [`spgemm_hash`] — per-row hash-map accumulation (the variant whose
//!   column-renumbering behaviour §IV-B's distributed optimization
//!   targets; see [`crate::renumber`]).
//!
//! All variants produce bit-identical CSR results (sorted columns,
//! duplicates summed) and report [`SpOpStats`] so callers can compare the
//! modelled cost of each.

use std::collections::HashMap;

use cpx_par::{chunk_ranges, ParPool};

use crate::csr::Csr;
use crate::SpOpStats;

/// Default chunk count for SpGEMM call sites: one chunk per worker of
/// the global pool. The SPA result (and its modelled stats) are
/// independent of the chunk count, so call sites may use this freely
/// without perturbing virtual-time traces.
pub fn spgemm_chunks() -> usize {
    ParPool::current().chunks()
}

/// Result of an SpGEMM: the product and the kernel's op statistics.
#[derive(Debug, Clone)]
pub struct SpGemmResult {
    /// `C = A · B`.
    pub product: Csr,
    /// Operation counts of the chosen algorithm.
    pub stats: SpOpStats,
}

fn check_dims(a: &Csr, b: &Csr) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "spgemm: inner dimensions {} vs {}",
        a.ncols(),
        b.nrows()
    );
}

/// Multiply-add work (`flops`) of the product, i.e. the number of scalar
/// products formed: `sum over a_ik of nnz(B row k)`.
fn multiply_work(a: &Csr, b: &Csr) -> f64 {
    let mut work = 0usize;
    for r in 0..a.nrows() {
        let (cols, _) = a.row(r);
        for &k in cols {
            work += b.row(k).0.len();
        }
    }
    work as f64
}

/// Classic two-pass SpGEMM: symbolic sizing pass + numeric pass.
pub fn spgemm_twopass(a: &Csr, b: &Csr) -> SpGemmResult {
    check_dims(a, b);
    let n = a.nrows();
    let m = b.ncols();

    // --- symbolic pass: count nnz per output row --------------------
    let mut marker = vec![usize::MAX; m];
    let mut row_nnz = vec![0usize; n];
    for r in 0..n {
        let (acols, _) = a.row(r);
        let mut count = 0usize;
        for &k in acols {
            let (bcols, _) = b.row(k);
            for &c in bcols {
                if marker[c] != r {
                    marker[c] = r;
                    count += 1;
                }
            }
        }
        row_nnz[r] = count;
    }
    let mut rowptr = vec![0usize; n + 1];
    for r in 0..n {
        rowptr[r + 1] = rowptr[r] + row_nnz[r];
    }
    let nnz = rowptr[n];

    // --- numeric pass ------------------------------------------------
    let mut colidx = vec![0usize; nnz];
    let mut vals = vec![0.0f64; nnz];
    let mut acc = vec![0.0f64; m];
    let mut marker2 = vec![usize::MAX; m];
    let mut touched: Vec<usize> = Vec::new();
    for r in 0..n {
        touched.clear();
        let (acols, avals) = a.row(r);
        for (&k, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&c, &bv) in bcols.iter().zip(bvals) {
                if marker2[c] != r {
                    marker2[c] = r;
                    acc[c] = av * bv;
                    touched.push(c);
                } else {
                    acc[c] += av * bv;
                }
            }
        }
        touched.sort_unstable();
        let base = rowptr[r];
        for (i, &c) in touched.iter().enumerate() {
            colidx[base + i] = c;
            vals[base + i] = acc[c];
        }
    }

    let work = multiply_work(a, b);
    let read_once = (a.nnz() + b.nnz()) as f64 * 16.0 + (a.nrows() + b.nrows()) as f64 * 8.0;
    let stats = SpOpStats {
        flops: 2.0 * work,
        // Inputs are traversed twice — the cost the SPA variant removes.
        bytes_read: 2.0 * read_once,
        bytes_written: nnz as f64 * 16.0,
        input_passes: 2,
    };
    SpGemmResult {
        product: Csr::from_raw(n, m, rowptr, colidx, vals),
        stats,
    }
}

/// Gustavson SpGEMM with a dense sparse accumulator (SPA) and per-chunk
/// output buffers: a single pass over the inputs.
///
/// `chunks` models the number of parallel workers each given a private
/// output buffer; the disjoint per-chunk results are copied to contiguous
/// storage at the end (that copy is charged in the stats). Functionally
/// the result is independent of `chunks`.
pub fn spgemm_spa(a: &Csr, b: &Csr, chunks: usize) -> SpGemmResult {
    assert!(chunks >= 1, "need at least one chunk");
    let pool = ParPool::current().limited(a.nnz() + b.nnz());
    spgemm_spa_with(&pool, a, b, chunks)
}

/// SPA scratch: dense accumulator + row-stamped marker + touched list.
struct Spa {
    acc: Vec<f64>,
    marker: Vec<usize>,
    touched: Vec<usize>,
}

impl Spa {
    fn new(m: usize) -> Spa {
        Spa {
            acc: vec![0.0f64; m],
            marker: vec![usize::MAX; m],
            touched: Vec::new(),
        }
    }
}

/// One chunk of SPA rows: returns the private per-chunk CSR pieces
/// (`rp` relative to the chunk, `ci`/`va` concatenated in row order).
fn spa_rows(
    a: &Csr,
    b: &Csr,
    rows: std::ops::Range<usize>,
    spa: &mut Spa,
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut rp = Vec::with_capacity(rows.len() + 1);
    rp.push(0usize);
    let mut ci: Vec<usize> = Vec::new();
    let mut va: Vec<f64> = Vec::new();
    for r in rows {
        spa.touched.clear();
        let (acols, avals) = a.row(r);
        for (&k, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&c, &bv) in bcols.iter().zip(bvals) {
                if spa.marker[c] != r {
                    spa.marker[c] = r;
                    spa.acc[c] = av * bv;
                    spa.touched.push(c);
                } else {
                    spa.acc[c] += av * bv;
                }
            }
        }
        spa.touched.sort_unstable();
        for &c in &spa.touched {
            ci.push(c);
            va.push(spa.acc[c]);
        }
        rp.push(ci.len());
    }
    (rp, ci, va)
}

/// [`spgemm_spa`] on an explicit pool: chunks run on the pool's workers
/// (per-worker SPA scratch), or serially reusing one scratch when the
/// pool is serial. Bit-identical for any pool and chunk count.
pub fn spgemm_spa_with(pool: &ParPool, a: &Csr, b: &Csr, chunks: usize) -> SpGemmResult {
    check_dims(a, b);
    let chunks = chunks.max(1);
    let n = a.nrows();
    let m = b.ncols();

    // Per-chunk private outputs (rows are block-distributed to chunks).
    let ranges = chunk_ranges(n, chunks);
    let chunk_parts: Vec<(Vec<usize>, Vec<usize>, Vec<f64>)> = if pool.threads() <= 1 {
        // Serial fast path: one SPA scratch reused across all chunks.
        let mut spa = Spa::new(m);
        ranges
            .iter()
            .map(|r| spa_rows(a, b, r.clone(), &mut spa))
            .collect()
    } else {
        pool.map(chunks, |c| {
            let mut spa = Spa::new(m);
            spa_rows(a, b, ranges[c].clone(), &mut spa)
        })
    };

    // Concatenate the disjoint chunk results into contiguous CSR.
    let nnz: usize = chunk_parts.iter().map(|(_, ci, _)| ci.len()).sum();
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (rp, ci, va) in &chunk_parts {
        let base = colidx.len();
        for w in rp.windows(2) {
            rowptr.push(base + w[1]);
        }
        colidx.extend_from_slice(ci);
        vals.extend_from_slice(va);
    }
    // Rows beyond the last chunk boundary (when n == 0 edge case).
    while rowptr.len() < n + 1 {
        rowptr.push(colidx.len());
    }

    let work = multiply_work(a, b);
    let read_once = (a.nnz() + b.nnz()) as f64 * 16.0 + (a.nrows() + b.nrows()) as f64 * 8.0;
    let stats = SpOpStats {
        flops: 2.0 * work,
        bytes_read: read_once,
        // Output written once into chunks, then copied contiguous.
        bytes_written: 2.0 * nnz as f64 * 16.0,
        input_passes: 1,
    };
    SpGemmResult {
        product: Csr::from_raw(n, m, rowptr, colidx, vals),
        stats,
    }
}

/// Reusable SPA scratch arena: one [`Spa`]-shaped slot per chunk plus
/// per-chunk output buffers, all retained across calls so steady-state
/// SpGEMMs (the AMG hierarchy rebuild path) allocate nothing once the
/// high-water capacities are reached.
///
/// Markers are epoch-stamped: instead of re-filling `marker` with
/// `usize::MAX` per call (an O(m) write that would defeat reuse), each
/// row bumps the slot's epoch and matches on the stamp, so stale marks
/// from any previous call or row can never collide.
#[derive(Debug, Default)]
pub struct SpaWorkspace {
    slots: Vec<SpaSlot>,
}

#[derive(Debug, Default)]
struct SpaSlot {
    acc: Vec<f64>,
    /// Epoch stamp per output column; 0 means "never touched".
    marker: Vec<u64>,
    epoch: u64,
    touched: Vec<usize>,
    // Private per-chunk output pieces (parallel path).
    rp: Vec<usize>,
    ci: Vec<usize>,
    va: Vec<f64>,
}

impl SpaWorkspace {
    pub fn new() -> SpaWorkspace {
        SpaWorkspace::default()
    }

    /// Make sure `chunks` slots exist, each sized for `m` output
    /// columns. Only grows — no steady-state work once warmed.
    fn ensure(&mut self, chunks: usize, m: usize) {
        if self.slots.len() < chunks {
            self.slots.resize_with(chunks, SpaSlot::default);
        }
        for slot in &mut self.slots[..chunks] {
            if slot.acc.len() < m {
                slot.acc.resize(m, 0.0);
                slot.marker.resize(m, 0);
            }
        }
    }
}

impl SpaSlot {
    /// Gustavson rows `rows` of `a·b`, appending to `ci`/`va` and row
    /// ends to `rp` (no leading 0 — callers track the base).
    fn spa_rows_into(
        &mut self,
        a: &Csr,
        b: &Csr,
        rows: std::ops::Range<usize>,
        rp: &mut Vec<usize>,
        ci: &mut Vec<usize>,
        va: &mut Vec<f64>,
    ) {
        for r in rows {
            self.epoch += 1;
            let stamp = self.epoch;
            self.touched.clear();
            let (acols, avals) = a.row(r);
            for (&k, &av) in acols.iter().zip(avals) {
                let (bcols, bvals) = b.row(k);
                for (&c, &bv) in bcols.iter().zip(bvals) {
                    if self.marker[c] != stamp {
                        self.marker[c] = stamp;
                        self.acc[c] = av * bv;
                        self.touched.push(c);
                    } else {
                        self.acc[c] += av * bv;
                    }
                }
            }
            self.touched.sort_unstable();
            for &c in &self.touched {
                ci.push(c);
                va.push(self.acc[c]);
            }
            rp.push(ci.len());
        }
    }
}

/// [`spgemm_spa`] writing into caller-owned output buffers through a
/// reusable [`SpaWorkspace`]: the zero-allocation steady-state form.
/// Output vectors are cleared and refilled (capacity is retained);
/// result bits and modelled stats are identical to [`spgemm_spa`].
#[allow(clippy::too_many_arguments)]
pub fn spgemm_spa_reuse(
    pool: &ParPool,
    a: &Csr,
    b: &Csr,
    chunks: usize,
    ws: &mut SpaWorkspace,
    rowptr: &mut Vec<usize>,
    colidx: &mut Vec<usize>,
    vals: &mut Vec<f64>,
) -> SpOpStats {
    check_dims(a, b);
    let chunks = chunks.max(1);
    let n = a.nrows();
    let m = b.ncols();
    rowptr.clear();
    colidx.clear();
    vals.clear();
    rowptr.push(0usize);

    if pool.threads() <= 1 {
        // Serial fast path: rows in chunk order are rows in row order,
        // so append straight into the output through one slot — chunk
        // boundaries computed on the fly (same ceil-division layout as
        // `chunk_ranges`) to keep the steady state allocation-free.
        ws.ensure(1, m);
        let slot = &mut ws.slots[0];
        let per = n.div_ceil(chunks);
        for c in 0..chunks {
            let r = (c * per).min(n)..((c + 1) * per).min(n);
            slot.spa_rows_into(a, b, r, rowptr, colidx, vals);
        }
    } else {
        let ranges = chunk_ranges(n, chunks);
        // One private slot (scratch + output piece) per chunk; the
        // slot slice itself is dealt out by the pool, so each worker
        // mutates only its own arena.
        ws.ensure(chunks, m);
        let slots = &mut ws.slots[..chunks];
        pool.chunks_mut(slots, chunks, |c, _, part| {
            let slot = &mut part[0];
            slot.rp.clear();
            slot.ci.clear();
            slot.va.clear();
            // Split-borrow the scratch fields from the output buffers.
            let (mut rp, mut ci, mut va) = (
                std::mem::take(&mut slot.rp),
                std::mem::take(&mut slot.ci),
                std::mem::take(&mut slot.va),
            );
            slot.spa_rows_into(a, b, ranges[c].clone(), &mut rp, &mut ci, &mut va);
            slot.rp = rp;
            slot.ci = ci;
            slot.va = va;
        });
        for slot in ws.slots[..chunks].iter() {
            let base = colidx.len();
            rowptr.extend(slot.rp.iter().map(|&e| base + e));
            colidx.extend_from_slice(&slot.ci);
            vals.extend_from_slice(&slot.va);
        }
    }
    while rowptr.len() < n + 1 {
        rowptr.push(colidx.len());
    }

    let work = multiply_work(a, b);
    let read_once = (a.nnz() + b.nnz()) as f64 * 16.0 + (a.nrows() + b.nrows()) as f64 * 8.0;
    SpOpStats {
        flops: 2.0 * work,
        bytes_read: read_once,
        bytes_written: 2.0 * colidx.len() as f64 * 16.0,
        input_passes: 1,
    }
}

/// [`spgemm_spa_reuse`] returning a fresh [`Csr`] (output allocated,
/// scratch reused from the workspace).
pub fn spgemm_spa_ws(
    pool: &ParPool,
    a: &Csr,
    b: &Csr,
    chunks: usize,
    ws: &mut SpaWorkspace,
) -> SpGemmResult {
    let mut rowptr = Vec::new();
    let mut colidx = Vec::new();
    let mut vals = Vec::new();
    let stats = spgemm_spa_reuse(pool, a, b, chunks, ws, &mut rowptr, &mut colidx, &mut vals);
    SpGemmResult {
        product: Csr::from_raw(a.nrows(), b.ncols(), rowptr, colidx, vals),
        stats,
    }
}

/// Hash-map accumulation SpGEMM (one pass; per-row `HashMap`).
pub fn spgemm_hash(a: &Csr, b: &Csr) -> SpGemmResult {
    let pool = ParPool::current().limited(a.nnz() + b.nnz());
    spgemm_hash_with(&pool, a, b, pool.chunks())
}

/// One chunk of hash-accumulated rows (per-chunk `HashMap`, cleared
/// between rows). Each row's entries are sorted by column, so the
/// concatenated output is identical for any chunking.
fn hash_rows(a: &Csr, b: &Csr, rows: std::ops::Range<usize>) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut rp = Vec::with_capacity(rows.len() + 1);
    rp.push(0usize);
    let mut ci: Vec<usize> = Vec::new();
    let mut va: Vec<f64> = Vec::new();
    let mut map: HashMap<usize, f64> = HashMap::new();
    for r in rows {
        map.clear();
        let (acols, avals) = a.row(r);
        for (&k, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&c, &bv) in bcols.iter().zip(bvals) {
                *map.entry(c).or_insert(0.0) += av * bv;
            }
        }
        let mut row: Vec<(usize, f64)> = map.iter().map(|(&c, &v)| (c, v)).collect();
        row.sort_unstable_by_key(|&(c, _)| c);
        for (c, v) in row {
            ci.push(c);
            va.push(v);
        }
        rp.push(ci.len());
    }
    (rp, ci, va)
}

/// [`spgemm_hash`] on an explicit pool, row-chunked like the SPA
/// variant.
pub fn spgemm_hash_with(pool: &ParPool, a: &Csr, b: &Csr, chunks: usize) -> SpGemmResult {
    check_dims(a, b);
    let n = a.nrows();
    let m = b.ncols();
    let ranges = chunk_ranges(n, chunks);
    let chunk_parts: Vec<(Vec<usize>, Vec<usize>, Vec<f64>)> = if pool.threads() <= 1 {
        ranges.iter().map(|r| hash_rows(a, b, r.clone())).collect()
    } else {
        pool.map(ranges.len(), |c| hash_rows(a, b, ranges[c].clone()))
    };
    let nnz: usize = chunk_parts.iter().map(|(_, ci, _)| ci.len()).sum();
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (rp, ci, va) in &chunk_parts {
        let base = colidx.len();
        for w in rp.windows(2) {
            rowptr.push(base + w[1]);
        }
        colidx.extend_from_slice(ci);
        vals.extend_from_slice(va);
    }
    while rowptr.len() < n + 1 {
        rowptr.push(colidx.len());
    }
    let work = multiply_work(a, b);
    let read_once = (a.nnz() + b.nnz()) as f64 * 16.0 + (a.nrows() + b.nrows()) as f64 * 8.0;
    let stats = SpOpStats {
        flops: 2.0 * work,
        // Hashing costs extra traffic per multiply (probe + bucket).
        bytes_read: read_once + work * 16.0,
        bytes_written: nnz as f64 * 16.0,
        input_passes: 1,
    };
    SpGemmResult {
        product: Csr::from_raw(n, m, rowptr, colidx, vals),
        stats,
    }
}

/// The Galerkin triple product `R · A · P` (AMG coarse operator), using
/// the SPA variant internally. Returns the product and combined stats.
pub fn triple_product(r: &Csr, a: &Csr, p: &Csr, chunks: usize) -> SpGemmResult {
    triple_product_ws(r, a, p, chunks, &mut GalerkinWorkspace::new())
}

/// Scratch for the Galerkin rebuild path: the SPA arena plus the raw
/// arrays of the intermediate `A·P` product, so a hierarchy rebuilt
/// every outer step reuses all of its setup-phase allocations.
#[derive(Debug, Default)]
pub struct GalerkinWorkspace {
    /// SPA slots shared by both multiplies.
    pub spa: SpaWorkspace,
    ap_rowptr: Vec<usize>,
    ap_colidx: Vec<usize>,
    ap_vals: Vec<f64>,
}

impl GalerkinWorkspace {
    pub fn new() -> GalerkinWorkspace {
        GalerkinWorkspace::default()
    }
}

/// [`triple_product`] through a reusable [`GalerkinWorkspace`]:
/// bit-identical product and stats, but the SPA scratch and the
/// intermediate `A·P` storage come from (and return to) the workspace.
pub fn triple_product_ws(
    r: &Csr,
    a: &Csr,
    p: &Csr,
    chunks: usize,
    ws: &mut GalerkinWorkspace,
) -> SpGemmResult {
    let pool_ap = ParPool::current().limited(a.nnz() + p.nnz());
    let mut rp = std::mem::take(&mut ws.ap_rowptr);
    let mut ci = std::mem::take(&mut ws.ap_colidx);
    let mut va = std::mem::take(&mut ws.ap_vals);
    let ap_stats = spgemm_spa_reuse(
        &pool_ap,
        a,
        p,
        chunks,
        &mut ws.spa,
        &mut rp,
        &mut ci,
        &mut va,
    );
    let ap = Csr::from_raw(a.nrows(), p.ncols(), rp, ci, va);
    let pool_rap = ParPool::current().limited(r.nnz() + ap.nnz());
    let rap = spgemm_spa_ws(&pool_rap, r, &ap, chunks, &mut ws.spa);
    (ws.ap_rowptr, ws.ap_colidx, ws.ap_vals) = ap.into_raw();
    let stats = SpOpStats {
        flops: ap_stats.flops + rap.stats.flops,
        bytes_read: ap_stats.bytes_read + rap.stats.bytes_read,
        bytes_written: ap_stats.bytes_written + rap.stats.bytes_written,
        input_passes: 1,
    };
    SpGemmResult {
        product: rap.product,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn dense_mul(a: &Csr, b: &Csr) -> Vec<Vec<f64>> {
        let da = a.to_dense();
        let db = b.to_dense();
        let mut c = vec![vec![0.0; b.ncols()]; a.nrows()];
        for i in 0..a.nrows() {
            for k in 0..a.ncols() {
                if da[i][k] != 0.0 {
                    for j in 0..b.ncols() {
                        c[i][j] += da[i][k] * db[k][j];
                    }
                }
            }
        }
        c
    }

    fn assert_matches_dense(c: &Csr, want: &[Vec<f64>]) {
        for i in 0..c.nrows() {
            for j in 0..c.ncols() {
                assert!(
                    (c.get(i, j) - want[i][j]).abs() < 1e-12,
                    "mismatch at ({i},{j}): {} vs {}",
                    c.get(i, j),
                    want[i][j]
                );
            }
        }
    }

    fn random_csr(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> Csr {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(nrows, ncols);
        for r in 0..nrows {
            for _ in 0..per_row {
                coo.push(r, rng.gen_range(0..ncols), rng.gen_range(-1.0..1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn all_variants_match_dense_reference() {
        let a = random_csr(20, 15, 4, 1);
        let b = random_csr(15, 25, 3, 2);
        let want = dense_mul(&a, &b);
        assert_matches_dense(&spgemm_twopass(&a, &b).product, &want);
        assert_matches_dense(&spgemm_spa(&a, &b, 1).product, &want);
        assert_matches_dense(&spgemm_spa(&a, &b, 4).product, &want);
        assert_matches_dense(&spgemm_hash(&a, &b).product, &want);
    }

    #[test]
    fn variants_bit_identical() {
        let a = random_csr(30, 30, 5, 3);
        let b = random_csr(30, 30, 5, 4);
        let c1 = spgemm_twopass(&a, &b).product;
        let c2 = spgemm_spa(&a, &b, 3).product;
        let c3 = spgemm_hash(&a, &b).product;
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_csr(10, 10, 3, 5);
        let i = Csr::identity(10);
        assert_eq!(spgemm_spa(&a, &i, 2).product, a);
        assert_eq!(spgemm_spa(&i, &a, 2).product, a);
    }

    #[test]
    fn spa_reads_half_of_twopass() {
        let a = Csr::poisson2d(16, 16);
        let two = spgemm_twopass(&a, &a);
        let spa = spgemm_spa(&a, &a, 4);
        assert_eq!(two.stats.input_passes, 2);
        assert_eq!(spa.stats.input_passes, 1);
        assert!(
            (two.stats.bytes_read - 2.0 * spa.stats.bytes_read).abs() < 1e-6,
            "two-pass must read inputs twice"
        );
        assert_eq!(two.stats.flops, spa.stats.flops);
    }

    #[test]
    fn hash_costs_more_traffic_than_spa() {
        let a = Csr::poisson2d(12, 12);
        let spa = spgemm_spa(&a, &a, 1);
        let hash = spgemm_hash(&a, &a);
        assert!(hash.stats.bytes_read > spa.stats.bytes_read);
    }

    #[test]
    fn triple_product_galerkin_symmetry() {
        // R = P^T on a symmetric A keeps the product symmetric.
        let a = Csr::poisson1d(9);
        // Simple aggregation P: 3 fine rows per coarse column.
        let mut coo = Coo::new(9, 3);
        for f in 0..9 {
            coo.push(f, f / 3, 1.0);
        }
        let p = coo.to_csr();
        let r = p.transpose();
        let rap = triple_product(&r, &a, &p, 2).product;
        assert_eq!(rap.nrows(), 3);
        assert_eq!(rap, rap.transpose());
    }

    #[test]
    fn empty_rows_handled() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 0, 1.0);
        let a = coo.to_csr();
        let b = Csr::identity(4);
        let c = spgemm_spa(&a, &b, 3).product;
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 1.0);
    }

    #[test]
    fn chunk_count_does_not_change_result() {
        let a = random_csr(50, 50, 6, 9);
        let base = spgemm_spa(&a, &a, 1).product;
        for chunks in [2, 3, 7, 50, 64] {
            assert_eq!(spgemm_spa(&a, &a, chunks).product, base, "chunks={chunks}");
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_pools_and_shapes() {
        let a = random_csr(40, 35, 5, 11);
        let b = random_csr(35, 50, 4, 12);
        let c = random_csr(50, 40, 3, 13);
        let want_ab = spgemm_spa(&a, &b, 4);
        let want_cb = spgemm_spa(&c, &a, 2);
        let mut ws = SpaWorkspace::new();
        let mut rp = Vec::new();
        let mut ci = Vec::new();
        let mut va = Vec::new();
        for pool in [ParPool::serial(), ParPool::with_threads(4)] {
            // Same workspace across different shapes and repeated calls:
            // stale stamps/capacity must never leak into results.
            for _ in 0..3 {
                let st = spgemm_spa_reuse(&pool, &a, &b, 4, &mut ws, &mut rp, &mut ci, &mut va);
                let got = Csr::from_raw(40, 50, rp.clone(), ci.clone(), va.clone());
                assert_eq!(got, want_ab.product);
                assert_eq!(st, want_ab.stats);
                let st = spgemm_spa_reuse(&pool, &c, &a, 2, &mut ws, &mut rp, &mut ci, &mut va);
                let got = Csr::from_raw(50, 35, rp.clone(), ci.clone(), va.clone());
                assert_eq!(got, want_cb.product);
                assert_eq!(st, want_cb.stats);
            }
        }
    }

    #[test]
    fn triple_product_ws_matches_triple_product() {
        let a = Csr::poisson2d(10, 10);
        let mut coo = Coo::new(100, 25);
        for f in 0..100 {
            coo.push(f, f / 4, 1.0);
        }
        let p = coo.to_csr();
        let r = p.transpose();
        let want = triple_product(&r, &a, &p, 3);
        let mut ws = GalerkinWorkspace::new();
        for _ in 0..2 {
            let got = triple_product_ws(&r, &a, &p, 3, &mut ws);
            assert_eq!(got.product, want.product);
            assert_eq!(got.stats, want.stats);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Csr::identity(3);
        let b = Csr::identity(4);
        spgemm_spa(&a, &b, 1);
    }
}
