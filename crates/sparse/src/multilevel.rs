//! Multilevel k-way graph partitioning.
//!
//! The production coupling framework partitions unstructured meshes
//! with a multilevel graph partitioner; this module implements the
//! classic three-phase scheme:
//!
//! 1. **coarsen** — heavy-edge matching collapses vertex pairs until
//!    the graph is small;
//! 2. **initial partition** — greedy graph growing on the coarsest
//!    graph (recursively bisected for k-way);
//! 3. **uncoarsen + refine** — project the partition back up, running a
//!    Fiduccia–Mattheyses-style boundary refinement pass at every level
//!    (single-vertex moves with balance constraints).
//!
//! The tests verify the refinement actually buys edge-cut over plain
//! greedy growing while keeping balance, on meshes like the ones the
//! solvers decompose.

use crate::csr::Csr;
use crate::partition::greedy_graph_partition;

/// Parameters for the multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelConfig {
    /// Stop coarsening below this many vertices.
    pub coarse_size: usize,
    /// Maximum coarsening levels.
    pub max_levels: usize,
    /// FM refinement passes per level.
    pub refine_passes: usize,
    /// Allowed imbalance (max part weight / average), e.g. 1.05.
    pub balance: f64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarse_size: 64,
            max_levels: 12,
            refine_passes: 4,
            balance: 1.05,
        }
    }
}

/// Weighted graph used internally (vertex weights from collapsed
/// vertices, edge weights from collapsed edges).
#[derive(Debug, Clone)]
struct WGraph {
    /// Adjacency with edge weights.
    adj: Csr,
    /// Vertex weights.
    vwgt: Vec<f64>,
}

/// Partition the symmetric adjacency `adj` into `parts` parts.
/// Returns `assignment[v] = part`.
pub fn multilevel_partition(adj: &Csr, parts: usize, config: MultilevelConfig) -> Vec<usize> {
    assert!(parts >= 1);
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    let n = adj.nrows();
    if parts == 1 || n == 0 {
        return vec![0; n];
    }

    // --- coarsening ---------------------------------------------------
    let mut graphs = vec![WGraph {
        adj: adj.clone(),
        vwgt: vec![1.0; n],
    }];
    let mut maps: Vec<Vec<usize>> = Vec::new();
    while graphs.last().unwrap().adj.nrows() > config.coarse_size
        && graphs.len() < config.max_levels
    {
        let (coarse, map) = coarsen(graphs.last().unwrap());
        // Matching can stall on star graphs; stop if no real shrinkage.
        if coarse.adj.nrows() as f64 > 0.95 * graphs.last().unwrap().adj.nrows() as f64 {
            break;
        }
        maps.push(map);
        graphs.push(coarse);
    }

    // --- initial partition on the coarsest graph ----------------------
    let coarsest = graphs.last().unwrap();
    let mut assignment = greedy_graph_partition(&coarsest.adj, parts);
    balance_fix(
        &coarsest.adj,
        &coarsest.vwgt,
        &mut assignment,
        parts,
        config.balance,
    );
    refine(coarsest, &mut assignment, parts, config);

    // --- uncoarsen + refine -------------------------------------------
    for level in (0..maps.len()).rev() {
        let fine = &graphs[level];
        let map = &maps[level];
        let mut fine_assign = vec![0usize; fine.adj.nrows()];
        for (v, &cv) in map.iter().enumerate() {
            fine_assign[v] = assignment[cv];
        }
        assignment = fine_assign;
        refine(fine, &mut assignment, parts, config);
    }
    assignment
}

/// Heavy-edge matching: visit vertices in order, matching each
/// unmatched vertex with its heaviest unmatched neighbour.
fn coarsen(g: &WGraph) -> (WGraph, Vec<usize>) {
    let n = g.adj.nrows();
    const UNMATCHED: usize = usize::MAX;
    let mut mate = vec![UNMATCHED; n];
    for v in 0..n {
        if mate[v] != UNMATCHED {
            continue;
        }
        let (cols, wgts) = g.adj.row(v);
        let mut best = UNMATCHED;
        let mut best_w = 0.0;
        for (&u, &w) in cols.iter().zip(wgts) {
            if u != v && mate[u] == UNMATCHED && w > best_w {
                best = u;
                best_w = w;
            }
        }
        if best != UNMATCHED {
            mate[v] = best;
            mate[best] = v;
        } else {
            mate[v] = v; // singleton
        }
    }
    // Assign coarse ids.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0usize;
    for v in 0..n {
        if map[v] != UNMATCHED {
            continue;
        }
        map[v] = next;
        let m = mate[v];
        if m != v {
            map[m] = next;
        }
        next += 1;
    }
    // Build the coarse graph.
    let mut vwgt = vec![0.0; next];
    for v in 0..n {
        vwgt[map[v]] += g.vwgt[v];
    }
    let mut coo = crate::coo::Coo::with_capacity(next, next, g.adj.nnz());
    for v in 0..n {
        let (cols, wgts) = g.adj.row(v);
        for (&u, &w) in cols.iter().zip(wgts) {
            let (cv, cu) = (map[v], map[u]);
            if cv != cu {
                coo.push(cv, cu, w);
            }
        }
    }
    (
        WGraph {
            adj: coo.to_csr(),
            vwgt,
        },
        map,
    )
}

/// Move vertices from overweight parts to their lightest neighbour part
/// until balance holds.
fn balance_fix(adj: &Csr, vwgt: &[f64], assignment: &mut [usize], parts: usize, balance: f64) {
    let total: f64 = vwgt.iter().sum();
    let cap = total / parts as f64 * balance;
    let mut weights = vec![0.0; parts];
    for (v, &p) in assignment.iter().enumerate() {
        weights[p] += vwgt[v];
    }
    for v in 0..adj.nrows() {
        let p = assignment[v];
        if weights[p] <= cap {
            continue;
        }
        // Move to the lightest part (prefer a neighbour part).
        let (cols, _) = adj.row(v);
        let candidate = cols
            .iter()
            .map(|&u| assignment[u])
            .filter(|&q| q != p)
            .min_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
            .unwrap_or_else(|| {
                (0..parts)
                    .filter(|&q| q != p)
                    .min_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
                    .unwrap_or(p)
            });
        if candidate != p && weights[candidate] + vwgt[v] <= cap {
            weights[p] -= vwgt[v];
            weights[candidate] += vwgt[v];
            assignment[v] = candidate;
        }
    }
}

/// FM-style boundary refinement: repeatedly move the boundary vertex
/// with the best positive gain, respecting the balance constraint.
fn refine(g: &WGraph, assignment: &mut [usize], parts: usize, config: MultilevelConfig) {
    let n = g.adj.nrows();
    let total: f64 = g.vwgt.iter().sum();
    let cap = total / parts as f64 * config.balance;
    let mut weights = vec![0.0; parts];
    for (v, &p) in assignment.iter().enumerate() {
        weights[p] += g.vwgt[v];
    }
    for _ in 0..config.refine_passes {
        let mut moved = 0usize;
        for v in 0..n {
            let p = assignment[v];
            let (cols, wgts) = g.adj.row(v);
            // Connectivity to each neighbouring part.
            let mut internal = 0.0;
            let mut best: Option<(usize, f64)> = None;
            let mut ext: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for (&u, &w) in cols.iter().zip(wgts) {
                let q = assignment[u];
                if q == p {
                    internal += w;
                } else {
                    *ext.entry(q).or_insert(0.0) += w;
                }
            }
            for (&q, &w) in &ext {
                let gain = w - internal;
                if gain > 1e-12
                    && weights[q] + g.vwgt[v] <= cap
                    && best.map(|(_, bg)| gain > bg).unwrap_or(true)
                {
                    best = Some((q, gain));
                }
            }
            if let Some((q, _)) = best {
                weights[p] -= g.vwgt[v];
                weights[q] += g.vwgt[v];
                assignment[v] = q;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Edge cut of an assignment on a (possibly weighted) adjacency.
pub fn edge_cut(adj: &Csr, assignment: &[usize]) -> f64 {
    let mut cut = 0.0;
    for v in 0..adj.nrows() {
        let (cols, wgts) = adj.row(v);
        for (&u, &w) in cols.iter().zip(wgts) {
            if v < u && assignment[v] != assignment[u] {
                cut += w;
            }
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{grid_adjacency, partition_quality};

    #[test]
    fn covers_and_balances() {
        let (adj, _) = grid_adjacency(12, 12, 1);
        for parts in [2usize, 4, 6] {
            let a = multilevel_partition(&adj, parts, MultilevelConfig::default());
            assert_eq!(a.len(), 144);
            let q = partition_quality(&adj, &a, parts);
            assert!(
                q.imbalance() <= 1.25,
                "parts={parts}: imbalance {}",
                q.imbalance()
            );
            let mut seen = vec![false; parts];
            for &p in &a {
                seen[p] = true;
            }
            assert!(seen.iter().all(|&s| s), "parts={parts}: empty part");
        }
    }

    #[test]
    fn beats_plain_greedy_on_edge_cut() {
        let (adj, _) = grid_adjacency(20, 20, 1);
        let parts = 4;
        let greedy = greedy_graph_partition(&adj, parts);
        let ml = multilevel_partition(&adj, parts, MultilevelConfig::default());
        let cut_greedy = edge_cut(&adj, &greedy);
        let cut_ml = edge_cut(&adj, &ml);
        assert!(
            cut_ml <= cut_greedy,
            "multilevel {cut_ml} vs greedy {cut_greedy}"
        );
    }

    #[test]
    fn near_optimal_bisection_of_a_grid() {
        // The optimal bisection of a 16x16 grid cuts 16 edges; allow a
        // modest factor.
        let (adj, _) = grid_adjacency(16, 16, 1);
        let a = multilevel_partition(&adj, 2, MultilevelConfig::default());
        let cut = edge_cut(&adj, &a);
        assert!(cut <= 2.0 * 16.0, "bisection cut {cut} (optimal 16)");
    }

    #[test]
    fn single_part_trivial() {
        let (adj, _) = grid_adjacency(4, 4, 1);
        let a = multilevel_partition(&adj, 1, MultilevelConfig::default());
        assert!(a.iter().all(|&p| p == 0));
    }

    #[test]
    fn handles_disconnected_graph() {
        let adj = Csr::zeros(10, 10);
        let a = multilevel_partition(&adj, 3, MultilevelConfig::default());
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&p| p < 3));
    }

    #[test]
    fn deterministic() {
        let (adj, _) = grid_adjacency(10, 14, 1);
        let a = multilevel_partition(&adj, 4, MultilevelConfig::default());
        let b = multilevel_partition(&adj, 4, MultilevelConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn refinement_respects_balance() {
        let (adj, _) = grid_adjacency(15, 15, 1);
        let cfg = MultilevelConfig {
            balance: 1.05,
            ..MultilevelConfig::default()
        };
        let a = multilevel_partition(&adj, 3, cfg);
        let q = partition_quality(&adj, &a, 3);
        assert!(q.imbalance() <= 1.3, "imbalance {}", q.imbalance());
    }

    #[test]
    fn three_d_mesh_partition() {
        let (adj, _) = grid_adjacency(8, 8, 8);
        let a = multilevel_partition(&adj, 8, MultilevelConfig::default());
        let q = partition_quality(&adj, &a, 8);
        // Surface-to-volume sanity: cut well below total edges.
        let total_edges = adj.nnz() as f64 / 2.0;
        assert!(edge_cut(&adj, &a) < 0.35 * total_edges);
        assert!(q.imbalance() < 1.3);
    }
}
