//! Kernel execution policy: layout + chunking + pool as one value.
//!
//! Every hot kernel grew a `*_with(pool, chunks, …)` variant in PR 4;
//! [`KernelPolicy`] folds that zoo into a single parameter object that
//! also selects the storage layout ([`Layout`]), so call sites in AMG,
//! pressure and the benches pick "how to run" in one place — and a
//! GPU-shaped backend can later slot in as another `Layout`/pool pair
//! without another method explosion.
//!
//! [`LayoutMatrix`] owns a [`Csr`] plus the optional prepared
//! [`SellCSigma`] views; [`MatRef`] is the cheap borrowed form that
//! solvers (PCG, AMG cycles) thread through without cloning matrices.
//! Every layout is bit-identical to serial CSR, so switching a policy
//! never changes a result byte — only wall time.

use cpx_par::ParPool;

use crate::csr::Csr;
use crate::sell::SellCSigma;
use crate::SpOpStats;

/// Storage layout for the SpMV-shaped kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Row-major CSR: one serial dot product per row.
    Csr,
    /// SELL-C-σ: slot-major chunks of `c` rows, length-sorted within
    /// windows of `sigma` rows (see [`SellCSigma`]).
    Sell { c: usize, sigma: usize },
}

impl Layout {
    /// The default SELL shape: C=16 won the measured sweep (two cache
    /// lines of accumulators, wide enough to amortize the per-slot
    /// column base, narrow enough to stay register-resident); σ=256
    /// sorts broadly enough for ragged AMG coarse operators while
    /// keeping parallel windows fine-grained.
    pub fn sell_default() -> Layout {
        Layout::Sell { c: 16, sigma: 256 }
    }
}

/// How a kernel call should execute: storage layout, work partitions,
/// and the pool that runs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPolicy {
    pub layout: Layout,
    /// Work partitions for parallel kernels (the determinism-bearing
    /// chunk count; results are keyed to it, never to thread count).
    pub chunks: usize,
    pub pool: ParPool,
}

impl KernelPolicy {
    /// Serial CSR — the reference policy every other one must match
    /// bit-for-bit.
    pub fn serial() -> KernelPolicy {
        KernelPolicy {
            layout: Layout::Csr,
            chunks: 1,
            pool: ParPool::serial(),
        }
    }

    /// CSR on the global pool (`CPX_THREADS`), one chunk per worker —
    /// the behaviour of the pre-policy `spmv`/`smooth` entry points.
    pub fn current() -> KernelPolicy {
        let pool = ParPool::current();
        KernelPolicy {
            layout: Layout::Csr,
            chunks: pool.chunks().max(1),
            pool,
        }
    }

    /// The default SELL-C-σ policy on the global pool.
    pub fn sell() -> KernelPolicy {
        KernelPolicy {
            layout: Layout::sell_default(),
            ..KernelPolicy::current()
        }
    }

    /// This policy with a different layout.
    pub fn with_layout(self, layout: Layout) -> KernelPolicy {
        KernelPolicy { layout, ..self }
    }

    /// This policy with an explicit pool and matching chunk count.
    pub fn with_pool(self, pool: ParPool) -> KernelPolicy {
        KernelPolicy {
            chunks: pool.chunks().max(1),
            pool,
            ..self
        }
    }

    /// The pool to actually run `work_units` on: granularity- and
    /// hardware-limited so tiny problems take the serial fast path.
    pub fn pool_for(&self, work_units: usize) -> ParPool {
        self.pool.limited(work_units)
    }
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy::current()
    }
}

/// A [`Csr`] with optional prepared alternative-layout views. The CSR
/// stays the source of truth (SpGEMM, smoothers and structural queries
/// read it); prepared views accelerate the SpMV-shaped kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutMatrix {
    csr: Csr,
    sell: Option<SellCSigma>,
    /// `(k, tail)` for identity-top operators: SELL over rows `k..`.
    sell_tail: Option<(usize, SellCSigma)>,
}

impl LayoutMatrix {
    /// Wrap a CSR, preparing the views the policy's layout needs.
    pub fn new(csr: Csr, policy: &KernelPolicy) -> LayoutMatrix {
        let sell = match policy.layout {
            Layout::Csr => None,
            Layout::Sell { c, sigma } => Some(SellCSigma::from_csr(&csr, c, sigma)),
        };
        LayoutMatrix {
            csr,
            sell,
            sell_tail: None,
        }
    }

    /// Wrap a CSR with no prepared views (plain CSR dispatch).
    pub fn csr_only(csr: Csr) -> LayoutMatrix {
        LayoutMatrix {
            csr,
            sell: None,
            sell_tail: None,
        }
    }

    /// Additionally prepare the tail view for
    /// [`MatRef::spmv_identity_top_p`] with this `k`.
    pub fn prepare_identity_top(&mut self, k: usize, policy: &KernelPolicy) {
        if let Layout::Sell { c, sigma } = policy.layout {
            self.sell_tail = Some((k, SellCSigma::from_csr_tail(&self.csr, k, c, sigma)));
        }
    }

    /// The underlying CSR.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The prepared SELL view, if any.
    #[inline]
    pub fn sell(&self) -> Option<&SellCSigma> {
        self.sell.as_ref()
    }

    /// Take the CSR back out (drops the prepared views).
    pub fn into_csr(self) -> Csr {
        self.csr
    }

    /// Borrowed view for kernel dispatch.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            csr: &self.csr,
            sell: self.sell.as_ref(),
            sell_tail: self.sell_tail.as_ref().map(|(k, s)| (*k, s)),
        }
    }

    /// Policy-dispatched `y = A x` (see [`MatRef::spmv_p`]).
    pub fn spmv_p(&self, policy: &KernelPolicy, x: &[f64], y: &mut [f64]) -> SpOpStats {
        self.as_ref().spmv_p(policy, x, y)
    }
}

/// A borrowed matrix view that dispatches kernels by [`KernelPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    csr: &'a Csr,
    sell: Option<&'a SellCSigma>,
    sell_tail: Option<(usize, &'a SellCSigma)>,
}

impl<'a> MatRef<'a> {
    /// A plain CSR view (always valid; dispatches every policy's
    /// layout to CSR).
    pub fn from_csr(csr: &'a Csr) -> MatRef<'a> {
        MatRef {
            csr,
            sell: None,
            sell_tail: None,
        }
    }

    /// A CSR view with an optional prepared SELL companion (e.g. an
    /// AMG level that prepared its operator at build time).
    pub fn with_sell(csr: &'a Csr, sell: Option<&'a SellCSigma>) -> MatRef<'a> {
        MatRef {
            csr,
            sell,
            sell_tail: None,
        }
    }

    /// The underlying CSR.
    #[inline]
    pub fn csr(&self) -> &'a Csr {
        self.csr
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    /// `y = A x` dispatched by policy. A SELL layout request without a
    /// prepared view falls back to CSR — same bits either way.
    ///
    /// Always reports the **CSR-modelled** [`SpOpStats`]: the modelled
    /// cost is part of the frozen virtual-time contract, so switching a
    /// layout changes wall time only, never a trace. The layout's true
    /// footprint is available via [`SellCSigma::spmv_stats`] for
    /// roofline studies.
    pub fn spmv_p(&self, policy: &KernelPolicy, x: &[f64], y: &mut [f64]) -> SpOpStats {
        let pool = policy.pool_for(self.nnz());
        match (policy.layout, self.sell) {
            (Layout::Sell { .. }, Some(sell)) => {
                sell.spmv_with(&pool, policy.chunks, x, y);
                self.csr.spmv_stats()
            }
            _ => self.csr.spmv_with(&pool, policy.chunks, x, y),
        }
    }

    /// Identity-top SpMV dispatched by policy: the top `k` rows are a
    /// serial copy, the tail uses the prepared tail view when its `k`
    /// matches (else the CSR tail loop).
    pub fn spmv_identity_top_p(
        &self,
        policy: &KernelPolicy,
        k: usize,
        x: &[f64],
        y: &mut [f64],
    ) -> SpOpStats {
        match (policy.layout, self.sell_tail) {
            (Layout::Sell { .. }, Some((tk, tail))) if tk == k => {
                assert!(k <= self.csr.nrows());
                assert_eq!(x.len(), self.csr.ncols());
                assert_eq!(y.len(), self.csr.nrows());
                y[..k].copy_from_slice(&x[..k]);
                let pool = policy.pool_for(tail.nnz());
                tail.spmv_with(&pool, policy.chunks, x, &mut y[k..]);
                // Report the CSR identity-top stats: the modelled
                // formula is the paper's §IV-B accounting and must not
                // drift with the layout choice.
                self.csr.spmv_identity_top_stats(k)
            }
            _ => {
                let pool = policy.pool_for(self.nnz());
                self.csr
                    .spmv_identity_top_with(&pool, policy.chunks, k, x, y)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_are_bit_identical_across_layouts() {
        let a = Csr::poisson3d(9, 8, 7);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut want = vec![0.0; a.nrows()];
        a.spmv_with(&ParPool::serial(), 1, &x, &mut want);
        for policy in [
            KernelPolicy::serial(),
            KernelPolicy::current(),
            KernelPolicy::sell(),
            KernelPolicy::serial().with_layout(Layout::Sell { c: 3, sigma: 17 }),
            KernelPolicy::sell().with_pool(ParPool::with_threads(4)),
        ] {
            let m = LayoutMatrix::new(a.clone(), &policy);
            let mut y = vec![f64::NAN; a.nrows()];
            let stats = m.spmv_p(&policy, &x, &mut y);
            assert_eq!(y, want, "policy {policy:?}");
            assert_eq!(stats, a.spmv_stats(), "modelled stats drift: {policy:?}");
        }
    }

    #[test]
    fn sell_policy_prepares_view_and_csr_policy_does_not() {
        let a = Csr::poisson2d(8, 8);
        assert!(LayoutMatrix::new(a.clone(), &KernelPolicy::sell())
            .sell()
            .is_some());
        assert!(LayoutMatrix::new(a, &KernelPolicy::current())
            .sell()
            .is_none());
    }

    #[test]
    fn identity_top_dispatch_matches_csr_and_reports_same_stats() {
        // [I; B]-shaped operator.
        let mut coo = crate::coo::Coo::new(40, 20);
        for i in 0..20 {
            coo.push(i, i, 1.0);
        }
        for i in 20..40 {
            coo.push(i, i % 20, 0.5);
            coo.push(i, (i + 7) % 20, 0.25);
        }
        let a = coo.to_csr();
        let k = 20;
        let x: Vec<f64> = (0..20).map(|i| i as f64 - 9.5).collect();
        let mut want = vec![0.0; 40];
        let want_stats = a.spmv_identity_top(k, &x, &mut want);

        let policy = KernelPolicy::sell();
        let mut m = LayoutMatrix::new(a, &policy);
        m.prepare_identity_top(k, &policy);
        let mut y = vec![f64::NAN; 40];
        let stats = m.as_ref().spmv_identity_top_p(&policy, k, &x, &mut y);
        assert_eq!(y, want);
        assert_eq!(stats, want_stats, "modelled stats must not drift by layout");

        // Mismatched k falls back to the CSR tail loop, still correct.
        let mut want10 = vec![0.0; 40];
        m.csr().spmv_identity_top(10, &x, &mut want10);
        let mut y10 = vec![f64::NAN; 40];
        m.as_ref().spmv_identity_top_p(&policy, 10, &x, &mut y10);
        assert_eq!(y10, want10);
    }
}
