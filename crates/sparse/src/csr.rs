//! Compressed sparse row matrices.

use cpx_par::ParPool;

use crate::coo::Coo;
use crate::SpOpStats;

/// A CSR matrix with sorted, unique column indices per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Construct from raw arrays. Debug-asserts the CSR invariants; use
    /// [`Csr::validate`] for a checked verdict.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        let m = Csr {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        };
        debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
        m
    }

    /// Decompose into the raw `(rowptr, colidx, vals)` arrays, giving
    /// their capacity back to the caller (workspace reuse for the
    /// Galerkin rebuild path).
    pub fn into_raw(self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        (self.rowptr, self.colidx, self.vals)
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// An `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Check the CSR structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.rowptr.len() != self.nrows + 1 {
            return Err(format!(
                "rowptr length {} != nrows+1 {}",
                self.rowptr.len(),
                self.nrows + 1
            ));
        }
        if self.rowptr[0] != 0 {
            return Err("rowptr[0] != 0".into());
        }
        if *self.rowptr.last().unwrap() != self.colidx.len() {
            return Err("rowptr[last] != nnz".into());
        }
        if self.colidx.len() != self.vals.len() {
            return Err("colidx and vals length mismatch".into());
        }
        for r in 0..self.nrows {
            if self.rowptr[r] > self.rowptr[r + 1] {
                return Err(format!("rowptr decreasing at row {r}"));
            }
            let cols = &self.colidx[self.rowptr[r]..self.rowptr[r + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r}: columns not strictly increasing"));
                }
            }
            if let Some(&c) = cols.last() {
                if c >= self.ncols {
                    return Err(format!("row {r}: column {c} out of range {}", self.ncols));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array.
    #[inline]
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// Value array.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable value array (structure stays fixed).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// The `(columns, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.rowptr[r], self.rowptr[r + 1]);
        (&self.colidx[s..e], &self.vals[s..e])
    }

    /// Entry `(r, c)`, zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// The diagonal, zero-filled where absent.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// `y = A x`. Returns the op statistics of the kernel.
    ///
    /// Runs on the global [`ParPool`] (`CPX_THREADS`), partitioned by
    /// row ranges. Each row is an independent dot product written to
    /// its own output slot, so the result is bit-identical at any
    /// thread count.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> SpOpStats {
        let pool = ParPool::current().limited(self.nnz());
        self.spmv_with(&pool, pool.chunks(), x, y)
    }

    /// [`Csr::spmv`] on an explicit pool with an explicit row-range
    /// chunk count (0 clamps to 1; counts beyond `nrows` leave trailing
    /// chunks empty).
    pub fn spmv_with(&self, pool: &ParPool, chunks: usize, x: &[f64], y: &mut [f64]) -> SpOpStats {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        pool.chunks_mut(y, chunks, |_, rows, y_chunk| {
            for (yi, r) in y_chunk.iter_mut().zip(rows) {
                let (cols, vals) = self.row(r);
                let mut acc = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * x[c];
                }
                *yi = acc;
            }
        });
        self.spmv_stats()
    }

    /// Op statistics a single SpMV incurs (used for cost modelling
    /// without executing).
    pub fn spmv_stats(&self) -> SpOpStats {
        let nnz = self.nnz() as f64;
        SpOpStats {
            flops: 2.0 * nnz,
            // vals + colidx + x gather + rowptr + y write
            bytes_read: nnz * (8.0 + 8.0 + 8.0) + self.nrows as f64 * 8.0,
            bytes_written: self.nrows as f64 * 8.0,
            input_passes: 1,
        }
    }

    /// SpMV for operators whose top `k` rows form an identity block
    /// (reordered interpolation/restriction, §IV-B): the identity rows
    /// are a copy, saving their flops and matrix reads.
    pub fn spmv_identity_top(&self, k: usize, x: &[f64], y: &mut [f64]) -> SpOpStats {
        let pool = ParPool::current().limited(self.nnz());
        self.spmv_identity_top_with(&pool, pool.chunks(), k, x, y)
    }

    /// [`Csr::spmv_identity_top`] on an explicit pool: the identity top
    /// is a serial `memcpy`, the tail rows are chunk-partitioned.
    pub fn spmv_identity_top_with(
        &self,
        pool: &ParPool,
        chunks: usize,
        k: usize,
        x: &[f64],
        y: &mut [f64],
    ) -> SpOpStats {
        assert!(k <= self.nrows);
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y[..k].copy_from_slice(&x[..k]);
        let (_, y_tail) = y.split_at_mut(k);
        pool.chunks_mut(y_tail, chunks, |_, rows, y_chunk| {
            for (yi, rr) in y_chunk.iter_mut().zip(rows) {
                let (cols, vals) = self.row(k + rr);
                let mut acc = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * x[c];
                }
                *yi = acc;
            }
        });
        self.spmv_identity_top_stats(k)
    }

    /// Op statistics of one identity-top SpMV (the §IV-B accounting:
    /// the identity rows cost only the copy, the tail a full SpMV).
    pub fn spmv_identity_top_stats(&self, k: usize) -> SpOpStats {
        let tail_nnz = self.rowptr[self.nrows] - self.rowptr[k];
        SpOpStats {
            flops: 2.0 * tail_nnz as f64,
            bytes_read: tail_nnz as f64 * 24.0 + (self.nrows - k) as f64 * 8.0 + k as f64 * 8.0,
            bytes_written: self.nrows as f64 * 8.0,
            input_passes: 1,
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let rowptr = counts.clone();
        let mut next = counts;
        let mut colidx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        for r in 0..self.nrows {
            let (cols, vs) = self.row(r);
            for (&c, &v) in cols.iter().zip(vs) {
                let slot = next[c];
                colidx[slot] = r;
                vals[slot] = v;
                next[c] += 1;
            }
        }
        Csr::from_raw(self.ncols, self.nrows, rowptr, colidx, vals)
    }

    /// Scale all values by `k`.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.vals {
            *v *= k;
        }
    }

    /// `A + B` (same shape).
    pub fn add(&self, other: &Csr) -> Csr {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz() + other.nnz());
        for m in [self, other] {
            for r in 0..m.nrows {
                let (cols, vals) = m.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    coo.push(r, c, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Dense representation (tests only; quadratic memory).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                d[r][c] = v;
            }
        }
        d
    }

    /// Extract the submatrix with the given rows and columns (both maps
    /// are old-index lists; used by partitioners and AMG).
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Csr {
        let mut col_map = vec![usize::MAX; self.ncols];
        for (new, &old) in cols.iter().enumerate() {
            col_map[old] = new;
        }
        let mut coo = Coo::new(rows.len(), cols.len());
        for (new_r, &old_r) in rows.iter().enumerate() {
            let (cs, vs) = self.row(old_r);
            for (&c, &v) in cs.iter().zip(vs) {
                if col_map[c] != usize::MAX {
                    coo.push(new_r, col_map[c], v);
                }
            }
        }
        coo.to_csr()
    }

    /// Infinity norm of `A x - b` (convergence checks).
    pub fn residual_inf(&self, x: &[f64], b: &[f64]) -> f64 {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y.iter()
            .zip(b)
            .map(|(yi, bi)| (yi - bi).abs())
            .fold(0.0, f64::max)
    }

    /// The standard 1-D Poisson (tridiagonal `[-1, 2, -1]`) test matrix.
    pub fn poisson1d(n: usize) -> Csr {
        let mut coo = Coo::with_capacity(n, n, 3 * n);
        for i in 0..n {
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    /// The standard 2-D 5-point Poisson matrix on an `nx × ny` grid.
    pub fn poisson2d(nx: usize, ny: usize) -> Csr {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut coo = Coo::with_capacity(n, n, 5 * n);
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                coo.push(me, me, 4.0);
                if i > 0 {
                    coo.push(me, idx(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    coo.push(me, idx(i + 1, j), -1.0);
                }
                if j > 0 {
                    coo.push(me, idx(i, j - 1), -1.0);
                }
                if j + 1 < ny {
                    coo.push(me, idx(i, j + 1), -1.0);
                }
            }
        }
        coo.to_csr()
    }

    /// The 3-D 7-point Poisson matrix on an `nx × ny × nz` grid.
    pub fn poisson3d(nx: usize, ny: usize, nz: usize) -> Csr {
        let n = nx * ny * nz;
        let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
        let mut coo = Coo::with_capacity(n, n, 7 * n);
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let me = idx(i, j, k);
                    coo.push(me, me, 6.0);
                    if i > 0 {
                        coo.push(me, idx(i - 1, j, k), -1.0);
                    }
                    if i + 1 < nx {
                        coo.push(me, idx(i + 1, j, k), -1.0);
                    }
                    if j > 0 {
                        coo.push(me, idx(i, j - 1, k), -1.0);
                    }
                    if j + 1 < ny {
                        coo.push(me, idx(i, j + 1, k), -1.0);
                    }
                    if k > 0 {
                        coo.push(me, idx(i, j, k - 1), -1.0);
                    }
                    if k + 1 < nz {
                        coo.push(me, idx(i, j, k + 1), -1.0);
                    }
                }
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_spmv() {
        let a = Csr::identity(5);
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let mut y = vec![0.0; 5];
        a.spmv(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn poisson1d_structure() {
        let a = Csr::poisson1d(4);
        assert_eq!(a.nnz(), 10);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 3), 0.0);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn poisson2d_row_sums() {
        // Interior rows sum to 0, boundary rows positive.
        let a = Csr::poisson2d(4, 4);
        let idx = |i: usize, j: usize| i * 4 + j;
        let interior = idx(1, 1);
        let (_, vals) = a.row(interior);
        assert_eq!(vals.iter().sum::<f64>(), 0.0);
        let corner = idx(0, 0);
        let (_, vals) = a.row(corner);
        assert!(vals.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn poisson3d_symmetric() {
        let a = Csr::poisson3d(3, 3, 3);
        let at = a.transpose();
        assert_eq!(a, at);
    }

    #[test]
    fn transpose_involution() {
        let mut coo = Coo::new(3, 5);
        coo.push(0, 4, 1.0);
        coo.push(2, 1, -2.0);
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = Csr::poisson2d(3, 3);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; 9];
        a.spmv(&x, &mut y);
        let d = a.to_dense();
        for r in 0..9 {
            let want: f64 = d[r].iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((y[r] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_identity_top_matches_plain() {
        // Build [I; B] style operator.
        let mut coo = Coo::new(4, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 0, 0.5);
        coo.push(2, 1, 0.5);
        coo.push(3, 0, 0.25);
        let a = coo.to_csr();
        let x = vec![2.0, 4.0];
        let mut y1 = vec![0.0; 4];
        let mut y2 = vec![0.0; 4];
        let full = a.spmv(&x, &mut y1);
        let opt = a.spmv_identity_top(2, &x, &mut y2);
        assert_eq!(y1, y2);
        assert!(opt.flops < full.flops, "identity-top must save flops");
    }

    #[test]
    fn add_matrices() {
        let a = Csr::identity(3);
        let mut b = Csr::identity(3);
        b.scale(2.0);
        let c = a.add(&b);
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn diag_extraction() {
        let a = Csr::poisson1d(3);
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn submatrix_extraction() {
        let a = Csr::poisson1d(5);
        let s = a.submatrix(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(0, 1), -1.0);
        assert_eq!(s.get(2, 1), -1.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Csr::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.residual_inf(&x, &x), 0.0);
    }

    #[test]
    fn validate_catches_unsorted_columns() {
        let bad = Csr {
            nrows: 1,
            ncols: 3,
            rowptr: vec![0, 2],
            colidx: vec![2, 0],
            vals: vec![1.0, 1.0],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_range_column() {
        let bad = Csr {
            nrows: 1,
            ncols: 2,
            rowptr: vec![0, 1],
            colidx: vec![5],
            vals: vec![1.0],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn spmv_stats_proportional_to_nnz() {
        let small = Csr::poisson1d(10).spmv_stats();
        let large = Csr::poisson1d(100).spmv_stats();
        assert!(large.flops > 9.0 * small.flops);
        assert!(large.bytes() > 9.0 * small.bytes());
    }
}
