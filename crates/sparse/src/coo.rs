//! Coordinate-format matrix builder.

use crate::csr::Csr;

/// A matrix under construction as `(row, col, value)` triplets.
/// Duplicate entries are summed on conversion to CSR.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// An empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// With pre-reserved triplet capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of triplets pushed so far (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Add `value` at `(row, col)`; duplicates accumulate.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows, "row {row} out of {}", self.nrows);
        debug_assert!(col < self.ncols, "col {col} out of {}", self.ncols);
        self.entries.push((row, col, value));
    }

    /// Convert to CSR, summing duplicate `(row, col)` entries.
    pub fn to_csr(&self) -> Csr {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        let mut colidx = Vec::with_capacity(entries.len());
        let mut vals = Vec::with_capacity(entries.len());
        rowptr.push(0);
        let mut row = 0usize;
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                *vals.last_mut().expect("duplicate implies prior entry") += v;
                continue;
            }
            while row < r {
                rowptr.push(colidx.len());
                row += 1;
            }
            colidx.push(c);
            vals.push(v);
            last = Some((r, c));
        }
        while row < self.nrows {
            rowptr.push(colidx.len());
            row += 1;
        }
        Csr::from_raw(self.nrows, self.ncols, rowptr, colidx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple() {
        let mut coo = Coo::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 2.0);
        coo.push(0, 2, 3.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 2), 3.0);
        assert_eq!(csr.get(1, 2), 2.0);
        assert_eq!(csr.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_sum() {
        let mut coo = Coo::new(1, 1);
        coo.push(0, 0, 1.5);
        coo.push(0, 0, 2.5);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 4.0);
    }

    #[test]
    fn empty_rows_kept() {
        let mut coo = Coo::new(4, 4);
        coo.push(3, 1, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 4);
        assert_eq!(csr.row(0).0.len(), 0);
        assert_eq!(csr.row(3).0, &[1]);
    }

    #[test]
    fn fully_empty_matrix() {
        let coo = Coo::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert!(csr.validate().is_ok());
    }
}
