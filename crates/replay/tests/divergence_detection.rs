//! End-to-end divergence detection: record a real run, tamper with the
//! recorded trace (or change the run), and assert the verifier reports
//! the exact first diverging event with the right expected/observed
//! kinds.

use cpx_comm::{FaultPlan, ReduceOp, World};
use cpx_machine::{KernelCost, Machine};
use cpx_replay::{generate, verify, ReplayEvent, Trace};

/// A small lossy exchange, parameterised by fault-plan seed so tests
/// can model "same scenario, different randomness".
fn lossy_run(seed: u64) -> Vec<ReplayEvent> {
    let n = 4usize;
    let world = World::new(Machine::archer2());
    let plan = FaultPlan::new(seed)
        .with_drop_prob(0.25)
        .with_dup_prob(0.15)
        .with_delay(0.2, 2e-6);
    let (_, log) = world.run_with_plan_logged(n, plan, move |ctx| {
        let me = ctx.rank();
        ctx.compute(KernelCost::flops(2e7 * (me + 1) as f64));
        for round in 0..4u32 {
            ctx.send((me + 1) % n, round, vec![me as f64; 32]);
            let _ = ctx.recv((me + n - 1) % n, round);
        }
        let g = ctx.world();
        g.allreduce_scalar(ctx, ReduceOp::Sum, ctx.rank() as f64)
    });
    log.into_iter().map(ReplayEvent::from).collect()
}

#[test]
fn faithful_replay_verifies_clean() {
    let recorded = lossy_run(42);
    let replayed = lossy_run(42);
    assert!(!recorded.is_empty());
    assert_eq!(verify(&recorded, &replayed), Ok(()));
}

#[test]
fn swapped_events_name_the_first_swapped_index() {
    let recorded = lossy_run(42);
    // Find two adjacent *different* events to swap.
    let i = (0..recorded.len() - 1)
        .find(|&i| recorded[i] != recorded[i + 1])
        .expect("a heterogeneous event pair exists");
    let mut tampered = recorded.clone();
    tampered.swap(i, i + 1);
    let err = verify(&tampered, &recorded).unwrap_err();
    assert_eq!(err.index, i);
    // The verifier sees the tampered stream as "expected" (the trace)
    // and the true stream as "observed".
    assert_eq!(err.expected, Some(tampered[i]));
    assert_eq!(err.observed, Some(recorded[i]));
    let msg = err.to_string();
    assert!(msg.contains(&format!("event {i}")), "{msg}");
    assert!(msg.contains("expected"), "{msg}");
    assert!(msg.contains("got"), "{msg}");
}

#[test]
fn altered_fault_draw_is_a_divergence() {
    let recorded = lossy_run(42);
    // Flip one recorded fault draw: a dropped send becomes clean.
    let idx = recorded
        .iter()
        .position(|e| matches!(e, ReplayEvent::CommSend { dropped: true, .. }))
        .expect("the lossy plan drops at least one message");
    let mut tampered = recorded.clone();
    if let ReplayEvent::CommSend { dropped, .. } = &mut tampered[idx] {
        *dropped = false;
    }
    let err = verify(&tampered, &recorded).unwrap_err();
    assert_eq!(err.index, idx);
    // The observed (true) event carries the dropped flag; the tampered
    // expectation does not.
    let msg = err.to_string();
    assert!(msg.contains("got CommSend{"), "{msg}");
    assert!(msg.contains("dropped"), "{msg}");
}

#[test]
fn different_seed_diverges_like_a_modified_kernel() {
    // Same scenario, different fault randomness — the stand-in for "the
    // code under replay changed behaviour": strict verification fails.
    let recorded = lossy_run(42);
    let changed = lossy_run(43);
    assert!(verify(&recorded, &changed).is_err());
}

#[test]
fn trace_mutation_survives_serialization() {
    // Tamper at the container level (decode → mutate → re-encode) and
    // verify the divergence is still caught after a round-trip, i.e.
    // detection does not depend on in-memory state.
    let events = lossy_run(7);
    let trace = Trace {
        label: "tamper".to_string(),
        seed: 7,
        world_size: 4,
        events: events.clone(),
    };
    let mut loaded = Trace::from_bytes(&trace.to_bytes()).unwrap();
    let i = (0..loaded.events.len() - 1)
        .find(|&i| loaded.events[i] != loaded.events[i + 1])
        .unwrap();
    loaded.events.swap(i, i + 1);
    let reloaded = Trace::from_bytes(&loaded.to_bytes()).unwrap();
    let err = verify(&reloaded.events, &events).unwrap_err();
    assert_eq!(err.index, i);
}

#[test]
fn golden_scenario_replays_byte_for_byte() {
    // The acceptance criterion end-to-end: record a golden scenario,
    // serialize, reload, regenerate, and match everything exactly.
    let first = generate("lossy_faultplan").unwrap();
    let bytes = first.trace.to_bytes();
    let loaded = Trace::from_bytes(&bytes).unwrap();
    let second = generate("lossy_faultplan").unwrap();
    assert_eq!(verify(&loaded.events, &second.trace.events), Ok(()));
    assert_eq!(bytes, second.trace.to_bytes());
    assert_eq!(first.report, second.report);
    assert_eq!(first.bench, second.bench);
}
