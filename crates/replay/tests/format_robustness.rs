//! Trace-format robustness: random traces round-trip exactly, and no
//! hostile input — truncation, bit flips, unknown versions, garbage —
//! ever panics or misparses; everything maps to a typed [`TraceError`].

use proptest::prelude::*;

use cpx_comm::CollectiveOp;
use cpx_machine::CollectiveKind;
use cpx_replay::{ReplayEvent, Trace, TraceError, SCHEMA_VERSION};

/// Build one event from plain random draws (`kind` selects the
/// variant; the integer/float fields are reused per variant).
fn make_event(kind: u8, a: u64, b: u64, c: u64, flags: u8, t: f64) -> ReplayEvent {
    let kinds = [
        CollectiveKind::Barrier,
        CollectiveKind::Broadcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Allgather,
        CollectiveKind::Alltoall,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
    ];
    let ops = [
        CollectiveOp::Bcast,
        CollectiveOp::Reduce,
        CollectiveOp::Allreduce,
        CollectiveOp::Barrier,
        CollectiveOp::Gather,
        CollectiveOp::Allgather,
        CollectiveOp::Alltoallv,
    ];
    let sites = [
        cpx_core::SdcSite::SparseKernel,
        cpx_core::SdcSite::HaloExchange,
        cpx_core::SdcSite::CommPayload,
        cpx_core::SdcSite::PhysicsInvariant,
        cpx_core::SdcSite::SolverCycle,
    ];
    match kind % 20 {
        0 => ReplayEvent::Send {
            rank: a,
            dst: b,
            tag: c,
            bytes: c.wrapping_mul(8),
            vtime: t,
        },
        1 => ReplayEvent::Recv {
            rank: a,
            src: b,
            tag: c,
            vtime: t,
        },
        2 => ReplayEvent::Collective {
            rank: a,
            kind: kinds[(b % 8) as usize],
            group: c,
            vtime: t,
        },
        3 => ReplayEvent::Finish { rank: a, vtime: t },
        4 => ReplayEvent::CommSend {
            rank: a,
            dst: b,
            tag: c,
            seq: c.wrapping_add(1),
            dropped: flags & 1 != 0,
            duplicated: flags & 2 != 0,
            corrupted: flags & 4 != 0,
            vtime: t,
        },
        5 => ReplayEvent::CommRecv {
            rank: a,
            src: b,
            tag: c,
            vtime: t,
        },
        6 => ReplayEvent::CommRecvCorrupt {
            rank: a,
            src: b,
            tag: c,
            vtime: t,
        },
        7 => ReplayEvent::CommBackoff {
            rank: a,
            attempt: b,
            vtime: t,
        },
        8 => ReplayEvent::CommPeerDead {
            rank: a,
            peer: b,
            vtime: t,
        },
        9 => ReplayEvent::CommTimeout {
            rank: a,
            src: b,
            vtime: t,
        },
        10 => ReplayEvent::CommCollective {
            rank: a,
            op: ops[(b % 7) as usize],
            vtime: t,
        },
        11 => ReplayEvent::CommCrash { rank: a, vtime: t },
        12 => ReplayEvent::CommAbort { rank: a, vtime: t },
        13 => ReplayEvent::StaleExchange { iter: a, cu: b },
        14 => ReplayEvent::Checkpoint { iter: a },
        15 => ReplayEvent::Crash {
            app: a,
            iter: b,
            vtime: t,
        },
        16 => ReplayEvent::Rollback { to_iter: a },
        17 => ReplayEvent::Shrink {
            app: a,
            ranks_after: b,
        },
        18 => ReplayEvent::SdcDetected {
            iter: a,
            site: sites[(b % 5) as usize],
        },
        _ => ReplayEvent::SdcRecovered { iter: a, cost: t },
    }
}

fn event_strategy() -> impl proptest::strategy::Strategy<Value = ReplayEvent> {
    (
        0u8..20,
        0u64..1_000,
        0u64..1_000,
        0u64..100_000,
        0u8..8,
        0.0f64..1.0e3,
    )
        .prop_map(|(kind, a, b, c, flags, t)| make_event(kind, a, b, c, flags, t))
}

fn trace_strategy() -> impl proptest::strategy::Strategy<Value = Trace> {
    (
        0u64..u64::MAX,
        0u32..4096,
        proptest::collection::vec(event_strategy(), 0..40),
    )
        .prop_map(|(seed, world_size, events)| Trace {
            label: "prop".to_string(),
            seed,
            world_size,
            events,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_traces_round_trip(trace in trace_strategy()) {
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn truncation_is_always_a_typed_error(trace in trace_strategy(), frac in 0.0f64..1.0) {
        let bytes = trace.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        // Cutting anywhere strictly before the end must fail typed, not
        // panic or return a silently shorter trace.
        if cut < bytes.len() {
            prop_assert!(Trace::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corrupted_record_bytes_are_rejected(
        trace in trace_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // Corrupt only the record region (everything after the header);
        // the header's label/seed fields are identity, not integrity.
        if !trace.events.is_empty() {
            let bytes = trace.to_bytes();
            let header_len = Trace {
                label: trace.label.clone(),
                seed: trace.seed,
                world_size: trace.world_size,
                events: vec![],
            }
            .to_bytes()
            .len();
            let span = bytes.len() - header_len;
            let pos = header_len + ((span as f64) * pos_frac) as usize;
            let pos = pos.min(bytes.len() - 1);
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 << bit;
            prop_assert!(
                Trace::from_bytes(&corrupted).is_err(),
                "flip at {pos} (header {header_len}, len {}) parsed",
                bytes.len()
            );
        }
    }

    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(0u16..256, 0..256)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()))
    {
        // Arbitrary bytes: any result is fine, panicking is not.
        let _ = Trace::from_bytes(&data);
    }
}

#[test]
fn unknown_schema_version_is_typed_not_panic() {
    let trace = Trace {
        label: "v".to_string(),
        seed: 1,
        world_size: 2,
        events: vec![ReplayEvent::Checkpoint { iter: 5 }],
    };
    let mut bytes = trace.to_bytes();
    bytes[4..8].copy_from_slice(&(SCHEMA_VERSION + 7).to_le_bytes());
    assert_eq!(
        Trace::from_bytes(&bytes),
        Err(TraceError::UnsupportedVersion {
            found: SCHEMA_VERSION + 7,
            supported: SCHEMA_VERSION
        })
    );
}

#[test]
fn trailing_garbage_is_rejected() {
    let trace = Trace {
        label: "t".to_string(),
        seed: 1,
        world_size: 2,
        events: vec![ReplayEvent::Rollback { to_iter: 3 }],
    };
    let mut bytes = trace.to_bytes();
    bytes.push(0xEE);
    assert!(matches!(
        Trace::from_bytes(&bytes),
        Err(TraceError::Malformed { .. })
    ));
}
