//! Child-process plumbing shared by the multi-process binaries
//! (`multiproc_smoke`, `chaos_study`): re-exec spawning, bounded waits
//! and the seeded hash the chaos harness schedules its kills with.
//!
//! The launch model mirrors `mpirun` without a daemon: the parent
//! re-executes its own binary once per node with a `--current-node`
//! selector, every child receives the *same* cluster parameters, and
//! the parent merges per-node result files afterwards. Nothing here
//! touches the virtual-time world — it is pure OS-process management.

use std::io;
use std::path::Path;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Re-exec the current binary as one node of a distributed run.
///
/// `exe` is the parent's own path ([`std::env::current_exe`]); `args`
/// carry the node selector and shared cluster parameters. The child
/// inherits stderr (so failures surface in CI logs) and keeps stdout to
/// itself — parents report merged results on their own stdout.
pub fn spawn_node(exe: &Path, args: &[String]) -> io::Result<Child> {
    Command::new(exe)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
}

/// How a bounded wait on a child ended.
#[derive(Debug)]
pub enum WaitOutcome {
    /// The child exited with this status before the deadline.
    Exited(ExitStatus),
    /// The deadline passed with the child still running.
    TimedOut,
}

/// Wait for `child` until `deadline`, polling [`Child::try_wait`] —
/// the portable shape of `waitpid` with a timeout.
pub fn wait_until(child: &mut Child, deadline: Instant) -> io::Result<WaitOutcome> {
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(WaitOutcome::Exited(status));
        }
        if Instant::now() >= deadline {
            return Ok(WaitOutcome::TimedOut);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SplitMix64 finalizer: the workspace's standard seeded hash. The
/// chaos harness derives its kill schedule (victim node, kill delay)
/// from trial seeds through this, so a failing trial is reproducible
/// from its seed alone.
pub fn seed_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_mix_is_deterministic_and_spreads() {
        assert_eq!(seed_mix(1), seed_mix(1));
        assert_ne!(seed_mix(1), seed_mix(2));
        // Consecutive seeds land far apart (sanity, not a statistical claim).
        assert!(seed_mix(1).abs_diff(seed_mix(2)) > u32::MAX as u64);
    }

    #[test]
    fn wait_until_times_out_on_a_sleeper() {
        let mut child = Command::new("sleep")
            .arg("5")
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let out = wait_until(&mut child, Instant::now() + Duration::from_millis(100)).unwrap();
        assert!(matches!(out, WaitOutcome::TimedOut));
        child.kill().unwrap();
        child.wait().unwrap();
    }

    #[test]
    fn wait_until_reports_exit() {
        let mut child = Command::new("true").spawn().expect("spawn true");
        let out = wait_until(&mut child, Instant::now() + Duration::from_secs(10)).unwrap();
        match out {
            WaitOutcome::Exited(st) => assert!(st.success()),
            WaitOutcome::TimedOut => panic!("true should exit immediately"),
        }
    }
}
