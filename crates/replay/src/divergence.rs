//! Strict event-by-event verification of a replayed run against a
//! recorded trace.
//!
//! The guarantee being checked is exact: a re-run with the same seed,
//! scenario, and code must reproduce the recorded event sequence
//! bit-for-bit (timestamps included — the workspace's determinism is
//! IEEE-754-exact). The first mismatch fails fast with a structured
//! [`DivergenceError`] naming the event index, the expected and
//! observed event kinds, the rank, and the virtual timestamp, e.g.
//!
//! ```text
//! event 1041: expected Recv{src:3}, got Collective{Allreduce} (rank 7, t=3.125e-2)
//! ```

use std::fmt;

use crate::event::ReplayEvent;

/// The replayed run departed from the recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceError {
    /// Zero-based index of the first mismatching event.
    pub index: usize,
    /// What the trace recorded at this index (`None`: the trace ended
    /// but the re-run produced more events).
    pub expected: Option<ReplayEvent>,
    /// What the re-run produced at this index (`None`: the re-run ended
    /// but the trace has more events).
    pub observed: Option<ReplayEvent>,
}

impl fmt::Display for DivergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.expected, &self.observed) {
            (Some(exp), Some(obs)) => {
                write!(
                    f,
                    "event {}: expected {}, got {}",
                    self.index,
                    exp.describe(),
                    obs.describe()
                )?;
                // Locate the divergence: rank/time of the observed event
                // if it has them, otherwise of the expected one.
                let rank = obs.rank().or_else(|| exp.rank());
                let vtime = obs.vtime().or_else(|| exp.vtime());
                match (rank, vtime) {
                    (Some(r), Some(t)) => write!(f, " (rank {r}, t={t:e})"),
                    (Some(r), None) => write!(f, " (rank {r})"),
                    (None, Some(t)) => write!(f, " (t={t:e})"),
                    (None, None) => Ok(()),
                }
            }
            (Some(exp), None) => write!(
                f,
                "event {}: expected {}, but the replayed run ended early",
                self.index,
                exp.describe()
            ),
            (None, Some(obs)) => write!(
                f,
                "event {}: trace ended, but the replayed run produced {}",
                self.index,
                obs.describe()
            ),
            (None, None) => write!(f, "event {}: divergence", self.index),
        }
    }
}

impl std::error::Error for DivergenceError {}

/// Compare a replayed event stream against the recorded one, strictly
/// and element-wise. Returns the first divergence, or `Ok(())` if the
/// streams are identical (length included).
pub fn verify(expected: &[ReplayEvent], observed: &[ReplayEvent]) -> Result<(), DivergenceError> {
    let n = expected.len().min(observed.len());
    for i in 0..n {
        if expected[i] != observed[i] {
            return Err(DivergenceError {
                index: i,
                expected: Some(expected[i]),
                observed: Some(observed[i]),
            });
        }
    }
    if expected.len() != observed.len() {
        return Err(DivergenceError {
            index: n,
            expected: expected.get(n).copied(),
            observed: observed.get(n).copied(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_machine::CollectiveKind;

    fn ev_recv(rank: u64, src: u64) -> ReplayEvent {
        ReplayEvent::Recv {
            rank,
            src,
            tag: 0,
            vtime: 1.0,
        }
    }

    #[test]
    fn identical_streams_verify() {
        let a = vec![ev_recv(0, 1), ev_recv(1, 0)];
        assert_eq!(verify(&a, &a.clone()), Ok(()));
    }

    #[test]
    fn first_mismatch_reported_with_both_kinds() {
        let expected = vec![
            ev_recv(0, 1),
            ev_recv(7, 3),
            ReplayEvent::Finish {
                rank: 0,
                vtime: 2.0,
            },
        ];
        let mut observed = expected.clone();
        observed[1] = ReplayEvent::Collective {
            rank: 7,
            kind: CollectiveKind::Allreduce,
            group: 0,
            vtime: 1.0,
        };
        let err = verify(&expected, &observed).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.expected, Some(expected[1]));
        assert_eq!(err.observed, Some(observed[1]));
        let msg = err.to_string();
        assert!(msg.contains("event 1"), "{msg}");
        assert!(msg.contains("expected Recv{src:3}"), "{msg}");
        assert!(msg.contains("got Collective{Allreduce}"), "{msg}");
        assert!(msg.contains("rank 7"), "{msg}");
    }

    #[test]
    fn timestamp_only_difference_is_a_divergence() {
        let expected = vec![ev_recv(0, 1)];
        let mut observed = expected.clone();
        if let ReplayEvent::Recv { vtime, .. } = &mut observed[0] {
            *vtime += 1.0e-15;
        }
        assert!(verify(&expected, &observed).is_err());
    }

    #[test]
    fn length_mismatch_reported_as_early_end() {
        let expected = vec![ev_recv(0, 1), ev_recv(1, 0)];
        let observed = vec![ev_recv(0, 1)];
        let err = verify(&expected, &observed).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.expected, Some(expected[1]));
        assert_eq!(err.observed, None);
        assert!(err.to_string().contains("ended early"));

        let err = verify(&observed, &expected).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.expected, None);
        assert!(err.to_string().contains("trace ended"));
    }
}
