//! The `.cpxr` trace container: a versioned, CRC-checked binary framing
//! around a sequence of [`ReplayEvent`] records.
//!
//! Layout (all multi-byte integers little-endian):
//!
//! ```text
//! magic            4 bytes   "CPXR"
//! schema_version   u32       currently 1
//! label            varint len + UTF-8
//! seed             u64 (LEB128 varint)
//! world_size       u32
//! event_count      varint
//! repeated event_count times:
//!   payload_len    varint
//!   payload        payload_len bytes (one encoded ReplayEvent)
//!   crc32          u32  (CRC-32/IEEE over payload)
//! ```
//!
//! Every failure mode maps to a typed [`TraceError`]: wrong magic, a
//! schema version this build does not understand, truncation anywhere,
//! a record whose CRC does not match, or a payload that decodes to
//! garbage. Nothing panics on hostile input.

use std::fmt;
use std::path::Path;

use crate::event::ReplayEvent;
use crate::wire::{crc32, Decoder, Encoder, WireError};

/// File magic, first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"CPXR";

/// Format version written by this build; older readers reject newer
/// files with [`TraceError::UnsupportedVersion`] instead of misparsing.
pub const SCHEMA_VERSION: u32 = 1;

/// A recorded run: identifying header plus the full event sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Human-readable scenario label (e.g. `"crash_shrink"`).
    pub label: String,
    /// The seed that, together with the scenario configuration, makes
    /// the run reproducible.
    pub seed: u64,
    /// Number of ranks (or DES program width) in the recorded run.
    pub world_size: u32,
    /// The recorded event sequence, in deterministic order.
    pub events: Vec<ReplayEvent>,
}

/// Why a trace could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The first four bytes were not `"CPXR"`.
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The file's schema version is not one this build can read.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file ended before the structure it promised.
    Truncated {
        /// Byte offset where data ran out.
        offset: usize,
    },
    /// A record's stored CRC does not match its payload.
    CorruptRecord {
        /// Zero-based record index.
        index: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A record's payload failed to decode (unknown tag, bad value).
    Malformed {
        /// Zero-based record index.
        index: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// An underlying filesystem error (message preserved).
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic { found } => {
                write!(f, "not a CPXR trace (magic {found:02x?})")
            }
            TraceError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported trace schema version {found} (this build reads {supported})"
            ),
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated at byte offset {offset}")
            }
            TraceError::CorruptRecord {
                index,
                stored,
                computed,
            } => write!(
                f,
                "record {index} corrupt: stored CRC {stored:#010x}, computed {computed:#010x}"
            ),
            TraceError::Malformed { index, what } => {
                write!(f, "record {index} malformed: {what}")
            }
            TraceError::Io(msg) => write!(f, "trace I/O error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Serialize to the `.cpxr` byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(&MAGIC);
        enc.put_u32(SCHEMA_VERSION);
        enc.put_str(&self.label);
        enc.put_uv(self.seed);
        enc.put_u32(self.world_size);
        enc.put_uv(self.events.len() as u64);
        for ev in &self.events {
            let mut payload = Encoder::new();
            ev.encode(&mut payload);
            let payload = payload.into_bytes();
            enc.put_uv(payload.len() as u64);
            let crc = crc32(&payload);
            enc.put_bytes(&payload);
            enc.put_u32(crc);
        }
        enc.into_bytes()
    }

    /// Parse a trace from bytes, verifying magic, version, and every
    /// record's CRC.
    pub fn from_bytes(data: &[u8]) -> Result<Trace, TraceError> {
        let mut dec = Decoder::new(data);
        let magic = dec
            .get_bytes(4)
            .map_err(|_| TraceError::Truncated { offset: 0 })?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        let version = dec.get_u32().map_err(wire_header)?;
        if version != SCHEMA_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: version,
                supported: SCHEMA_VERSION,
            });
        }
        let label = dec.get_str().map_err(wire_header)?;
        let seed = dec.get_uv().map_err(wire_header)?;
        let world_size = dec.get_u32().map_err(wire_header)?;
        let count = dec.get_uv().map_err(wire_header)? as usize;
        // Sanity bound: each record costs at least 3 bytes (len + one
        // payload byte + CRC would already be 6, but stay conservative),
        // so a count wildly beyond the remaining bytes is corruption —
        // reject it before trying to allocate.
        if count > dec.remaining() {
            return Err(TraceError::Malformed {
                index: 0,
                what: "event count exceeds file size",
            });
        }
        let mut events = Vec::with_capacity(count);
        for index in 0..count {
            let len = dec.get_uv().map_err(|e| wire_record(index, e))? as usize;
            let payload = dec.get_bytes(len).map_err(|e| wire_record(index, e))?;
            let computed = crc32(payload);
            let payload = payload.to_vec();
            let stored = dec.get_u32().map_err(|e| wire_record(index, e))?;
            if stored != computed {
                return Err(TraceError::CorruptRecord {
                    index,
                    stored,
                    computed,
                });
            }
            let mut pdec = Decoder::new(&payload);
            let ev = ReplayEvent::decode(&mut pdec).map_err(|e| wire_record(index, e))?;
            if pdec.remaining() != 0 {
                return Err(TraceError::Malformed {
                    index,
                    what: "trailing bytes after event payload",
                });
            }
            events.push(ev);
        }
        if dec.remaining() != 0 {
            return Err(TraceError::Malformed {
                index: count,
                what: "trailing bytes after last record",
            });
        }
        Ok(Trace {
            label,
            seed,
            world_size,
            events,
        })
    }

    /// Write the trace to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| TraceError::Io(e.to_string()))?;
            }
        }
        std::fs::write(path, self.to_bytes()).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Read and parse a trace file.
    pub fn load(path: &Path) -> Result<Trace, TraceError> {
        let data = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Trace::from_bytes(&data)
    }
}

fn wire_header(e: WireError) -> TraceError {
    match e {
        WireError::Eof { offset } => TraceError::Truncated { offset },
        WireError::Invalid { what, .. } => TraceError::Malformed { index: 0, what },
    }
}

fn wire_record(index: usize, e: WireError) -> TraceError {
    match e {
        WireError::Eof { offset } => TraceError::Truncated { offset },
        WireError::Invalid { what, .. } => TraceError::Malformed { index, what },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_machine::CollectiveKind;

    fn sample_trace() -> Trace {
        Trace {
            label: "unit".to_string(),
            seed: 0xDEAD_BEEF,
            world_size: 4,
            events: vec![
                ReplayEvent::Send {
                    rank: 0,
                    dst: 1,
                    tag: 3,
                    bytes: 8192,
                    vtime: 1.0e-3,
                },
                ReplayEvent::Recv {
                    rank: 1,
                    src: 0,
                    tag: 3,
                    vtime: 1.1e-3,
                },
                ReplayEvent::Collective {
                    rank: 0,
                    kind: CollectiveKind::Allreduce,
                    group: 0,
                    vtime: 2.0e-3,
                },
                ReplayEvent::Checkpoint { iter: 10 },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        assert_eq!(&bytes[..4], b"CPXR");
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace {
            label: String::new(),
            seed: 0,
            world_size: 0,
            events: vec![],
        };
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_trace().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected_with_typed_error() {
        let mut bytes = sample_trace().to_bytes();
        // schema_version lives right after the 4-byte magic.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion {
                found: 99,
                supported: SCHEMA_VERSION
            })
        );
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = sample_trace().to_bytes();
        for cut in 0..bytes.len() {
            let err = Trace::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. } | TraceError::Malformed { .. }
                ),
                "cut at {cut} produced unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_bit_caught_by_crc() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        // Find the first record payload: header is magic(4) + version(4)
        // + label(1+4) + seed varint + world u32 + count varint. Rather
        // than computing offsets, flip one byte in the middle of the
        // first event's payload region and confirm the CRC catches it.
        let mut corrupted = bytes.clone();
        let idx = bytes.len() - 20; // inside the last record's payload/CRC
        corrupted[idx] ^= 0x40;
        let err = Trace::from_bytes(&corrupted).unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::CorruptRecord { .. } | TraceError::Malformed { .. }
            ),
            "bit flip produced {err:?}"
        );
    }

    #[test]
    fn save_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("cpx_replay_fmt_test/nested/deep");
        let path = dir.join("t.cpxr");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
        let t = sample_trace();
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("cpx_replay_fmt_test"));
    }
}
