//! Critical-path composition of a recorded `.cpxr` trace.
//!
//! Where `cpx_machine::graph` rebuilds the *exact* task graph from a
//! program plus a machine model, this module works from the trace file
//! alone — the virtual timestamps of the recorded events are the only
//! information available. That is enough to walk the binding chain
//! backward from the last event: a receive that completed *after* the
//! rank's previous event was message-bound (the chain hops to the
//! sender), a collective exit was bound by its last-arriving member
//! (the chain hops there), and everything else was local progress.
//!
//! The result is a gap-free tiling of `[0, makespan]` into **local**
//! and **message** spans. One approximation is inherent to
//! vtime-only analysis: a collective's own cost is indistinguishable
//! from local compute after the meet (both live between two timestamps
//! on the same rank), so `comm_s` here brackets the true
//! communication share *from below*. For exact attribution build the
//! task graph; for a quick composition answer over any committed
//! `.cpxr` artifact — including ones whose generating program is long
//! gone — this is the tool.

use crate::{ReplayEvent, Trace};
use cpx_obs::Json;

/// One binding span of the trace's critical chain.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Rank blamed for the span (the sender for message spans).
    pub rank: u64,
    /// `"local"` or `"message"`.
    pub label: &'static str,
    /// Span start (virtual seconds).
    pub t0: f64,
    /// Span end.
    pub t1: f64,
}

impl TraceSpan {
    /// Span duration.
    pub fn dur(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// Composition of a trace's binding chain.
#[derive(Debug, Clone, Default)]
pub struct TraceCritical {
    /// Virtual time of the last recorded event.
    pub makespan: f64,
    /// Seconds of the chain spent in local progress.
    pub local_s: f64,
    /// Seconds of the chain that were message-bound.
    pub message_s: f64,
    /// The chain's spans, earliest first; they tile `[0, makespan]`.
    pub spans: Vec<TraceSpan>,
}

impl TraceCritical {
    /// Fraction of the makespan the spans cover (≈ 1.0 by construction).
    pub fn coverage(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.spans.iter().map(TraceSpan::dur).sum::<f64>() / self.makespan
    }

    /// JSON form: composition plus the `top_n` longest spans.
    pub fn to_json(&self, top_n: usize) -> Json {
        let mut idx: Vec<usize> = (0..self.spans.len()).collect();
        idx.sort_by(|&a, &b| {
            let (sa, sb) = (&self.spans[a], &self.spans[b]);
            sb.dur()
                .partial_cmp(&sa.dur())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    sa.t0
                        .partial_cmp(&sb.t0)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        let spans: Vec<Json> = idx
            .into_iter()
            .take(top_n)
            .map(|k| {
                let s = &self.spans[k];
                Json::obj(vec![
                    ("rank", Json::Num(s.rank as f64)),
                    ("label", Json::Str(s.label.to_string())),
                    ("t0", Json::Num(s.t0)),
                    ("dur", Json::Num(s.dur())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("makespan", Json::Num(self.makespan)),
            ("local_s", Json::Num(self.local_s)),
            ("message_s", Json::Num(self.message_s)),
            ("coverage", Json::Num(self.coverage())),
            ("spans", Json::Num(self.spans.len() as f64)),
            ("top_spans", Json::Arr(spans)),
        ])
    }
}

/// A timed event in the flattened per-rank view.
#[derive(Debug, Clone, Copy)]
struct Timed {
    /// Index into `trace.events`.
    ev: usize,
    rank: u64,
    vtime: f64,
}

/// What role a timed event plays in the backward walk.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    /// A receive matched to the send at the given timed index.
    RecvFrom(usize),
    /// A collective entry; the occurrence's members are the timed
    /// indices of the same occurrence across ranks.
    Meet(usize),
    /// Anything else: progress marker only.
    Local,
}

/// Analyze the binding chain of `trace`. Works on both DES traces
/// (`Send`/`Recv`/`Collective`/`Finish`) and comm-runtime traces
/// (`CommSend`/`CommRecv`/`CommCollective`/...); events without a rank
/// or timestamp (whole-run resilience decisions) are skipped.
pub fn trace_critical(trace: &Trace) -> TraceCritical {
    // Flatten to timed events; trace order within one rank is that
    // rank's program order.
    let timed: Vec<Timed> = trace
        .events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            Some(Timed {
                ev: i,
                rank: e.rank()?,
                vtime: e.vtime()?,
            })
        })
        .collect();
    if timed.is_empty() {
        return TraceCritical::default();
    }

    // Per-rank chains (indices into `timed`) and per-timed predecessor.
    use std::collections::HashMap;
    let mut prev: Vec<Option<usize>> = vec![None; timed.len()];
    let mut last_on_rank: HashMap<u64, usize> = HashMap::new();
    for (t, ev) in timed.iter().enumerate() {
        prev[t] = last_on_rank.insert(ev.rank, t);
    }

    // Match receives to sends, FIFO per (src, dst, tag). Dropped and
    // corrupted comm-runtime sends never complete a matching receive.
    let mut send_q: HashMap<(u64, u64, u64), std::collections::VecDeque<usize>> = HashMap::new();
    // Collective occurrences: k-th collective entry per rank joins the
    // k-th global occurrence (the recorded runs only use world-sized
    // collective groups per group id, so (group, k) keys them).
    let mut occ_of: HashMap<(u64, u64), usize> = HashMap::new();
    let mut occ_members: Vec<Vec<usize>> = Vec::new();
    let mut rank_occ_counter: HashMap<(u64, u64), u64> = HashMap::new();
    let mut roles: Vec<Role> = vec![Role::Local; timed.len()];

    for (t, ev) in timed.iter().enumerate() {
        match trace.events[ev.ev] {
            ReplayEvent::Send { rank, dst, tag, .. } => {
                send_q.entry((rank, dst, tag)).or_default().push_back(t);
            }
            ReplayEvent::CommSend {
                rank,
                dst,
                tag,
                dropped,
                corrupted,
                ..
            } if !dropped && !corrupted => {
                send_q.entry((rank, dst, tag)).or_default().push_back(t);
            }
            ReplayEvent::Recv { rank, src, tag, .. }
            | ReplayEvent::CommRecv { rank, src, tag, .. } => {
                if let Some(s) = send_q
                    .get_mut(&(src, rank, tag))
                    .and_then(|q| q.pop_front())
                {
                    roles[t] = Role::RecvFrom(s);
                }
            }
            ReplayEvent::Collective { rank, group, .. } => {
                let k = rank_occ_counter.entry((group, rank)).or_insert(0);
                let occ = *occ_of.entry((group, *k)).or_insert_with(|| {
                    occ_members.push(Vec::new());
                    occ_members.len() - 1
                });
                *k += 1;
                occ_members[occ].push(t);
                roles[t] = Role::Meet(occ);
            }
            ReplayEvent::CommCollective { rank, .. } => {
                // No group id on the wire: comm-runtime collectives are
                // world-wide, keyed by per-rank occurrence count.
                let k = rank_occ_counter.entry((u64::MAX, rank)).or_insert(0);
                let occ = *occ_of.entry((u64::MAX, *k)).or_insert_with(|| {
                    occ_members.push(Vec::new());
                    occ_members.len() - 1
                });
                *k += 1;
                occ_members[occ].push(t);
                roles[t] = Role::Meet(occ);
            }
            _ => {}
        }
    }

    // The chain's head: the globally last timed event (latest vtime,
    // last in trace order on ties — scan keeps the first maximum from
    // the right).
    let mut head = 0usize;
    for (t, ev) in timed.iter().enumerate() {
        if ev.vtime >= timed[head].vtime {
            head = t;
        }
    }
    let makespan = timed[head].vtime;

    // Backward walk along binding constraints.
    let mut spans: Vec<TraceSpan> = Vec::new();
    let mut cur = Some(head);
    let mut guard = timed.len() + occ_members.len() + 1;
    while let Some(t) = cur {
        if guard == 0 {
            break; // malformed trace; refuse to loop forever
        }
        guard -= 1;
        let t_cur = timed[t].vtime;
        let p = prev[t];
        let t_prev = p.map(|q| timed[q].vtime).unwrap_or(0.0);

        if let Role::RecvFrom(s) = roles[t] {
            let t_send = timed[s].vtime;
            if t_send > t_prev {
                // Message-bound: blame the sender, hop to its chain.
                if t_cur > t_send {
                    spans.push(TraceSpan {
                        rank: timed[s].rank,
                        label: "message",
                        t0: t_send,
                        t1: t_cur,
                    });
                }
                cur = Some(s);
                continue;
            }
        }
        if let Some(q) = p {
            if let Role::Meet(occ) = roles[q] {
                // The stretch since the collective includes its exit:
                // bound by the last-arriving member.
                let mut det = q;
                for &m in &occ_members[occ] {
                    if timed[m].vtime > timed[det].vtime {
                        det = m;
                    }
                }
                let t_det = timed[det].vtime;
                if t_cur > t_det {
                    spans.push(TraceSpan {
                        rank: timed[t].rank,
                        label: "local",
                        t0: t_det,
                        t1: t_cur,
                    });
                }
                cur = Some(det);
                continue;
            }
        }
        // Local progress since the previous event on this rank.
        if t_cur > t_prev {
            spans.push(TraceSpan {
                rank: timed[t].rank,
                label: "local",
                t0: t_prev,
                t1: t_cur,
            });
        }
        cur = p;
    }

    spans.reverse();
    let local_s = spans
        .iter()
        .filter(|s| s.label == "local")
        .map(TraceSpan::dur)
        .sum();
    let message_s = spans
        .iter()
        .filter(|s| s.label == "message")
        .map(TraceSpan::dur)
        .sum();
    TraceCritical {
        makespan,
        local_s,
        message_s,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_machine::{CollectiveKind, KernelCost, Machine, Op, Replayer, TraceProgram};

    fn des_trace(program: &TraceProgram, machine: Machine) -> Trace {
        let (_, log) = Replayer::new(machine).run_logged(program).unwrap();
        Trace {
            label: "test".into(),
            seed: 0,
            world_size: program.n_ranks() as u32,
            events: log.into_iter().map(ReplayEvent::from).collect(),
        }
    }

    #[test]
    fn message_bound_chain_blames_the_sender() {
        let machine = Machine::archer2();
        let mut prog = TraceProgram::new(2);
        prog.rank(0).ops.push(Op::Compute(KernelCost::flops(1e12)));
        prog.rank(0).send(1, 1 << 20, 3);
        prog.rank(1).recv(0, 3);
        prog.rank(1).ops.push(Op::Compute(KernelCost::flops(1e9)));
        let trace = des_trace(&prog, machine);
        let crit = trace_critical(&trace);
        assert!(crit.makespan > 0.0);
        assert!((crit.coverage() - 1.0).abs() < 1e-9, "{}", crit.coverage());
        // The chain crosses the message: sender compute, the message,
        // then the receiver's tail compute.
        assert!(crit.message_s > 0.0);
        let msg = crit.spans.iter().find(|s| s.label == "message").unwrap();
        assert_eq!(msg.rank, 0);
        // Rank 0's heavy compute dominates the local share.
        assert!(crit.local_s > crit.message_s);
    }

    #[test]
    fn collective_chain_follows_the_last_arriver() {
        let machine = Machine::archer2();
        let mut prog = TraceProgram::new(3);
        let world = prog.add_world_group();
        for r in 0..3 {
            let flops = 1e11 * (r + 1) as f64;
            prog.rank(r).ops.push(Op::Compute(KernelCost::flops(flops)));
            prog.rank(r).collective(CollectiveKind::Allreduce, world, 8);
            prog.rank(r).ops.push(Op::Compute(KernelCost::flops(1e9)));
        }
        let trace = des_trace(&prog, machine);
        let crit = trace_critical(&trace);
        assert!((crit.coverage() - 1.0).abs() < 1e-9);
        // Rank 2 computes longest: the pre-collective chain must run on
        // it (first span from t=0 belongs to rank 2).
        assert_eq!(crit.spans.first().unwrap().rank, 2);
    }

    #[test]
    fn empty_and_untimed_traces_do_not_panic() {
        let empty = Trace {
            label: "empty".into(),
            seed: 0,
            world_size: 0,
            events: vec![],
        };
        let crit = trace_critical(&empty);
        assert_eq!(crit.makespan, 0.0);
        assert_eq!(crit.coverage(), 1.0);

        let untimed = Trace {
            label: "untimed".into(),
            seed: 0,
            world_size: 1,
            events: vec![ReplayEvent::Checkpoint { iter: 3 }],
        };
        assert_eq!(trace_critical(&untimed).spans.len(), 0);
    }

    #[test]
    fn report_json_parses_and_orders_spans() {
        let machine = Machine::archer2();
        let mut prog = TraceProgram::new(2);
        prog.rank(0).ops.push(Op::Compute(KernelCost::flops(1e12)));
        prog.rank(0).send(1, 4096, 1);
        prog.rank(1).recv(0, 1);
        let trace = des_trace(&prog, machine);
        let crit = trace_critical(&trace);
        let text = crit.to_json(5).write_pretty();
        let v = Json::parse(&text).unwrap();
        assert!(v.get("makespan").unwrap().as_f64().unwrap() > 0.0);
        let spans = v.get("top_spans").unwrap().as_arr().unwrap();
        assert!(!spans.is_empty());
        // Longest first.
        let durs: Vec<f64> = spans
            .iter()
            .map(|s| s.get("dur").unwrap().as_f64().unwrap())
            .collect();
        assert!(durs.windows(2).all(|w| w[0] >= w[1]));
    }
}
