//! Wire-layer re-export.
//!
//! The binary encoder/decoder and CRC-32 used by the `.cpxr` trace
//! container started life here; PR 7 moved them into the dependency-free
//! [`cpx_wire`] crate so `cpx-comm`'s TCP transport can frame its
//! messages with the same primitives without creating a crate cycle
//! (`cpx-replay` depends on `cpx-comm`). This module keeps the old
//! paths (`cpx_replay::wire::{Encoder, Decoder, WireError, crc32}`)
//! working.

pub use cpx_wire::{crc32, Decoder, Encoder, WireError};
