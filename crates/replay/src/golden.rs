//! The golden-trace regression corpus: a small set of fully scripted
//! scenarios whose recorded traces and rendered artifacts are committed
//! under `golden/<scenario>/` and re-checked in CI.
//!
//! Each scenario is a pure function of its built-in configuration (and
//! seed, where a fault plan draws randomness), producing three files:
//!
//! * `trace.cpxr` — the recorded [`Trace`] of every nondeterminism
//!   source the run exercises;
//! * `report.md` — the rendered study report (virtual-time metrics
//!   only, so it is byte-stable across hosts);
//! * `bench.json` — BENCH-style structured metrics plus an event-kind
//!   histogram.
//!
//! [`check`] replays the scenario from scratch, verifies the fresh
//! event stream against the committed trace event-by-event
//! ([`crate::verify`]), and byte-compares the regenerated report and
//! JSON against the committed files. Any code change that alters the
//! virtual-time behaviour of the coupled pipeline shows up as a
//! [`GoldenFailure::Divergence`] naming the exact first event that
//! moved.

use std::fmt;
use std::path::{Path, PathBuf};

use cpx_comm::{FaultPlan, ReduceOp, World};
use cpx_core::prelude::*;
use cpx_core::{coupled_program, run_coupled_resilient_logged, sim};
use cpx_machine::{KernelCost, Machine, Replayer};
use cpx_obs::json::{Json, ToJson};

use crate::divergence::{verify, DivergenceError};
use crate::event::ReplayEvent;
use crate::format::{Trace, TraceError};

/// Scenario names in the corpus, in canonical order.
pub const SCENARIOS: [&str; 5] = [
    "clean_coupled",
    "crash_shrink",
    "sdc_recovery",
    "lossy_faultplan",
    "multiproc_smoke",
];

/// Everything a scenario produces: the trace plus rendered artifacts.
#[derive(Debug, Clone)]
pub struct GoldenArtifacts {
    /// The recorded event trace.
    pub trace: Trace,
    /// `report.md` contents.
    pub report: String,
    /// `bench.json` contents (pretty-printed, trailing newline).
    pub bench: String,
}

/// Why a golden check failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GoldenFailure {
    /// The scenario name is not in [`SCENARIOS`].
    UnknownScenario(String),
    /// The committed trace could not be read.
    Trace(TraceError),
    /// The fresh run departed from the committed event stream.
    Divergence(DivergenceError),
    /// The committed trace header does not match the scenario (label,
    /// seed or world size drifted).
    HeaderMismatch {
        /// Which header field disagreed.
        what: &'static str,
    },
    /// A committed artifact file is missing or unreadable.
    MissingArtifact {
        /// File name within the scenario directory.
        file: String,
    },
    /// A regenerated artifact is not byte-identical to the committed
    /// one.
    ArtifactMismatch {
        /// File name within the scenario directory.
        file: String,
    },
}

impl fmt::Display for GoldenFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenFailure::UnknownScenario(name) => write!(f, "unknown scenario `{name}`"),
            GoldenFailure::Trace(e) => write!(f, "trace unreadable: {e}"),
            GoldenFailure::Divergence(e) => write!(f, "replay diverged: {e}"),
            GoldenFailure::HeaderMismatch { what } => {
                write!(f, "trace header mismatch: {what}")
            }
            GoldenFailure::MissingArtifact { file } => {
                write!(f, "missing committed artifact `{file}`")
            }
            GoldenFailure::ArtifactMismatch { file } => write!(
                f,
                "regenerated `{file}` is not byte-identical to the committed artifact"
            ),
        }
    }
}

impl std::error::Error for GoldenFailure {}

fn archer2() -> Machine {
    Machine::archer2()
}

/// The reduced benchmarking grid every golden scenario models with —
/// small enough that regeneration is fast, identical everywhere so the
/// allocation (and hence the trace) is stable.
const GRID: [usize; 4] = [100, 400, 1600, 6400];

fn small_alloc(scenario: &Scenario, budget: usize) -> Allocation {
    let models = model::build_models_with_grid(scenario, &archer2(), 20.0, &GRID);
    model::allocate_scenario(&models, budget)
}

fn event_histogram(events: &[ReplayEvent]) -> Json {
    let mut names: Vec<String> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    for ev in events {
        // Histogram by kind name: strip the `{...}` detail off describe().
        let d = ev.describe();
        let kind = d.split('{').next().unwrap_or(&d).to_string();
        match names.iter().position(|n| *n == kind) {
            Some(i) => counts[i] += 1,
            None => {
                names.push(kind);
                counts.push(1);
            }
        }
    }
    // Canonical order for byte stability.
    let mut idx: Vec<usize> = (0..names.len()).collect();
    idx.sort_by(|&a, &b| names[a].cmp(&names[b]));
    Json::Obj(
        idx.into_iter()
            .map(|i| (names[i].clone(), Json::Num(counts[i] as f64)))
            .collect(),
    )
}

pub(crate) fn bench_json(
    label: &str,
    seed: u64,
    trace: &Trace,
    run: Option<&CoupledRun>,
) -> String {
    let mut fields = vec![
        ("schema_version", Json::Num(1.0)),
        ("scenario", Json::Str(label.to_string())),
        ("seed", Json::Num(seed as f64)),
        ("world_size", Json::Num(trace.world_size as f64)),
        ("events", Json::Num(trace.events.len() as f64)),
        ("event_histogram", event_histogram(&trace.events)),
    ];
    if let Some(run) = run {
        fields.push(("run", run.to_json()));
    }
    Json::obj(fields).write_pretty()
}

/// `clean_coupled`: the DES event log of a fault-free coupled run of
/// the small 150M+28M scenario, plus its study report. Exercises the
/// run-to-block scheduler's global event order end to end.
fn clean_coupled() -> GoldenArtifacts {
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let machine = archer2();
    let alloc = small_alloc(&scenario, 310);
    let sample_iters = 3;
    let (program, _) = coupled_program(&scenario, &alloc, &machine, sample_iters);
    let (_, des_log) = Replayer::new(machine.clone())
        .run_logged(&program)
        .expect("clean coupled program replays");
    let run = sim::run_coupled(&scenario, &alloc, &machine, sample_iters);
    let report = markdown_report(&scenario, &alloc, &run);
    let trace = Trace {
        label: "clean_coupled".to_string(),
        // The DES pipeline is seed-free; 0 marks "no randomness drawn".
        seed: 0,
        world_size: alloc.total_ranks() as u32,
        events: des_log.into_iter().map(ReplayEvent::from).collect(),
    };
    let bench = bench_json("clean_coupled", 0, &trace, Some(&run));
    GoldenArtifacts {
        trace,
        report,
        bench,
    }
}

/// `crash_shrink`: a rank crash at 40% of the clean runtime with a
/// 10-iteration checkpoint period — the resilience decision log
/// (checkpoint → crash → rollback → shrink → stale exchanges) plus the
/// recovered run's report.
fn crash_shrink() -> GoldenArtifacts {
    let mut scenario = testcases::small_150m_28m(StcVariant::Base);
    let machine = archer2();
    let alloc = small_alloc(&scenario, 310);
    let sample_iters = 3;
    let clean = sim::run_coupled(&scenario, &alloc, &machine, sample_iters);
    let mut fault = FaultScenario::crash(1, 0.4 * clean.total_runtime);
    fault.checkpoint_interval = 10;
    scenario.fault = Some(fault);
    let (run, log) = run_coupled_resilient_logged(&scenario, &alloc, &machine, sample_iters);
    let report = markdown_report(&scenario, &alloc, &run);
    let trace = Trace {
        label: "crash_shrink".to_string(),
        seed: 0,
        world_size: alloc.total_ranks() as u32,
        events: log.into_iter().map(ReplayEvent::from).collect(),
    };
    let bench = bench_json("crash_shrink", 0, &trace, Some(&run));
    GoldenArtifacts {
        trace,
        report,
        bench,
    }
}

/// `sdc_recovery`: three injected silent corruptions recovered under
/// the default recompute policy — the detection/recovery event pairs
/// plus the ABFT-priced run report.
fn sdc_recovery() -> GoldenArtifacts {
    let mut scenario = testcases::small_150m_28m(StcVariant::Base);
    let machine = archer2();
    let alloc = small_alloc(&scenario, 310);
    let sample_iters = 3;
    scenario.fault = Some(FaultScenario::sdc_only(vec![
        SdcInjection {
            iter: 12,
            site: SdcSite::SparseKernel,
        },
        SdcInjection {
            iter: 40,
            site: SdcSite::HaloExchange,
        },
        SdcInjection {
            iter: 77,
            site: SdcSite::PhysicsInvariant,
        },
    ]));
    let (run, log) = run_coupled_resilient_logged(&scenario, &alloc, &machine, sample_iters);
    let report = markdown_report(&scenario, &alloc, &run);
    let trace = Trace {
        label: "sdc_recovery".to_string(),
        seed: 0,
        world_size: alloc.total_ranks() as u32,
        events: log.into_iter().map(ReplayEvent::from).collect(),
    };
    let bench = bench_json("sdc_recovery", 0, &trace, Some(&run));
    GoldenArtifacts {
        trace,
        report,
        bench,
    }
}

/// Seed for the `lossy_faultplan` scenario's per-message fault draws.
const LOSSY_SEED: u64 = 0x00C0_FFEE;

/// `lossy_faultplan`: an 8-rank ring exchange plus allreduce under a
/// lossy fault plan (drops, duplicates, delays) — the threaded comm
/// runtime's event lanes, fault draws included.
fn lossy_faultplan() -> GoldenArtifacts {
    let n = 8usize;
    let world = World::new(archer2());
    let plan = FaultPlan::new(LOSSY_SEED)
        .with_drop_prob(0.15)
        .with_dup_prob(0.10)
        .with_delay(0.20, 2e-6);
    let (runs, log) = world.run_with_plan_logged(n, plan, move |ctx| {
        let me = ctx.rank();
        ctx.compute(KernelCost::flops(5e7 * (me + 1) as f64));
        for round in 0..6u32 {
            ctx.send((me + 1) % n, round, vec![me as f64; 48]);
            let _ = ctx.recv((me + n - 1) % n, round);
        }
        let g = ctx.world();
        g.allreduce_scalar(ctx, ReduceOp::Sum, ctx.rank() as f64)
    });
    let trace = Trace {
        label: "lossy_faultplan".to_string(),
        seed: LOSSY_SEED,
        world_size: n as u32,
        events: log.into_iter().map(ReplayEvent::from).collect(),
    };
    // A compact virtual-time report: per-rank final clocks and traffic.
    let mut report = String::new();
    report.push_str("# Lossy fault-plan exchange\n\n");
    report.push_str(&format!(
        "{n} ranks, ring exchange x6 + allreduce, seed {LOSSY_SEED:#x}, \
         drop 0.15 / dup 0.10 / delay 0.20 (2 us).\n\n"
    ));
    report.push_str("| rank | virtual time (s) | sent (B) | retries | dropped | allreduce |\n");
    report.push_str("|-----:|-----------------:|---------:|--------:|--------:|----------:|\n");
    for (r, run) in runs.iter().enumerate() {
        let rep = &run.report;
        let value = match &run.outcome {
            cpx_comm::RankOutcome::Completed(v) => format!("{v:.1}"),
            cpx_comm::RankOutcome::Failed(_) => "failed".to_string(),
            cpx_comm::RankOutcome::Crashed { .. } => "crashed".to_string(),
            cpx_comm::RankOutcome::Panicked(_) => "panicked".to_string(),
        };
        report.push_str(&format!(
            "| {r} | {:.9e} | {} | {} | {} | {value} |\n",
            rep.elapsed, rep.bytes_sent, rep.retries, rep.dropped_msgs
        ));
    }
    let bench = bench_json("lossy_faultplan", LOSSY_SEED, &trace, None);
    GoldenArtifacts {
        trace,
        report,
        bench,
    }
}

/// Regenerate a scenario's artifacts from scratch.
pub fn generate(name: &str) -> Result<GoldenArtifacts, GoldenFailure> {
    match name {
        "clean_coupled" => Ok(clean_coupled()),
        "crash_shrink" => Ok(crash_shrink()),
        "sdc_recovery" => Ok(sdc_recovery()),
        "lossy_faultplan" => Ok(lossy_faultplan()),
        // The canonical artifacts come from the in-process backend; the
        // `multiproc_smoke` launcher re-runs the same scenario across OS
        // processes and byte-compares against these.
        "multiproc_smoke" => Ok(crate::multiproc::run_inproc()),
        other => Err(GoldenFailure::UnknownScenario(other.to_string())),
    }
}

fn scenario_dir(corpus_root: &Path, name: &str) -> PathBuf {
    corpus_root.join(name)
}

/// Record a scenario into `corpus_root/<name>/{trace.cpxr,report.md,bench.json}`,
/// creating directories as needed.
pub fn record(name: &str, corpus_root: &Path) -> Result<(), GoldenFailure> {
    let art = generate(name)?;
    let dir = scenario_dir(corpus_root, name);
    art.trace
        .save(&dir.join("trace.cpxr"))
        .map_err(GoldenFailure::Trace)?;
    std::fs::write(dir.join("report.md"), &art.report).map_err(|e| {
        GoldenFailure::MissingArtifact {
            file: format!("report.md ({e})"),
        }
    })?;
    std::fs::write(dir.join("bench.json"), &art.bench).map_err(|e| {
        GoldenFailure::MissingArtifact {
            file: format!("bench.json ({e})"),
        }
    })?;
    Ok(())
}

/// What [`check`] returns on failure: the failure itself plus the
/// fresh artifacts (when available) so the caller can write diff
/// files. Boxed because the artifacts carry whole reports.
pub type CheckFailure = Box<(GoldenFailure, Option<GoldenArtifacts>)>;

/// Replay a scenario against its committed artifacts. On success the
/// committed trace, report and JSON all match the fresh run exactly.
pub fn check(name: &str, corpus_root: &Path) -> Result<(), CheckFailure> {
    let dir = scenario_dir(corpus_root, name);
    let recorded = Trace::load(&dir.join("trace.cpxr"))
        .map_err(|e| Box::new((GoldenFailure::Trace(e), None)))?;
    let fresh = generate(name).map_err(|e| Box::new((e, None)))?;
    if recorded.label != fresh.trace.label {
        return Err(Box::new((
            GoldenFailure::HeaderMismatch { what: "label" },
            Some(fresh),
        )));
    }
    if recorded.seed != fresh.trace.seed {
        return Err(Box::new((
            GoldenFailure::HeaderMismatch { what: "seed" },
            Some(fresh),
        )));
    }
    if recorded.world_size != fresh.trace.world_size {
        return Err(Box::new((
            GoldenFailure::HeaderMismatch { what: "world_size" },
            Some(fresh),
        )));
    }
    if let Err(div) = verify(&recorded.events, &fresh.trace.events) {
        return Err(Box::new((GoldenFailure::Divergence(div), Some(fresh))));
    }
    for (file, fresh_bytes) in [
        ("report.md", fresh.report.as_bytes()),
        ("bench.json", fresh.bench.as_bytes()),
    ] {
        let committed = std::fs::read(dir.join(file)).map_err(|_| {
            Box::new((
                GoldenFailure::MissingArtifact {
                    file: file.to_string(),
                },
                Some(fresh.clone()),
            ))
        })?;
        if committed != fresh_bytes {
            return Err(Box::new((
                GoldenFailure::ArtifactMismatch {
                    file: file.to_string(),
                },
                Some(fresh.clone()),
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_scenario_is_reproducible() {
        let a = lossy_faultplan();
        let b = lossy_faultplan();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.report, b.report);
        assert_eq!(a.bench, b.bench);
        assert!(!a.trace.events.is_empty());
        // The trace round-trips through the container format.
        let bytes = a.trace.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), a.trace);
    }

    #[test]
    fn unknown_scenario_is_a_typed_error() {
        assert_eq!(
            generate("no_such_scenario").unwrap_err(),
            GoldenFailure::UnknownScenario("no_such_scenario".to_string())
        );
    }

    #[test]
    fn record_then_check_round_trips() {
        let root = std::env::temp_dir().join("cpx_replay_golden_test");
        let _ = std::fs::remove_dir_all(&root);
        record("lossy_faultplan", &root).unwrap();
        check("lossy_faultplan", &root).unwrap();
        // Tamper with the committed trace: flip a payload byte.
        let path = root.join("lossy_faultplan/trace.cpxr");
        let bytes = std::fs::read(&path).unwrap();
        let mut tampered = bytes.clone();
        let idx = tampered.len() - 20;
        tampered[idx] ^= 0x01;
        std::fs::write(&path, &tampered).unwrap();
        let (failure, _) = *check("lossy_faultplan", &root).unwrap_err();
        assert!(
            matches!(
                failure,
                GoldenFailure::Trace(_) | GoldenFailure::Divergence(_)
            ),
            "tampering produced {failure:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
