//! The `multiproc_smoke` scenario: one seeded rank program that must
//! produce byte-identical artifacts whether the world runs in a single
//! process ([`cpx_comm::World::run_with_plan_logged`]) or split across
//! OS processes connected by TCP ([`cpx_comm::run_node`]).
//!
//! The scenario definition lives here — label, seed, world shape, fault
//! plan, rank program and artifact rendering — so the golden corpus
//! (via [`crate::golden::generate`]), the in-process regression check
//! and the `multiproc_smoke` launcher binary all execute *exactly* the
//! same run. The launcher spawns one child process per node with a
//! `--current-node` selector, each child executes its ranks over the
//! TCP mesh and writes its trace fragment plus per-rank summaries to
//! disk, and the parent merges them in rank order and byte-compares
//! against both the committed corpus and a fresh in-process run.
//!
//! Everything crossing the process boundary that feeds the artifacts is
//! encoded exactly: `f64`s travel as raw bits, so the text round-trip
//! can never perturb a byte of the rendered report.

use cpx_comm::{FaultPlan, RankCtx, RankOutcome, RankRun, ReduceOp, TimeReport, World};
use cpx_machine::{KernelCost, Machine};

use crate::event::ReplayEvent;
use crate::format::Trace;
use crate::golden::{bench_json, GoldenArtifacts};

/// Scenario label (also the corpus directory name).
pub const LABEL: &str = "multiproc_smoke";

/// Seed for the scenario's per-message fault draws.
pub const SEED: u64 = 0x0DD5_EA5E;

/// World size.
pub const WORLD: usize = 8;

/// Number of OS processes ("nodes") in the distributed variant; ranks
/// are block-partitioned over them by [`cpx_comm::ClusterConfig::local`].
pub const NODES: usize = 2;

/// The machine model every variant runs against.
pub fn machine() -> Machine {
    Machine::archer2()
}

/// The seeded lossy fault plan: drops, duplicates and delays, all pure
/// functions of `(SEED, src, dst, seq)` so both backends draw the exact
/// same faults.
pub fn plan() -> FaultPlan {
    FaultPlan::new(SEED)
        .with_drop_prob(0.12)
        .with_dup_prob(0.08)
        .with_delay(0.25, 2e-6)
}

/// The rank program: staggered compute, a 5-round ring exchange (with
/// compute charged per received payload) and a closing allreduce. All
/// timing is virtual, so the value and the event lane of every rank are
/// pure functions of the plan.
pub fn program(ctx: &mut RankCtx) -> f64 {
    let me = ctx.rank();
    let n = ctx.size();
    ctx.compute(KernelCost::flops(4e7 * (me + 2) as f64));
    for round in 0..5u32 {
        ctx.send(
            (me + 1) % n,
            round,
            vec![(me * 10 + round as usize) as f64; 32],
        );
        let data = ctx.recv((me + n - 1) % n, round).into_f64();
        ctx.compute(KernelCost::flops(2e6 * data.len() as f64));
    }
    let g = ctx.world();
    g.allreduce_scalar(ctx, ReduceOp::Sum, (me + 1) as f64 * ctx.now())
}

/// One rank's results, as carried across the process boundary by the
/// multi-process launcher: the completed value plus the full
/// [`TimeReport`]. Encoded as one whitespace-separated line with every
/// `f64` as raw bits — decode(encode(x)) == x, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// World rank.
    pub rank: usize,
    /// The rank program's return value.
    pub value: f64,
    /// Virtual-time accounting.
    pub report: TimeReport,
}

impl RankSummary {
    /// Extract the summary of a completed rank; panics if the rank did
    /// not complete (the smoke scenario is crash-free by construction).
    pub fn from_run(rank: usize, run: &RankRun<f64>) -> RankSummary {
        let value = match &run.outcome {
            RankOutcome::Completed(v) => *v,
            other => panic!("multiproc smoke rank {rank} did not complete: {other:?}"),
        };
        RankSummary {
            rank,
            value,
            report: run.report,
        }
    }

    /// Encode as one line of decimal integers (f64s as `to_bits`).
    pub fn encode(&self) -> String {
        let r = &self.report;
        format!(
            "{} {} {} {} {} {} {} {} {} {} {}",
            self.rank,
            self.value.to_bits(),
            r.elapsed.to_bits(),
            r.compute.to_bits(),
            r.comm.to_bits(),
            r.messages_sent,
            r.bytes_sent,
            r.retries,
            r.dropped_msgs,
            r.corrupted_msgs,
            r.recovery_time.to_bits(),
        )
    }

    /// Decode one [`RankSummary::encode`] line; `None` on any malformed
    /// token or field count.
    pub fn decode(line: &str) -> Option<RankSummary> {
        let mut it = line.split_whitespace();
        let mut next_u64 = || it.next()?.parse::<u64>().ok();
        let rank = next_u64()? as usize;
        let value = f64::from_bits(next_u64()?);
        let report = TimeReport {
            elapsed: f64::from_bits(next_u64()?),
            compute: f64::from_bits(next_u64()?),
            comm: f64::from_bits(next_u64()?),
            messages_sent: next_u64()?,
            bytes_sent: next_u64()?,
            retries: next_u64()?,
            dropped_msgs: next_u64()?,
            corrupted_msgs: next_u64()?,
            recovery_time: f64::from_bits(next_u64()?),
        };
        if it.next().is_some() {
            return None;
        }
        Some(RankSummary {
            rank,
            value,
            report,
        })
    }
}

/// Render the scenario artifacts from per-rank summaries (ascending
/// rank order) and the merged event stream (rank-order concatenation of
/// per-rank lanes — the same order both backends produce).
pub fn artifacts(summaries: &[RankSummary], events: Vec<ReplayEvent>) -> GoldenArtifacts {
    assert_eq!(summaries.len(), WORLD, "need one summary per rank");
    for (i, s) in summaries.iter().enumerate() {
        assert_eq!(s.rank, i, "summaries must be in ascending rank order");
    }
    let trace = Trace {
        label: LABEL.to_string(),
        seed: SEED,
        world_size: WORLD as u32,
        events,
    };
    let mut report = String::new();
    report.push_str("# Multi-process smoke exchange\n\n");
    report.push_str(&format!(
        "{WORLD} ranks over {NODES} nodes, ring exchange x5 + allreduce, seed {SEED:#x}, \
         drop 0.12 / dup 0.08 / delay 0.25 (2 us).\n\n\
         All timing is virtual: the in-process backend and the TCP\n\
         multi-process backend must regenerate these bytes identically.\n\n"
    ));
    report.push_str("| rank | virtual time (s) | sent (B) | retries | dropped | allreduce |\n");
    report.push_str("|-----:|-----------------:|---------:|--------:|--------:|----------:|\n");
    for s in summaries {
        report.push_str(&format!(
            "| {} | {:.9e} | {} | {} | {} | {:.6e} |\n",
            s.rank,
            s.report.elapsed,
            s.report.bytes_sent,
            s.report.retries,
            s.report.dropped_msgs,
            s.value
        ));
    }
    let bench = bench_json(LABEL, SEED, &trace, None);
    GoldenArtifacts {
        trace,
        report,
        bench,
    }
}

/// Run the scenario on the in-process backend and render its artifacts.
/// This is the canonical generator the golden corpus records.
pub fn run_inproc() -> GoldenArtifacts {
    let world = World::new(machine());
    let (runs, log) = world.run_with_plan_logged(WORLD, plan(), program);
    let summaries: Vec<RankSummary> = runs
        .iter()
        .enumerate()
        .map(|(r, run)| RankSummary::from_run(r, run))
        .collect();
    artifacts(&summaries, log.into_iter().map(ReplayEvent::from).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_scenario_is_reproducible() {
        let a = run_inproc();
        let b = run_inproc();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.report, b.report);
        assert_eq!(a.bench, b.bench);
        assert!(!a.trace.events.is_empty());
    }

    #[test]
    fn rank_summary_line_round_trips_exactly() {
        let s = RankSummary {
            rank: 5,
            value: -1.234567890123e-7,
            report: TimeReport {
                elapsed: 3.000000001e-3,
                compute: 1.5e-3,
                comm: 0.1234e-3,
                messages_sent: 42,
                bytes_sent: 16384,
                retries: 3,
                dropped_msgs: 2,
                corrupted_msgs: 0,
                recovery_time: 7.77e-6,
            },
        };
        let back = RankSummary::decode(&s.encode()).expect("round trip");
        assert_eq!(s, back);
        assert_eq!(s.value.to_bits(), back.value.to_bits());
        assert_eq!(s.report.elapsed.to_bits(), back.report.elapsed.to_bits());
    }

    #[test]
    fn malformed_summary_lines_rejected() {
        assert!(RankSummary::decode("").is_none());
        assert!(RankSummary::decode("1 2 3").is_none());
        assert!(RankSummary::decode("x y z a b c d e f g h").is_none());
        let ok = RankSummary {
            rank: 0,
            value: 0.0,
            report: TimeReport::default(),
        }
        .encode();
        assert!(RankSummary::decode(&format!("{ok} 99")).is_none());
    }
}
