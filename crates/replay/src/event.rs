//! The unified replay event: every source of nondeterminism a run can
//! record, flattened into one serializable enum.
//!
//! Three producers feed it:
//!
//! * the DES replayer's deterministic event log
//!   ([`cpx_machine::DesEvent`]) — sends, receives, collective arrivals
//!   and rank finishes with virtual timestamps;
//! * the threaded comm runtime's per-rank event lanes
//!   ([`cpx_comm::CommEvent`]) — including each message's fault-plan
//!   draw (drop/duplicate/corrupt), retries, failure detection, crashes
//!   and aborts;
//! * the resilient coupled run's decision log
//!   ([`cpx_core::ResilienceEvent`]) — checkpoints, the
//!   crash/rollback/shrink sequence, stale CU exchanges, and SDC
//!   detection/recovery.
//!
//! Events compare bit-exactly (timestamps are IEEE-754-identical across
//! replays of the same inputs), which is what makes strict event-by-event
//! verification meaningful.

use cpx_comm::{CollectiveOp, CommEvent, CommEventKind};
use cpx_core::ResilienceEvent;
use cpx_machine::{CollectiveKind, DesEvent, DesEventKind};

use crate::wire::{Decoder, Encoder, WireError};
use cpx_core::SdcSite;

/// One recorded event. See the module docs for the three producers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayEvent {
    /// DES: a rank deposited a message.
    Send {
        rank: u64,
        dst: u64,
        tag: u64,
        bytes: u64,
        vtime: f64,
    },
    /// DES: a rank completed a matching receive.
    Recv {
        rank: u64,
        src: u64,
        tag: u64,
        vtime: f64,
    },
    /// DES: a rank arrived at a collective.
    Collective {
        rank: u64,
        kind: CollectiveKind,
        group: u64,
        vtime: f64,
    },
    /// DES: a rank ran out of ops.
    Finish { rank: u64, vtime: f64 },
    /// Comm runtime: a send was issued, with its fault-plan draw.
    CommSend {
        rank: u64,
        dst: u64,
        tag: u64,
        seq: u64,
        dropped: bool,
        duplicated: bool,
        corrupted: bool,
        vtime: f64,
    },
    /// Comm runtime: a message was admitted (CRC verified).
    CommRecv {
        rank: u64,
        src: u64,
        tag: u64,
        vtime: f64,
    },
    /// Comm runtime: a message failed its payload CRC check.
    CommRecvCorrupt {
        rank: u64,
        src: u64,
        tag: u64,
        vtime: f64,
    },
    /// Comm runtime: retry backoff charged.
    CommBackoff { rank: u64, attempt: u64, vtime: f64 },
    /// Comm runtime: dead peer detected.
    CommPeerDead { rank: u64, peer: u64, vtime: f64 },
    /// Comm runtime: a virtual receive deadline expired.
    CommTimeout { rank: u64, src: u64, vtime: f64 },
    /// Comm runtime: the rank entered a collective.
    CommCollective {
        rank: u64,
        op: CollectiveOp,
        vtime: f64,
    },
    /// Comm runtime: the fault plan crashed this rank.
    CommCrash { rank: u64, vtime: f64 },
    /// Comm runtime: the rank aborted on an unrecoverable error.
    CommAbort { rank: u64, vtime: f64 },
    /// Resilience: a CU exchange fell back to the stale mapping.
    StaleExchange { iter: u64, cu: u64 },
    /// Resilience: a coordinated checkpoint was written.
    Checkpoint { iter: u64 },
    /// Resilience: a rank of an app instance crashed.
    Crash { app: u64, iter: u64, vtime: f64 },
    /// Resilience: rollback to the last checkpoint.
    Rollback { to_iter: u64 },
    /// Resilience: ULFM-style shrink of the crashed instance.
    Shrink { app: u64, ranks_after: u64 },
    /// Resilience: the detector layer caught an injected corruption.
    SdcDetected { iter: u64, site: SdcSite },
    /// Resilience: a detected corruption was recovered.
    SdcRecovered { iter: u64, cost: f64 },
}

fn collective_kind_tag(k: CollectiveKind) -> u8 {
    match k {
        CollectiveKind::Barrier => 0,
        CollectiveKind::Broadcast => 1,
        CollectiveKind::Reduce => 2,
        CollectiveKind::Allreduce => 3,
        CollectiveKind::Allgather => 4,
        CollectiveKind::Alltoall => 5,
        CollectiveKind::Gather => 6,
        CollectiveKind::Scatter => 7,
    }
}

fn collective_kind_from(tag: u8) -> Option<CollectiveKind> {
    Some(match tag {
        0 => CollectiveKind::Barrier,
        1 => CollectiveKind::Broadcast,
        2 => CollectiveKind::Reduce,
        3 => CollectiveKind::Allreduce,
        4 => CollectiveKind::Allgather,
        5 => CollectiveKind::Alltoall,
        6 => CollectiveKind::Gather,
        7 => CollectiveKind::Scatter,
        _ => return None,
    })
}

fn collective_op_tag(op: CollectiveOp) -> u8 {
    match op {
        CollectiveOp::Bcast => 0,
        CollectiveOp::Reduce => 1,
        CollectiveOp::Allreduce => 2,
        CollectiveOp::Barrier => 3,
        CollectiveOp::Gather => 4,
        CollectiveOp::Allgather => 5,
        CollectiveOp::Alltoallv => 6,
    }
}

fn collective_op_from(tag: u8) -> Option<CollectiveOp> {
    Some(match tag {
        0 => CollectiveOp::Bcast,
        1 => CollectiveOp::Reduce,
        2 => CollectiveOp::Allreduce,
        3 => CollectiveOp::Barrier,
        4 => CollectiveOp::Gather,
        5 => CollectiveOp::Allgather,
        6 => CollectiveOp::Alltoallv,
        _ => return None,
    })
}

fn sdc_site_tag(s: SdcSite) -> u8 {
    match s {
        SdcSite::SparseKernel => 0,
        SdcSite::HaloExchange => 1,
        SdcSite::CommPayload => 2,
        SdcSite::PhysicsInvariant => 3,
        SdcSite::SolverCycle => 4,
    }
}

fn sdc_site_from(tag: u8) -> Option<SdcSite> {
    Some(match tag {
        0 => SdcSite::SparseKernel,
        1 => SdcSite::HaloExchange,
        2 => SdcSite::CommPayload,
        3 => SdcSite::PhysicsInvariant,
        4 => SdcSite::SolverCycle,
        _ => return None,
    })
}

impl ReplayEvent {
    /// The rank the event happened on, where it has one (resilience
    /// decisions are whole-run, not per-rank).
    pub fn rank(&self) -> Option<u64> {
        use ReplayEvent::*;
        match *self {
            Send { rank, .. }
            | Recv { rank, .. }
            | Collective { rank, .. }
            | Finish { rank, .. }
            | CommSend { rank, .. }
            | CommRecv { rank, .. }
            | CommRecvCorrupt { rank, .. }
            | CommBackoff { rank, .. }
            | CommPeerDead { rank, .. }
            | CommTimeout { rank, .. }
            | CommCollective { rank, .. }
            | CommCrash { rank, .. }
            | CommAbort { rank, .. } => Some(rank),
            _ => None,
        }
    }

    /// The event's virtual timestamp, where it carries one.
    pub fn vtime(&self) -> Option<f64> {
        use ReplayEvent::*;
        match *self {
            Send { vtime, .. }
            | Recv { vtime, .. }
            | Collective { vtime, .. }
            | Finish { vtime, .. }
            | CommSend { vtime, .. }
            | CommRecv { vtime, .. }
            | CommRecvCorrupt { vtime, .. }
            | CommBackoff { vtime, .. }
            | CommPeerDead { vtime, .. }
            | CommTimeout { vtime, .. }
            | CommCollective { vtime, .. }
            | CommCrash { vtime, .. }
            | CommAbort { vtime, .. }
            | Crash { vtime, .. } => Some(vtime),
            _ => None,
        }
    }

    /// Compact human description of the event *kind* with its salient
    /// identity fields — what a [`crate::DivergenceError`] prints, e.g.
    /// `Recv{src:3}` or `Collective{Allreduce}`. Timestamps are
    /// deliberately excluded (they are reported separately).
    pub fn describe(&self) -> String {
        use ReplayEvent::*;
        match *self {
            Send { dst, tag, .. } => format!("Send{{dst:{dst},tag:{tag}}}"),
            Recv { src, .. } => format!("Recv{{src:{src}}}"),
            Collective { kind, .. } => format!("Collective{{{kind:?}}}"),
            Finish { .. } => "Finish".to_string(),
            CommSend {
                dst,
                dropped,
                duplicated,
                corrupted,
                ..
            } => {
                let mut s = format!("CommSend{{dst:{dst}");
                if dropped {
                    s.push_str(",dropped");
                }
                if duplicated {
                    s.push_str(",dup");
                }
                if corrupted {
                    s.push_str(",corrupt");
                }
                s.push('}');
                s
            }
            CommRecv { src, .. } => format!("CommRecv{{src:{src}}}"),
            CommRecvCorrupt { src, .. } => format!("CommRecvCorrupt{{src:{src}}}"),
            CommBackoff { attempt, .. } => format!("CommBackoff{{attempt:{attempt}}}"),
            CommPeerDead { peer, .. } => format!("CommPeerDead{{peer:{peer}}}"),
            CommTimeout { src, .. } => format!("CommTimeout{{src:{src}}}"),
            CommCollective { op, .. } => format!("CommCollective{{{op:?}}}"),
            CommCrash { .. } => "CommCrash".to_string(),
            CommAbort { .. } => "CommAbort".to_string(),
            StaleExchange { iter, cu } => format!("StaleExchange{{iter:{iter},cu:{cu}}}"),
            Checkpoint { iter } => format!("Checkpoint{{iter:{iter}}}"),
            Crash { app, iter, .. } => format!("Crash{{app:{app},iter:{iter}}}"),
            Rollback { to_iter } => format!("Rollback{{to_iter:{to_iter}}}"),
            Shrink { app, ranks_after } => {
                format!("Shrink{{app:{app},ranks_after:{ranks_after}}}")
            }
            SdcDetected { iter, site } => format!("SdcDetected{{iter:{iter},{site:?}}}"),
            SdcRecovered { iter, .. } => format!("SdcRecovered{{iter:{iter}}}"),
        }
    }

    /// Serialize into `enc` (the record payload; framing and CRC are the
    /// container's job, see [`crate::format`]).
    pub fn encode(&self, enc: &mut Encoder) {
        use ReplayEvent::*;
        match *self {
            Send {
                rank,
                dst,
                tag,
                bytes,
                vtime,
            } => {
                enc.put_u8(0);
                enc.put_uv(rank);
                enc.put_uv(dst);
                enc.put_uv(tag);
                enc.put_uv(bytes);
                enc.put_f64(vtime);
            }
            Recv {
                rank,
                src,
                tag,
                vtime,
            } => {
                enc.put_u8(1);
                enc.put_uv(rank);
                enc.put_uv(src);
                enc.put_uv(tag);
                enc.put_f64(vtime);
            }
            Collective {
                rank,
                kind,
                group,
                vtime,
            } => {
                enc.put_u8(2);
                enc.put_uv(rank);
                enc.put_u8(collective_kind_tag(kind));
                enc.put_uv(group);
                enc.put_f64(vtime);
            }
            Finish { rank, vtime } => {
                enc.put_u8(3);
                enc.put_uv(rank);
                enc.put_f64(vtime);
            }
            CommSend {
                rank,
                dst,
                tag,
                seq,
                dropped,
                duplicated,
                corrupted,
                vtime,
            } => {
                enc.put_u8(4);
                enc.put_uv(rank);
                enc.put_uv(dst);
                enc.put_uv(tag);
                enc.put_uv(seq);
                enc.put_bool(dropped);
                enc.put_bool(duplicated);
                enc.put_bool(corrupted);
                enc.put_f64(vtime);
            }
            CommRecv {
                rank,
                src,
                tag,
                vtime,
            } => {
                enc.put_u8(5);
                enc.put_uv(rank);
                enc.put_uv(src);
                enc.put_uv(tag);
                enc.put_f64(vtime);
            }
            CommRecvCorrupt {
                rank,
                src,
                tag,
                vtime,
            } => {
                enc.put_u8(6);
                enc.put_uv(rank);
                enc.put_uv(src);
                enc.put_uv(tag);
                enc.put_f64(vtime);
            }
            CommBackoff {
                rank,
                attempt,
                vtime,
            } => {
                enc.put_u8(7);
                enc.put_uv(rank);
                enc.put_uv(attempt);
                enc.put_f64(vtime);
            }
            CommPeerDead { rank, peer, vtime } => {
                enc.put_u8(8);
                enc.put_uv(rank);
                enc.put_uv(peer);
                enc.put_f64(vtime);
            }
            CommTimeout { rank, src, vtime } => {
                enc.put_u8(9);
                enc.put_uv(rank);
                enc.put_uv(src);
                enc.put_f64(vtime);
            }
            CommCollective { rank, op, vtime } => {
                enc.put_u8(10);
                enc.put_uv(rank);
                enc.put_u8(collective_op_tag(op));
                enc.put_f64(vtime);
            }
            CommCrash { rank, vtime } => {
                enc.put_u8(11);
                enc.put_uv(rank);
                enc.put_f64(vtime);
            }
            CommAbort { rank, vtime } => {
                enc.put_u8(12);
                enc.put_uv(rank);
                enc.put_f64(vtime);
            }
            StaleExchange { iter, cu } => {
                enc.put_u8(13);
                enc.put_uv(iter);
                enc.put_uv(cu);
            }
            Checkpoint { iter } => {
                enc.put_u8(14);
                enc.put_uv(iter);
            }
            Crash { app, iter, vtime } => {
                enc.put_u8(15);
                enc.put_uv(app);
                enc.put_uv(iter);
                enc.put_f64(vtime);
            }
            Rollback { to_iter } => {
                enc.put_u8(16);
                enc.put_uv(to_iter);
            }
            Shrink { app, ranks_after } => {
                enc.put_u8(17);
                enc.put_uv(app);
                enc.put_uv(ranks_after);
            }
            SdcDetected { iter, site } => {
                enc.put_u8(18);
                enc.put_uv(iter);
                enc.put_u8(sdc_site_tag(site));
            }
            SdcRecovered { iter, cost } => {
                enc.put_u8(19);
                enc.put_uv(iter);
                enc.put_f64(cost);
            }
        }
    }

    /// Deserialize one event from `dec`.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<ReplayEvent, WireError> {
        use ReplayEvent::*;
        let tag = dec.get_u8()?;
        Ok(match tag {
            0 => Send {
                rank: dec.get_uv()?,
                dst: dec.get_uv()?,
                tag: dec.get_uv()?,
                bytes: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            1 => Recv {
                rank: dec.get_uv()?,
                src: dec.get_uv()?,
                tag: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            2 => {
                let rank = dec.get_uv()?;
                let ktag = dec.get_u8()?;
                let kind = collective_kind_from(ktag).ok_or(WireError::Invalid {
                    offset: dec.offset() - 1,
                    what: "unknown collective kind",
                })?;
                Collective {
                    rank,
                    kind,
                    group: dec.get_uv()?,
                    vtime: dec.get_f64()?,
                }
            }
            3 => Finish {
                rank: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            4 => CommSend {
                rank: dec.get_uv()?,
                dst: dec.get_uv()?,
                tag: dec.get_uv()?,
                seq: dec.get_uv()?,
                dropped: dec.get_bool()?,
                duplicated: dec.get_bool()?,
                corrupted: dec.get_bool()?,
                vtime: dec.get_f64()?,
            },
            5 => CommRecv {
                rank: dec.get_uv()?,
                src: dec.get_uv()?,
                tag: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            6 => CommRecvCorrupt {
                rank: dec.get_uv()?,
                src: dec.get_uv()?,
                tag: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            7 => CommBackoff {
                rank: dec.get_uv()?,
                attempt: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            8 => CommPeerDead {
                rank: dec.get_uv()?,
                peer: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            9 => CommTimeout {
                rank: dec.get_uv()?,
                src: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            10 => {
                let rank = dec.get_uv()?;
                let otag = dec.get_u8()?;
                let op = collective_op_from(otag).ok_or(WireError::Invalid {
                    offset: dec.offset() - 1,
                    what: "unknown collective op",
                })?;
                CommCollective {
                    rank,
                    op,
                    vtime: dec.get_f64()?,
                }
            }
            11 => CommCrash {
                rank: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            12 => CommAbort {
                rank: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            13 => StaleExchange {
                iter: dec.get_uv()?,
                cu: dec.get_uv()?,
            },
            14 => Checkpoint {
                iter: dec.get_uv()?,
            },
            15 => Crash {
                app: dec.get_uv()?,
                iter: dec.get_uv()?,
                vtime: dec.get_f64()?,
            },
            16 => Rollback {
                to_iter: dec.get_uv()?,
            },
            17 => Shrink {
                app: dec.get_uv()?,
                ranks_after: dec.get_uv()?,
            },
            18 => {
                let iter = dec.get_uv()?;
                let stag = dec.get_u8()?;
                let site = sdc_site_from(stag).ok_or(WireError::Invalid {
                    offset: dec.offset() - 1,
                    what: "unknown SDC site",
                })?;
                SdcDetected { iter, site }
            }
            19 => SdcRecovered {
                iter: dec.get_uv()?,
                cost: dec.get_f64()?,
            },
            _ => {
                return Err(WireError::Invalid {
                    offset: dec.offset() - 1,
                    what: "unknown event kind tag",
                })
            }
        })
    }
}

impl From<DesEvent> for ReplayEvent {
    fn from(e: DesEvent) -> ReplayEvent {
        let rank = e.rank as u64;
        match e.kind {
            DesEventKind::Send { dst, tag, bytes } => ReplayEvent::Send {
                rank,
                dst: dst as u64,
                tag: tag as u64,
                bytes: bytes as u64,
                vtime: e.vtime,
            },
            DesEventKind::Recv { src, tag } => ReplayEvent::Recv {
                rank,
                src: src as u64,
                tag: tag as u64,
                vtime: e.vtime,
            },
            DesEventKind::Collective { kind, group } => ReplayEvent::Collective {
                rank,
                kind,
                group: group as u64,
                vtime: e.vtime,
            },
            DesEventKind::Finish => ReplayEvent::Finish {
                rank,
                vtime: e.vtime,
            },
        }
    }
}

impl From<CommEvent> for ReplayEvent {
    fn from(e: CommEvent) -> ReplayEvent {
        let rank = e.rank as u64;
        let vtime = e.vtime;
        match e.kind {
            CommEventKind::Send {
                dst,
                tag,
                seq,
                dropped,
                duplicated,
                corrupted,
            } => ReplayEvent::CommSend {
                rank,
                dst: dst as u64,
                tag,
                seq,
                dropped,
                duplicated,
                corrupted,
                vtime,
            },
            CommEventKind::Recv { src, tag } => ReplayEvent::CommRecv {
                rank,
                src: src as u64,
                tag,
                vtime,
            },
            CommEventKind::RecvCorrupt { src, tag } => ReplayEvent::CommRecvCorrupt {
                rank,
                src: src as u64,
                tag,
                vtime,
            },
            CommEventKind::Backoff { attempt } => ReplayEvent::CommBackoff {
                rank,
                attempt,
                vtime,
            },
            CommEventKind::PeerDead { peer } => ReplayEvent::CommPeerDead {
                rank,
                peer: peer as u64,
                vtime,
            },
            CommEventKind::Timeout { src } => ReplayEvent::CommTimeout {
                rank,
                src: src as u64,
                vtime,
            },
            CommEventKind::Collective { op } => ReplayEvent::CommCollective { rank, op, vtime },
            CommEventKind::Crash => ReplayEvent::CommCrash { rank, vtime },
            CommEventKind::Abort => ReplayEvent::CommAbort { rank, vtime },
        }
    }
}

impl From<ResilienceEvent> for ReplayEvent {
    fn from(e: ResilienceEvent) -> ReplayEvent {
        match e {
            ResilienceEvent::StaleExchange { iter, cu } => ReplayEvent::StaleExchange {
                iter,
                cu: cu as u64,
            },
            ResilienceEvent::Checkpoint { iter } => ReplayEvent::Checkpoint { iter },
            ResilienceEvent::Crash { app, iter, vtime } => ReplayEvent::Crash {
                app: app as u64,
                iter,
                vtime,
            },
            ResilienceEvent::Rollback { to_iter } => ReplayEvent::Rollback { to_iter },
            ResilienceEvent::Shrink { app, ranks_after } => ReplayEvent::Shrink {
                app: app as u64,
                ranks_after: ranks_after as u64,
            },
            ResilienceEvent::SdcDetected { iter, site } => ReplayEvent::SdcDetected { iter, site },
            ResilienceEvent::SdcRecovered { iter, cost } => {
                ReplayEvent::SdcRecovered { iter, cost }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_events() -> Vec<ReplayEvent> {
        vec![
            ReplayEvent::Send {
                rank: 0,
                dst: 1,
                tag: 7,
                bytes: 4096,
                vtime: 1.25e-3,
            },
            ReplayEvent::Recv {
                rank: 1,
                src: 0,
                tag: 7,
                vtime: 1.5e-3,
            },
            ReplayEvent::Collective {
                rank: 2,
                kind: CollectiveKind::Allreduce,
                group: 0,
                vtime: 2.0e-3,
            },
            ReplayEvent::Finish {
                rank: 0,
                vtime: 3.0e-3,
            },
            ReplayEvent::CommSend {
                rank: 3,
                dst: 2,
                tag: 99,
                seq: 5,
                dropped: true,
                duplicated: false,
                corrupted: false,
                vtime: 4.5e-6,
            },
            ReplayEvent::CommCollective {
                rank: 3,
                op: CollectiveOp::Allreduce,
                vtime: 6.0e-6,
            },
            ReplayEvent::Checkpoint { iter: 10 },
            ReplayEvent::Crash {
                app: 1,
                iter: 42,
                vtime: 100.5,
            },
            ReplayEvent::SdcDetected {
                iter: 33,
                site: SdcSite::SparseKernel,
            },
            ReplayEvent::SdcRecovered {
                iter: 33,
                cost: 2.25,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for ev in sample_events() {
            let mut enc = Encoder::new();
            ev.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let back = ReplayEvent::decode(&mut dec).unwrap();
            assert_eq!(back, ev);
            assert_eq!(dec.remaining(), 0);
        }
    }

    #[test]
    fn descriptions_match_error_message_style() {
        let recv = ReplayEvent::Recv {
            rank: 7,
            src: 3,
            tag: 0,
            vtime: 0.0,
        };
        assert_eq!(recv.describe(), "Recv{src:3}");
        let coll = ReplayEvent::Collective {
            rank: 7,
            kind: CollectiveKind::Allreduce,
            group: 0,
            vtime: 0.0,
        };
        assert_eq!(coll.describe(), "Collective{Allreduce}");
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut dec = Decoder::new(&[200u8]);
        assert!(matches!(
            ReplayEvent::decode(&mut dec),
            Err(WireError::Invalid { .. })
        ));
    }
}
