//! # cpx-replay
//!
//! Deterministic record/replay of coupled runs with strict divergence
//! detection and a golden-trace regression corpus.
//!
//! The workspace's simulation layers are deterministic by construction
//! — fault draws are pure functions of `(seed, src, dst, seq)`, the DES
//! scheduler's global event order is fixed, the threaded comm runtime's
//! per-rank event sequences are reproducible. This crate turns that
//! property into a testable contract:
//!
//! * [`event::ReplayEvent`] — one flattened event type covering every
//!   recorded nondeterminism source: DES scheduler events, comm-runtime
//!   events (with each message's fault-plan draw), and resilience
//!   decisions (checkpoint/crash/rollback/shrink/SDC).
//! * [`format::Trace`] — the versioned `.cpxr` container: magic header,
//!   schema version, length-prefixed records, per-record CRC-32. Every
//!   way a file can be wrong maps to a typed [`format::TraceError`].
//! * [`divergence::verify`] — strict event-by-event comparison of a
//!   replayed stream against a recorded one, failing fast with a
//!   [`divergence::DivergenceError`] that names the event index and
//!   the expected/observed kinds
//!   (`event 1041: expected Recv{src:3}, got Collective{Allreduce}`).
//! * [`golden`] — the committed `golden/<scenario>/` corpus and its
//!   record/check machinery; the `golden_check` binary drives it in CI.

pub mod critical;
pub mod divergence;
pub mod event;
pub mod format;
pub mod golden;
pub mod launcher;
pub mod multiproc;
pub mod wire;

pub use critical::{trace_critical, TraceCritical, TraceSpan};
pub use divergence::{verify, DivergenceError};
pub use event::ReplayEvent;
pub use format::{Trace, TraceError, MAGIC, SCHEMA_VERSION};
pub use golden::{
    check, generate, record, CheckFailure, GoldenArtifacts, GoldenFailure, SCENARIOS,
};
