//! Cross-backend equivalence check: run the `multiproc_smoke` scenario
//! across real OS processes over TCP and byte-compare every artifact
//! against the in-process backend and the committed golden corpus.
//!
//! ```text
//! multiproc_smoke [--corpus <dir>] [--port <base>] [--no-corpus]
//! multiproc_smoke --current-node <i> --port <base> --out <dir>   # internal
//! ```
//!
//! The parent re-execs itself once per node (the `mpirun`-without-a-
//! daemon model of [`cpx_comm::cluster`]); each child meshes up over
//! TCP, runs its ranks with event logging on, and writes a trace
//! fragment plus per-rank summary lines under `--out`. The parent
//! merges the fragments in rank order, renders the artifacts through
//! the exact code path the golden corpus uses, and demands byte
//! equality three ways: multi-process vs fresh in-process, and both vs
//! the committed `golden/multiproc_smoke/` files (unless `--no-corpus`).
//!
//! Any drift — a wire-framing bug, a virtual-time leak of host latency,
//! an ordering violation in the TCP transport — shows up as a named
//! artifact mismatch and a nonzero exit.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use cpx_comm::{run_node_obs, ClusterConfig, NodeObsOptions};
use cpx_obs::{
    cluster_chrome_trace_json, cluster_metrics_json, cluster_virtual_trace_json, NodeObs,
};
use cpx_replay::launcher::{spawn_node, wait_until, WaitOutcome};
use cpx_replay::multiproc::{self, RankSummary};
use cpx_replay::{ReplayEvent, Trace};

fn usage() -> ! {
    eprintln!(
        "usage: multiproc_smoke [--corpus <dir>] [--port <base>] [--no-corpus] [--obs-dir <dir>]\n\
         internal: multiproc_smoke --current-node <i> --port <base> --out <dir> [--obs]"
    );
    std::process::exit(2);
}

fn cluster(port: u16) -> ClusterConfig {
    ClusterConfig::local(multiproc::WORLD, multiproc::NODES, port, multiproc::SEED)
}

fn main() -> ExitCode {
    let mut current_node: Option<usize> = None;
    let mut port: u16 = 23700;
    let mut out: Option<PathBuf> = None;
    let mut corpus = PathBuf::from("golden");
    let mut check_corpus = true;
    let mut obs = false;
    let mut obs_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current-node" => {
                current_node = args.next().and_then(|s| s.parse().ok());
                if current_node.is_none() {
                    usage();
                }
            }
            "--port" => match args.next().and_then(|s| s.parse().ok()) {
                Some(p) => port = p,
                None => usage(),
            },
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--corpus" => corpus = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--no-corpus" => check_corpus = false,
            "--obs" => obs = true,
            "--obs-dir" => obs_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }

    match current_node {
        Some(node) => child(node, port, &out.unwrap_or_else(|| usage()), obs),
        None => parent(port, &corpus, check_corpus, obs_dir.as_deref()),
    }
}

/// One node of the distributed run: execute the scenario's local ranks
/// over the TCP mesh and leave a trace fragment plus summary lines for
/// the parent to merge.
fn child(node: usize, port: u16, out: &Path, obs: bool) -> ExitCode {
    let cfg = cluster(port);
    let opts = if obs {
        NodeObsOptions::full()
    } else {
        NodeObsOptions::default()
    };
    let (run, bundle) = match run_node_obs(
        multiproc::machine(),
        &cfg,
        node,
        multiproc::plan(),
        true,
        opts,
        multiproc::program,
    ) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("node {node}: mesh bring-up failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if obs {
        if let Err(e) = std::fs::write(out.join(format!("node{node}.obs.json")), bundle.encode()) {
            eprintln!("node {node}: writing obs bundle failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let fragment = Trace {
        label: multiproc::LABEL.to_string(),
        seed: multiproc::SEED,
        world_size: multiproc::WORLD as u32,
        events: run.log.into_iter().map(ReplayEvent::from).collect(),
    };
    if let Err(e) = fragment.save(&out.join(format!("node{node}.trace.cpxr"))) {
        eprintln!("node {node}: writing trace fragment failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut lines = String::new();
    for (&rank, rr) in run.ranks.iter().zip(&run.runs) {
        lines.push_str(&RankSummary::from_run(rank, rr).encode());
        lines.push('\n');
    }
    if let Err(e) = std::fs::write(out.join(format!("node{node}.ranks.txt")), lines) {
        eprintln!("node {node}: writing rank summaries failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Decode every `nodeN.obs.json` bundle from the scratch dir and write
/// the merged cluster artifacts under `dir`.
fn merge_obs(tmp: &Path, dir: &Path) -> std::io::Result<()> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut nodes = Vec::with_capacity(multiproc::NODES);
    for node in 0..multiproc::NODES {
        let text = std::fs::read_to_string(tmp.join(format!("node{node}.obs.json")))?;
        nodes
            .push(NodeObs::decode(&text).map_err(|e| bad(format!("node {node} obs bundle: {e}")))?);
    }
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("cluster_trace.json"),
        cluster_chrome_trace_json(&nodes),
    )?;
    std::fs::write(
        dir.join("cluster_trace_virtual.json"),
        cluster_virtual_trace_json(&nodes),
    )?;
    std::fs::write(
        dir.join("cluster_metrics.json"),
        cluster_metrics_json(&nodes, &[]).write_pretty(),
    )?;
    Ok(())
}

fn parent(port: u16, corpus: &Path, check_corpus: bool, obs_dir: Option<&Path>) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tmp = std::env::temp_dir().join(format!("cpx_multiproc_smoke_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&tmp) {
        eprintln!("cannot create scratch dir {}: {e}", tmp.display());
        return ExitCode::FAILURE;
    }

    let mut children = Vec::new();
    for node in 0..multiproc::NODES {
        let mut args = vec![
            "--current-node".to_string(),
            node.to_string(),
            "--port".to_string(),
            port.to_string(),
            "--out".to_string(),
            tmp.display().to_string(),
        ];
        if obs_dir.is_some() {
            args.push("--obs".to_string());
        }
        match spawn_node(&exe, &args) {
            Ok(c) => children.push(c),
            Err(e) => {
                eprintln!("spawning node {node} failed: {e}");
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return ExitCode::FAILURE;
            }
        }
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut ok = true;
    for (node, child) in children.iter_mut().enumerate() {
        match wait_until(child, deadline) {
            Ok(WaitOutcome::Exited(st)) if st.success() => {}
            Ok(WaitOutcome::Exited(st)) => {
                eprintln!("node {node} exited with {st}");
                ok = false;
            }
            Ok(WaitOutcome::TimedOut) => {
                eprintln!("node {node} timed out; killing the remaining children");
                ok = false;
            }
            Err(e) => {
                eprintln!("waiting for node {node} failed: {e}");
                ok = false;
            }
        }
    }
    if !ok {
        for mut c in children {
            let _ = c.kill();
            let _ = c.wait();
        }
        return ExitCode::FAILURE;
    }

    // Merge fragments. With the block partition of `ClusterConfig::
    // local`, node-order concatenation of the per-node (rank-ordered)
    // event logs *is* world rank order — the same order the in-process
    // backend emits. The assert pins that assumption.
    let cfg = cluster(port);
    let flat: Vec<usize> = cfg.node_ranks.iter().flatten().copied().collect();
    assert!(
        flat.windows(2).all(|w| w[0] < w[1]),
        "node partition must be block-ordered for rank-order merging"
    );
    let mut events = Vec::new();
    let mut summaries = Vec::new();
    for node in 0..multiproc::NODES {
        let frag = match Trace::load(&tmp.join(format!("node{node}.trace.cpxr"))) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("node {node} trace fragment unreadable: {e}");
                return ExitCode::FAILURE;
            }
        };
        events.extend(frag.events);
        let text = match std::fs::read_to_string(tmp.join(format!("node{node}.ranks.txt"))) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("node {node} rank summaries unreadable: {e}");
                return ExitCode::FAILURE;
            }
        };
        for line in text.lines() {
            match RankSummary::decode(line) {
                Some(s) => summaries.push(s),
                None => {
                    eprintln!("node {node} produced a malformed summary line: {line:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    summaries.sort_by_key(|s| s.rank);
    let merged = multiproc::artifacts(&summaries, events);

    // Three-way byte equality: multi-process vs in-process, then (by
    // transitivity) both vs the committed corpus.
    let mut failures = 0usize;
    let inproc = multiproc::run_inproc();
    if merged.trace != inproc.trace {
        eprintln!("FAIL trace: multi-process event stream differs from in-process");
        failures += 1;
    }
    if merged.report != inproc.report {
        eprintln!("FAIL report.md: multi-process rendering differs from in-process");
        failures += 1;
    }
    if merged.bench != inproc.bench {
        eprintln!("FAIL bench.json: multi-process rendering differs from in-process");
        failures += 1;
    }
    if check_corpus {
        let dir = corpus.join(multiproc::LABEL);
        match Trace::load(&dir.join("trace.cpxr")) {
            Ok(committed) if committed == merged.trace => {}
            Ok(_) => {
                eprintln!("FAIL trace.cpxr: multi-process trace differs from the committed corpus");
                failures += 1;
            }
            Err(e) => {
                eprintln!("FAIL trace.cpxr: committed trace unreadable: {e}");
                failures += 1;
            }
        }
        for (file, fresh) in [
            ("report.md", merged.report.as_bytes()),
            ("bench.json", merged.bench.as_bytes()),
        ] {
            match std::fs::read(dir.join(file)) {
                Ok(committed) if committed == fresh => {}
                Ok(_) => {
                    eprintln!("FAIL {file}: multi-process bytes differ from the committed corpus");
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("FAIL {file}: committed artifact unreadable: {e}");
                    failures += 1;
                }
            }
        }
    }

    // Merge the per-node observability bundles into one cross-node
    // Chrome trace (plus the byte-deterministic virtual-only variant
    // CI compares across runs) and one cluster metrics snapshot.
    if let Some(dir) = obs_dir {
        match merge_obs(&tmp, dir) {
            Ok(()) => println!(
                "ok  observability: merged {} node bundles into {}",
                multiproc::NODES,
                dir.display()
            ),
            Err(e) => {
                eprintln!("FAIL observability merge: {e}");
                failures += 1;
            }
        }
    }

    let _ = std::fs::remove_dir_all(&tmp);
    if failures > 0 {
        eprintln!("{failures} artifact comparison(s) failed");
        ExitCode::FAILURE
    } else {
        println!(
            "ok  multiproc_smoke: {} ranks over {} processes, {} events, \
             artifacts byte-identical to the in-process backend{}",
            multiproc::WORLD,
            multiproc::NODES,
            merged.trace.events.len(),
            if check_corpus {
                " and the committed corpus"
            } else {
                ""
            }
        );
        ExitCode::SUCCESS
    }
}
