//! Golden-corpus driver: replays every committed scenario under
//! `golden/` and verifies trace, report and JSON byte-for-byte.
//!
//! ```text
//! golden_check [--corpus <dir>] [--diff-dir <dir>]   # check (default)
//! golden_check --record [--corpus <dir>]             # regenerate corpus
//! golden_check --overhead                            # recorder overhead gate
//! ```
//!
//! On a divergence the fresh trace and a unified-ish textual diff of
//! the mismatching artifact are written under the diff directory
//! (default `target/golden_diff/<scenario>/`) so CI can upload them.

use std::path::PathBuf;
use std::process::ExitCode;

use cpx_core::coupled_program;
use cpx_core::prelude::*;
use cpx_machine::Replayer;
use cpx_replay::golden;

fn usage() -> ! {
    eprintln!("usage: golden_check [--record] [--overhead] [--corpus <dir>] [--diff-dir <dir>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut record = false;
    let mut overhead = false;
    let mut corpus = PathBuf::from("golden");
    let mut diff_dir = PathBuf::from("target/golden_diff");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--record" => record = true,
            "--overhead" => overhead = true,
            "--corpus" => corpus = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--diff-dir" => diff_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    if overhead {
        return overhead_gate();
    }

    if record {
        for name in golden::SCENARIOS {
            match golden::record(name, &corpus) {
                Ok(()) => println!("recorded {name}"),
                Err(e) => {
                    eprintln!("FAILED to record {name}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = 0usize;
    for name in golden::SCENARIOS {
        match golden::check(name, &corpus) {
            Ok(()) => println!("ok  {name}"),
            Err(fail) => {
                let (failure, fresh) = *fail;
                failed += 1;
                eprintln!("FAIL {name}: {failure}");
                if let Some(fresh) = fresh {
                    let dir = diff_dir.join(name);
                    if let Err(e) = std::fs::create_dir_all(&dir) {
                        eprintln!("  (could not create {}: {e})", dir.display());
                        continue;
                    }
                    // The diverging fresh trace, for offline comparison
                    // with the committed one.
                    if let Err(e) = fresh.trace.save(&dir.join("fresh_trace.cpxr")) {
                        eprintln!("  (could not write fresh trace: {e})");
                    }
                    let _ = std::fs::write(dir.join("fresh_report.md"), &fresh.report);
                    let _ = std::fs::write(dir.join("fresh_bench.json"), &fresh.bench);
                    for file in ["report.md", "bench.json"] {
                        if let Ok(committed) = std::fs::read_to_string(corpus.join(name).join(file))
                        {
                            let fresh_text = match file {
                                "report.md" => &fresh.report,
                                _ => &fresh.bench,
                            };
                            let diff = line_diff(&committed, fresh_text);
                            if !diff.is_empty() {
                                let _ = std::fs::write(dir.join(format!("{file}.diff")), diff);
                            }
                        }
                    }
                    eprintln!("  diff artifacts under {}", dir.display());
                }
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} scenario(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Minimal line-oriented diff: paired `-`/`+` lines where the texts
/// disagree. Good enough to see *what* changed in CI logs.
fn line_diff(committed: &str, fresh: &str) -> String {
    if committed == fresh {
        return String::new();
    }
    let a: Vec<&str> = committed.lines().collect();
    let b: Vec<&str> = fresh.lines().collect();
    let mut out = String::new();
    let n = a.len().max(b.len());
    for i in 0..n {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if x == y => {}
            (x, y) => {
                if let Some(x) = x {
                    out.push_str(&format!("{}: -{x}\n", i + 1));
                }
                if let Some(y) = y {
                    out.push_str(&format!("{}: +{y}\n", i + 1));
                }
            }
        }
    }
    out
}

/// The <5% recorder-overhead acceptance gate: wall-clock the traced
/// coupled run (DES replay with logging hooks on + coupled model +
/// report) against the untraced one, reusing the event buffer via
/// [`Replayer::run_logged_into`] — the recommended shape for repeated
/// recording. Interleaved best-of-fifty to cancel frequency/cache
/// drift between the two measurement series.
///
/// The DesEvent → ReplayEvent mapping and trace serialization happen
/// *after* the run returns, so they cannot perturb anything the run
/// measures; their cost is reported separately for transparency but is
/// not part of the gate.
fn overhead_gate() -> ExitCode {
    let scenario = testcases::small_150m_28m(StcVariant::Base);
    let machine = Machine::archer2();
    let models = model::build_models_with_grid(&scenario, &machine, 20.0, &[100, 400, 1600, 6400]);
    let alloc = model::allocate_scenario(&models, 310);
    let (program, _) = coupled_program(&scenario, &alloc, &machine, 5);
    let replayer = Replayer::new(machine.clone());

    let mut log = Vec::new();
    let mut events: Vec<cpx_replay::ReplayEvent> = Vec::new();

    // Warm up both paths.
    for _ in 0..3 {
        replayer.run(&program).expect("replays");
        replayer
            .run_logged_into(&program, &mut log)
            .expect("replays");
    }

    let mut plain = f64::INFINITY;
    let mut logged = f64::INFINITY;
    for _ in 0..50 {
        let t0 = std::time::Instant::now();
        std::hint::black_box(replayer.run(&program).expect("replays"));
        let run = sim::run_coupled(&scenario, &alloc, &machine, 5);
        std::hint::black_box(markdown_report(&scenario, &alloc, &run).len());
        plain = plain.min(t0.elapsed().as_secs_f64());

        let t1 = std::time::Instant::now();
        replayer
            .run_logged_into(&program, &mut log)
            .expect("replays");
        let run = sim::run_coupled(&scenario, &alloc, &machine, 5);
        std::hint::black_box(markdown_report(&scenario, &alloc, &run).len());
        logged = logged.min(t1.elapsed().as_secs_f64());
    }

    // Post-run trace assembly, reported for context (not gated: it runs
    // after the traced run has finished).
    let mut assemble = f64::INFINITY;
    for _ in 0..20 {
        let t = std::time::Instant::now();
        events.clear();
        events.extend(log.iter().map(|e| cpx_replay::ReplayEvent::from(*e)));
        std::hint::black_box(events.len());
        assemble = assemble.min(t.elapsed().as_secs_f64());
    }
    println!(
        "post-run trace assembly ({} events): {:.3} ms",
        events.len(),
        assemble * 1e3
    );
    let overhead = (logged - plain) / plain;
    println!(
        "recorder overhead: plain {:.3} ms, logged {:.3} ms, overhead {:+.2}%",
        plain * 1e3,
        logged * 1e3,
        overhead * 1e2
    );
    if overhead < 0.05 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "recorder overhead {:.2}% exceeds the 5% gate",
            overhead * 1e2
        );
        ExitCode::FAILURE
    }
}
