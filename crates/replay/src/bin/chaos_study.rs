//! Crash chaos harness: real worker processes, real SIGKILLs, and the
//! shrink-recovery protocol picking up the pieces.
//!
//! ```text
//! chaos_study [--trials N] [--base-seed S] [--port <base>] [--report <path>]
//! chaos_study --current-node <i> --port <base> --seed <s> --out <dir>  # internal
//! ```
//!
//! Each trial launches an 8-rank resilient run split over 4 OS
//! processes (2 ranks each) connected by TCP, then — at a seeded delay
//! mid-run — SIGKILLs one whole worker process. That is a *real* crash:
//! no fault plan, no cooperative unwind; the victim's sockets drop and
//! the survivors' failure detector (EOF-without-goodbye, heartbeat
//! fallback) maps the dead node onto dead-rank marks, which send the
//! ULFM-style revoke → agree → shrink → rollback recovery of
//! [`cpx_comm::resilient_loop`] through its paces.
//!
//! The trial passes only if every surviving rank completes all
//! iterations, counts exactly the victim's ranks in `faults_survived`,
//! finishes in the shrunken group, and agrees bit-for-bit on the final
//! value with every other survivor. The kill schedule (victim node,
//! delay) is a pure function of the trial seed, so failures reproduce.
//! A JSON resilience report of every trial is written for CI upload.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use cpx_comm::{
    resilient_loop, run_node_obs, ClusterConfig, NodeObsOptions, RankOutcome, ResilientConfig,
};
use cpx_machine::{KernelCost, Machine};
use cpx_obs::json::Json;
use cpx_obs::{cluster_chrome_trace_json, cluster_metrics_json, NodeObs};
use cpx_replay::launcher::{seed_mix, spawn_node, wait_until, WaitOutcome};

/// World shape: 8 ranks over 4 processes, 2 ranks per process.
const WORLD: usize = 8;
const NODES: usize = 4;

/// Iterations and checkpoint cadence of the resilient loop. Each
/// iteration sleeps ~3 ms of wall clock (below), so a run takes >= 1.5 s
/// — comfortably past the latest possible kill, which guarantees the
/// SIGKILL always lands mid-run.
const ITERS: usize = 500;
const CKPT_EVERY: usize = 10;

/// Kill delay window (milliseconds after spawning the workers). The
/// lower bound leaves loopback mesh bring-up well behind; the upper
/// bound stays far below the >= 1.5 s run time.
const KILL_MIN_MS: u64 = 250;
const KILL_SPREAD_MS: u64 = 400;

fn usage() -> ! {
    eprintln!(
        "usage: chaos_study [--trials N] [--base-seed S] [--port <base>] [--report <path>]\n\
         \x20                  [--obs-dir <dir>] [--metrics-port <base>]\n\
         internal: chaos_study --current-node <i> --port <base> --seed <s> --out <dir>\n\
         \x20         [--obs] [--metrics-addr <addr>]"
    );
    std::process::exit(2);
}

fn cluster(port: u16, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::local(WORLD, NODES, port, seed);
    // EOF detection catches a SIGKILLed peer in milliseconds; the
    // heartbeat timeout is the fallback for wedged-but-connected peers,
    // and 1 s keeps even that path short.
    cfg.heartbeat_timeout = Duration::from_millis(1000);
    cfg
}

/// One surviving rank's report line, as written by the children and
/// parsed back by the parent (value as raw bits, so the cross-survivor
/// agreement check is exact).
struct ChaosRank {
    rank: usize,
    completed_iters: usize,
    faults_survived: usize,
    rollbacks: usize,
    final_group_size: usize,
    value: f64,
}

impl ChaosRank {
    fn encode(&self) -> String {
        format!(
            "{} {} {} {} {} {}",
            self.rank,
            self.completed_iters,
            self.faults_survived,
            self.rollbacks,
            self.final_group_size,
            self.value.to_bits()
        )
    }

    fn decode(line: &str) -> Option<ChaosRank> {
        let mut it = line.split_whitespace();
        let mut next = || it.next()?.parse::<u64>().ok();
        let out = ChaosRank {
            rank: next()? as usize,
            completed_iters: next()? as usize,
            faults_survived: next()? as usize,
            rollbacks: next()? as usize,
            final_group_size: next()? as usize,
            value: f64::from_bits(next()?),
        };
        if it.next().is_some() {
            return None;
        }
        Some(out)
    }
}

fn main() -> ExitCode {
    let mut current_node: Option<usize> = None;
    let mut port: u16 = 23800;
    let mut seed: u64 = 0xC4A05;
    let mut out: Option<PathBuf> = None;
    let mut trials: usize = 3;
    let mut report_path = PathBuf::from("target/chaos_report.json");
    let mut obs = false;
    let mut obs_dir: Option<PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut metrics_port: Option<u16> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current-node" => {
                current_node = args.next().and_then(|s| s.parse().ok());
                if current_node.is_none() {
                    usage();
                }
            }
            "--port" => match args.next().and_then(|s| s.parse().ok()) {
                Some(p) => port = p,
                None => usage(),
            },
            "--seed" | "--base-seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => usage(),
            },
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--trials" => match args.next().and_then(|s| s.parse().ok()) {
                Some(t) => trials = t,
                None => usage(),
            },
            "--report" => report_path = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--obs" => obs = true,
            "--obs-dir" => obs_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--metrics-addr" => metrics_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-port" => match args.next().and_then(|s| s.parse().ok()) {
                Some(p) => metrics_port = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let opts = ObsSetup {
        obs_dir,
        metrics_port,
    };
    match current_node {
        Some(node) => child(
            node,
            port,
            seed,
            &out.unwrap_or_else(|| usage()),
            obs,
            metrics_addr,
        ),
        None => parent(trials, seed, port, &report_path, &opts),
    }
}

/// Parent-side observability switches: where to put merged per-trial
/// artifacts, and the base port for the children's `/metrics` servers.
struct ObsSetup {
    obs_dir: Option<PathBuf>,
    metrics_port: Option<u16>,
}

/// One worker process: run the resilient loop on this node's ranks.
/// The per-iteration sleep stretches wall-clock time so the parent's
/// SIGKILL lands mid-computation; all *simulated* time stays virtual.
fn child(
    node: usize,
    port: u16,
    seed: u64,
    out: &Path,
    obs: bool,
    metrics_addr: Option<String>,
) -> ExitCode {
    let cfg = cluster(port, seed);
    let rcfg = ResilientConfig::new(ITERS, CKPT_EVERY);
    // A bare plan: no injected link faults — the only failures in a
    // chaos trial are the real SIGKILLs.
    let plan = cpx_comm::FaultPlan::new(seed);
    let opts = NodeObsOptions {
        traced: obs,
        wall: obs,
        net_stats: obs || metrics_addr.is_some(),
        metrics_addr,
    };
    let (run, bundle) = match run_node_obs(Machine::archer2(), &cfg, node, plan, false, opts, {
        move |ctx| {
            resilient_loop(ctx, &rcfg, |ctx, _iter| {
                std::thread::sleep(Duration::from_millis(3));
                ctx.compute(KernelCost::flops(5e5 * (ctx.rank() + 1) as f64));
                (ctx.rank() + 1) as f64
            })
        }
    }) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("node {node}: mesh bring-up failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if obs {
        if let Err(e) = std::fs::write(out.join(format!("node{node}.obs.json")), bundle.encode()) {
            eprintln!("node {node}: writing obs bundle failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut lines = String::new();
    for (&rank, rr) in run.ranks.iter().zip(&run.runs) {
        match &rr.outcome {
            RankOutcome::Completed(report) => {
                lines.push_str(
                    &ChaosRank {
                        rank,
                        completed_iters: report.completed_iters,
                        faults_survived: report.faults_survived,
                        rollbacks: report.rollbacks,
                        final_group_size: report.final_group_size,
                        value: report.value,
                    }
                    .encode(),
                );
                lines.push('\n');
            }
            other => {
                eprintln!("node {node}: rank {rank} did not complete: {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(out.join(format!("node{node}.txt")), lines) {
        eprintln!("node {node}: writing report failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Blocking `GET <path>` against a loopback observability endpoint;
/// returns the response body on a 200.
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if !raw.starts_with("HTTP/1.1 200") {
        return Err(bad(&format!(
            "unexpected status line: {:?}",
            raw.lines().next().unwrap_or("")
        )));
    }
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(bad("no header/body separator in response")),
    }
}

/// Probe one node's live `/healthz` + `/metrics` mid-trial; returns a
/// JSON record of what the endpoint reported, or an error string.
fn probe_metrics(addr: &str) -> Result<Json, String> {
    let health = http_get(addr, "/healthz").map_err(|e| format!("/healthz: {e}"))?;
    let health = Json::parse(&health).map_err(|e| format!("/healthz parse: {e}"))?;
    let metrics = http_get(addr, "/metrics").map_err(|e| format!("/metrics: {e}"))?;
    let metrics = Json::parse(&metrics).map_err(|e| format!("/metrics parse: {e}"))?;
    let num = |j: &Json, key: &str| j.get(key).and_then(Json::as_f64).unwrap_or(-1.0);
    let live = metrics
        .get("live_peers")
        .and_then(|j| match j {
            Json::Arr(a) => Some(a.len() as f64),
            _ => None,
        })
        .unwrap_or(-1.0);
    Ok(Json::obj(vec![
        ("addr", Json::Str(addr.to_string())),
        ("status", Json::Str("ok".to_string())),
        ("generation", Json::Num(num(&metrics, "generation"))),
        ("live_peers", Json::Num(live)),
        ("health_generation", Json::Num(num(&health, "generation"))),
    ]))
}

/// Run one seeded trial; returns the trial's JSON record and whether it
/// passed.
fn run_trial(exe: &Path, trial: usize, seed: u64, base_port: u16, obs: &ObsSetup) -> (Json, bool) {
    let port = base_port + (trial * NODES) as u16;
    let cfg = cluster(port, seed);
    let kill_delay = Duration::from_millis(KILL_MIN_MS + seed_mix(seed) % KILL_SPREAD_MS);
    // Node 0 always survives so at least one multi-rank process drives
    // the recovery; any of the others can be the victim.
    let victim = 1 + (seed_mix(seed ^ 0xD1E) % (NODES as u64 - 1)) as usize;
    let victim_ranks = cfg.node_ranks[victim].clone();
    let mut failures: Vec<String> = Vec::new();

    let tmp = std::env::temp_dir().join(format!("cpx_chaos_{}_{trial}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&tmp) {
        failures.push(format!("cannot create scratch dir: {e}"));
    }

    // Per-trial metrics ports, offset like the mesh ports so back-to-
    // back trials never race a lingering listener.
    let metrics_port_of = |node: usize| {
        obs.metrics_port
            .map(|base| base + (trial * NODES + node) as u16)
    };

    let started = Instant::now();
    let mut children = Vec::new();
    for node in 0..NODES {
        let mut args = vec![
            "--current-node".to_string(),
            node.to_string(),
            "--port".to_string(),
            port.to_string(),
            "--seed".to_string(),
            seed.to_string(),
            "--out".to_string(),
            tmp.display().to_string(),
        ];
        if obs.obs_dir.is_some() {
            args.push("--obs".to_string());
        }
        if let Some(mp) = metrics_port_of(node) {
            args.push("--metrics-addr".to_string());
            args.push(format!("127.0.0.1:{mp}"));
        }
        match spawn_node(exe, &args) {
            Ok(c) => children.push(Some(c)),
            Err(e) => {
                failures.push(format!("spawning node {node} failed: {e}"));
                children.push(None);
            }
        }
    }

    // The kill: SIGKILL the whole victim process mid-run. No unwind
    // runs in the victim; its sockets simply drop.
    std::thread::sleep(kill_delay);
    if let Some(Some(victim_child)) = children.get_mut(victim) {
        let _ = victim_child.kill();
        let _ = victim_child.wait();
    }

    // With the victim down and the survivors still looping (the run
    // outlasts the latest kill by >= 850 ms), hit node 0's live
    // endpoint: this is the observability plane observed *during* a
    // recovery, not after the fact.
    let probe = metrics_port_of(0).map(|mp| {
        std::thread::sleep(Duration::from_millis(200));
        match probe_metrics(&format!("127.0.0.1:{mp}")) {
            Ok(record) => record,
            Err(e) => {
                failures.push(format!("metrics probe failed: {e}"));
                Json::obj(vec![("status", Json::Str(e))])
            }
        }
    });

    let deadline = Instant::now() + Duration::from_secs(180);
    for (node, slot) in children.iter_mut().enumerate() {
        if node == victim {
            continue;
        }
        match slot.as_mut().map(|c| wait_until(c, deadline)) {
            Some(Ok(WaitOutcome::Exited(st))) if st.success() => {}
            Some(Ok(WaitOutcome::Exited(st))) => {
                failures.push(format!("survivor node {node} exited with {st}"));
            }
            Some(Ok(WaitOutcome::TimedOut)) => {
                failures.push(format!("survivor node {node} timed out"));
            }
            Some(Err(e)) => failures.push(format!("waiting for node {node} failed: {e}")),
            None => {} // spawn already failed and was recorded
        }
    }
    for slot in children.iter_mut().flatten() {
        let _ = slot.kill();
        let _ = slot.wait();
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Collect and check every surviving rank.
    let mut survivors: Vec<ChaosRank> = Vec::new();
    for node in 0..NODES {
        if node == victim {
            continue;
        }
        match std::fs::read_to_string(tmp.join(format!("node{node}.txt"))) {
            Ok(text) => {
                for line in text.lines() {
                    match ChaosRank::decode(line) {
                        Some(r) => survivors.push(r),
                        None => failures.push(format!("node {node}: malformed line {line:?}")),
                    }
                }
            }
            Err(e) => failures.push(format!("node {node} report unreadable: {e}")),
        }
    }
    survivors.sort_by_key(|r| r.rank);
    let expected_survivors: Vec<usize> = (0..WORLD).filter(|r| !victim_ranks.contains(r)).collect();
    if survivors.iter().map(|r| r.rank).collect::<Vec<_>>() != expected_survivors {
        failures.push(format!(
            "expected survivor ranks {expected_survivors:?}, got {:?}",
            survivors.iter().map(|r| r.rank).collect::<Vec<_>>()
        ));
    }
    for r in &survivors {
        if r.completed_iters != ITERS {
            failures.push(format!(
                "rank {}: completed {}/{ITERS} iterations",
                r.rank, r.completed_iters
            ));
        }
        if r.faults_survived != victim_ranks.len() {
            failures.push(format!(
                "rank {}: survived {} fault(s), expected {}",
                r.rank,
                r.faults_survived,
                victim_ranks.len()
            ));
        }
        if r.final_group_size != WORLD - victim_ranks.len() {
            failures.push(format!(
                "rank {}: finished in a group of {}, expected {}",
                r.rank,
                r.final_group_size,
                WORLD - victim_ranks.len()
            ));
        }
        if r.rollbacks == 0 {
            failures.push(format!("rank {}: no rollback despite a real crash", r.rank));
        }
    }
    // Every survivor must agree bit-for-bit on the final value: the
    // uniform-agreement property of the recovery protocol, observed
    // end-to-end through real process deaths.
    if let Some(first) = survivors.first() {
        for r in &survivors[1..] {
            if r.value.to_bits() != first.value.to_bits() {
                failures.push(format!(
                    "ranks {} and {} disagree on the final value ({} vs {})",
                    first.rank, r.rank, first.value, r.value
                ));
            }
        }
    }
    // Merge the surviving nodes' observability bundles. The victim
    // never writes one — a SIGKILL leaves no bundle behind — so the
    // merged trace shows exactly the processes that lived to report.
    if let Some(dir) = &obs.obs_dir {
        let mut bundles = Vec::new();
        for node in 0..NODES {
            if node == victim {
                continue;
            }
            let path = tmp.join(format!("node{node}.obs.json"));
            match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| NodeObs::decode(&text).map_err(|e| e.to_string()))
            {
                Ok(b) => bundles.push(b),
                Err(e) => failures.push(format!("node {node} obs bundle: {e}")),
            }
        }
        if !bundles.is_empty() {
            let trial_dir = dir.join(format!("trial{trial}"));
            let extra = [("trial_seed", Json::Num(seed as f64))];
            let written = std::fs::create_dir_all(&trial_dir)
                .and_then(|()| {
                    std::fs::write(
                        trial_dir.join("cluster_trace.json"),
                        cluster_chrome_trace_json(&bundles),
                    )
                })
                .and_then(|()| {
                    std::fs::write(
                        trial_dir.join("cluster_metrics.json"),
                        cluster_metrics_json(&bundles, &extra).write_pretty(),
                    )
                });
            if let Err(e) = written {
                failures.push(format!("writing trial obs artifacts: {e}"));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);

    let passed = failures.is_empty();
    let record = Json::obj(vec![
        ("seed", Json::Num(seed as f64)),
        ("victim_node", Json::Num(victim as f64)),
        (
            "killed_ranks",
            Json::Arr(victim_ranks.iter().map(|&r| Json::Num(r as f64)).collect()),
        ),
        ("kill_delay_ms", Json::Num(kill_delay.as_millis() as f64)),
        ("wall_ms", Json::Num(wall_ms)),
        (
            "survivors",
            Json::Arr(
                survivors
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("rank", Json::Num(r.rank as f64)),
                            ("completed_iters", Json::Num(r.completed_iters as f64)),
                            ("faults_survived", Json::Num(r.faults_survived as f64)),
                            ("rollbacks", Json::Num(r.rollbacks as f64)),
                            ("final_group_size", Json::Num(r.final_group_size as f64)),
                            ("value", Json::Num(r.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "metrics_probe",
            probe.unwrap_or(Json::Str("disabled".to_string())),
        ),
        (
            "failures",
            Json::Arr(failures.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
        ("passed", Json::Bool(passed)),
    ]);
    for f in &failures {
        eprintln!("trial seed {seed}: {f}");
    }
    (record, passed)
}

fn parent(
    trials: usize,
    base_seed: u64,
    base_port: u16,
    report_path: &Path,
    obs: &ObsSetup,
) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut records = Vec::new();
    let mut passed = 0usize;
    for trial in 0..trials {
        let seed = base_seed.wrapping_add(trial as u64);
        let (record, ok) = run_trial(&exe, trial, seed, base_port, obs);
        if ok {
            passed += 1;
            println!("ok  chaos trial {trial} (seed {seed})");
        } else {
            eprintln!("FAIL chaos trial {trial} (seed {seed})");
        }
        records.push(record);
    }
    let report = Json::obj(vec![
        ("schema_version", Json::Num(1.0)),
        ("world_size", Json::Num(WORLD as f64)),
        ("nodes", Json::Num(NODES as f64)),
        ("iters", Json::Num(ITERS as f64)),
        ("ckpt_every", Json::Num(CKPT_EVERY as f64)),
        ("trials", Json::Num(trials as f64)),
        ("passed", Json::Num(passed as f64)),
        ("runs", Json::Arr(records)),
    ])
    .write_pretty();
    if let Some(dir) = report_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(report_path, report) {
        eprintln!("writing {} failed: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "chaos: {passed}/{trials} trials survived a mid-run SIGKILL; report at {}",
        report_path.display()
    );
    if passed == trials {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
