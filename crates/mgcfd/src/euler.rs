//! Cell-centred compressible Euler numerics.
//!
//! The flux scheme is Rusanov (local Lax–Friedrichs) over the mesh's
//! interior faces, with the face direction taken along the line of
//! centroids — first-order, robust and strictly conservative, which is
//! what a performance mini-app needs (MG-CFD itself is a stripped-down
//! kernel-faithful proxy, not a production solver). Boundaries are
//! closed (no boundary faces ⇒ zero boundary flux), so mass and total
//! energy are conserved exactly — the invariants the tests pin down.
//!
//! Multigrid: coarse levels are smoothed from the volume-weighted
//! restricted state and the correction is injected back. Restriction and
//! injection are volume-consistent, so multigrid preserves the
//! conservation invariants too.

use cpx_mesh::{MeshHierarchy, UnstructuredMesh};

/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;

/// Conserved variables per cell: `[ρ, ρu, ρv, ρw, E]`.
pub type Conserved = [f64; 5];

/// Pointwise flux of the Euler equations in direction `n` (unit).
fn flux(u: &Conserved, n: [f64; 3]) -> Conserved {
    let rho = u[0];
    let inv_rho = 1.0 / rho;
    let vel = [u[1] * inv_rho, u[2] * inv_rho, u[3] * inv_rho];
    let vn = vel[0] * n[0] + vel[1] * n[1] + vel[2] * n[2];
    let ke = 0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
    let p = (GAMMA - 1.0) * (u[4] - ke);
    [
        rho * vn,
        u[1] * vn + p * n[0],
        u[2] * vn + p * n[1],
        u[3] * vn + p * n[2],
        (u[4] + p) * vn,
    ]
}

/// Pressure of a state.
pub fn pressure(u: &Conserved) -> f64 {
    let inv_rho = 1.0 / u[0];
    let ke = 0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) * inv_rho;
    (GAMMA - 1.0) * (u[4] - ke)
}

/// Acoustic + convective wave speed bound of a state.
pub fn wave_speed(u: &Conserved) -> f64 {
    let inv_rho = 1.0 / u[0];
    let speed = ((u[1] * u[1] + u[2] * u[2] + u[3] * u[3]).sqrt()) * inv_rho;
    let p = pressure(u);
    let a = (GAMMA * p * inv_rho).max(0.0).sqrt();
    speed + a
}

/// Rusanov numerical flux across a face from `ua` to `ub` along unit
/// normal `n`.
fn rusanov(ua: &Conserved, ub: &Conserved, n: [f64; 3]) -> Conserved {
    let fa = flux(ua, n);
    let fb = flux(ub, n);
    let smax = wave_speed(ua).max(wave_speed(ub));
    let mut out = [0.0; 5];
    for i in 0..5 {
        out[i] = 0.5 * (fa[i] + fb[i]) - 0.5 * smax * (ub[i] - ua[i]);
    }
    out
}

/// Outward boundary area vector of each cell: minus the sum of its
/// interior outward face-area vectors (a closed cell's faces sum to
/// zero, so this is the area vector of the missing wall).
pub fn boundary_vectors(mesh: &UnstructuredMesh) -> Vec<[f64; 3]> {
    let mut bv = vec![[0.0f64; 3]; mesh.n_cells()];
    for &(a, b, area) in &mesh.faces {
        let d = [
            mesh.coords[b][0] - mesh.coords[a][0],
            mesh.coords[b][1] - mesh.coords[a][1],
            mesh.coords[b][2] - mesh.coords[a][2],
        ];
        let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        for i in 0..3 {
            let n = d[i] / len;
            bv[a][i] -= n * area; // outward from a is +n; wall deficit -=
            bv[b][i] += n * area; // outward from b is -n
        }
    }
    // bv currently holds −Σ outward face vectors = the wall area vector.
    bv
}

/// Residual (net flux divergence) of a state on a mesh: `res[c] =
/// −Σ_faces F·A − p·A_wall` such that the explicit update is
/// `u += dt/vol · res`. The wall term is the slip-wall pressure flux of
/// the cell's boundary area vector; with it, a uniform quiescent gas is
/// an exact steady state.
pub fn residual(mesh: &UnstructuredMesh, state: &[Conserved]) -> Vec<Conserved> {
    residual_with_walls(mesh, state, &boundary_vectors(mesh))
}

/// As [`residual`], with precomputed boundary vectors.
pub fn residual_with_walls(
    mesh: &UnstructuredMesh,
    state: &[Conserved],
    walls: &[[f64; 3]],
) -> Vec<Conserved> {
    let mut res = vec![[0.0; 5]; state.len()];
    for &(a, b, area) in &mesh.faces {
        let d = [
            mesh.coords[b][0] - mesh.coords[a][0],
            mesh.coords[b][1] - mesh.coords[a][1],
            mesh.coords[b][2] - mesh.coords[a][2],
        ];
        let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        let n = [d[0] / len, d[1] / len, d[2] / len];
        let f = rusanov(&state[a], &state[b], n);
        for i in 0..5 {
            res[a][i] -= f[i] * area;
            res[b][i] += f[i] * area;
        }
    }
    // Slip-wall pressure flux: only momentum components, no mass or
    // energy transfer (so conservation of both is untouched).
    for c in 0..state.len() {
        let p = pressure(&state[c]);
        for i in 0..3 {
            res[c][1 + i] -= p * walls[c][i];
        }
    }
    res
}

/// The MG-CFD solver: a state on a mesh hierarchy.
#[derive(Debug, Clone)]
pub struct EulerSolver {
    /// The mesh hierarchy (finest first).
    pub hierarchy: MeshHierarchy,
    /// State on the finest mesh.
    pub state: Vec<Conserved>,
    /// CFL number for explicit pseudo-timesteps.
    pub cfl: f64,
}

impl EulerSolver {
    /// Initialise with a quiescent state plus a smooth density/energy
    /// perturbation (an acoustic pulse the solver then damps out).
    pub fn acoustic_pulse(hierarchy: MeshHierarchy, amplitude: f64) -> EulerSolver {
        let mesh = &hierarchy.levels[0];
        let (xlo, xhi) = mesh.x_range();
        let mid = 0.5 * (xlo + xhi);
        let width = (xhi - xlo).max(f64::MIN_POSITIVE) / 4.0;
        let state = mesh
            .coords
            .iter()
            .map(|c| {
                let r2 = ((c[0] - mid) / width).powi(2);
                let rho = 1.0 + amplitude * (-r2).exp();
                let p = rho.powf(GAMMA); // isentropic pulse
                [rho, 0.0, 0.0, 0.0, p / (GAMMA - 1.0)]
            })
            .collect();
        EulerSolver {
            hierarchy,
            state,
            cfl: 0.4,
        }
    }

    /// The finest mesh.
    pub fn mesh(&self) -> &UnstructuredMesh {
        &self.hierarchy.levels[0]
    }

    /// Stable explicit timestep of `state` on `mesh` under this CFL.
    fn stable_dt(&self, mesh: &UnstructuredMesh, state: &[Conserved]) -> f64 {
        let mut min_dt = f64::INFINITY;
        for &(a, b, _) in &mesh.faces {
            let d = [
                mesh.coords[b][0] - mesh.coords[a][0],
                mesh.coords[b][1] - mesh.coords[a][1],
                mesh.coords[b][2] - mesh.coords[a][2],
            ];
            let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let s = wave_speed(&state[a]).max(wave_speed(&state[b]));
            if s > 0.0 {
                min_dt = min_dt.min(len / s);
            }
        }
        self.cfl * if min_dt.is_finite() { min_dt } else { 1.0 }
    }

    /// One multistage Runge–Kutta timestep on the finest level (the
    /// scheme MG-CFD/production density solvers actually run; `alphas`
    /// are the stage coefficients, e.g. the classic 3-stage
    /// `[0.1481, 0.4, 1.0]`). Each stage re-evaluates the residual at
    /// the stage state; conservation holds stage-wise because the
    /// residual operator is conservative.
    pub fn step_rk(&mut self, alphas: &[f64]) {
        assert!(!alphas.is_empty());
        let mesh = &self.hierarchy.levels[0];
        let dt = self.stable_dt(mesh, &self.state);
        let u0 = self.state.clone();
        for &alpha in alphas {
            let res = residual(mesh, &self.state);
            for c in 0..self.state.len() {
                let f = alpha * dt / mesh.volumes[c];
                for i in 0..5 {
                    self.state[c][i] = u0[c][i] + f * res[c][i];
                }
            }
        }
    }

    /// One explicit timestep on the finest level only.
    pub fn step_fine(&mut self) {
        let mesh = &self.hierarchy.levels[0];
        let dt = self.stable_dt(mesh, &self.state);
        let res = residual(mesh, &self.state);
        for c in 0..self.state.len() {
            let f = dt / mesh.volumes[c];
            for i in 0..5 {
                self.state[c][i] += f * res[c][i];
            }
        }
    }

    /// One multigrid cycle: pre-smooth fine, restrict to each coarser
    /// level and smooth there (`sweeps` sweeps per level), inject the
    /// coarse corrections back, post-smooth fine.
    pub fn mg_cycle(&mut self, sweeps: usize) {
        self.step_fine();
        let n_levels = self.hierarchy.n_levels();
        if n_levels > 1 {
            // Restrict down the hierarchy.
            let mut states: Vec<Vec<Conserved>> = vec![self.state.clone()];
            for l in 0..n_levels - 1 {
                let coarse = restrict(
                    &self.hierarchy.levels[l],
                    &self.hierarchy.levels[l + 1],
                    &self.hierarchy.maps[l],
                    &states[l],
                );
                states.push(coarse);
            }
            // Smooth each coarse level and propagate corrections up.
            for l in (1..n_levels).rev() {
                let restricted = states[l].clone();
                let mesh_l = self.hierarchy.levels[l].clone();
                let mut work = states[l].clone();
                for _ in 0..sweeps {
                    let dt = self.stable_dt(&mesh_l, &work);
                    let res = residual(&mesh_l, &work);
                    for c in 0..work.len() {
                        let f = dt / mesh_l.volumes[c];
                        for i in 0..5 {
                            work[c][i] += f * res[c][i];
                        }
                    }
                }
                // Correction to the next-finer level by injection.
                let map = &self.hierarchy.maps[l - 1];
                let finer = &mut states[l - 1];
                for (fc, &cc) in map.iter().enumerate() {
                    for i in 0..5 {
                        finer[fc][i] += work[cc][i] - restricted[cc][i];
                    }
                }
            }
            self.state = states.swap_remove(0);
        }
        self.step_fine();
    }

    /// L2 norm of the finest-level residual (steady-state convergence
    /// measure).
    pub fn residual_norm(&self) -> f64 {
        let res = residual(&self.hierarchy.levels[0], &self.state);
        res.iter()
            .flat_map(|r| r.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
    }

    /// Total mass `Σ ρ·vol` (conserved exactly).
    pub fn total_mass(&self) -> f64 {
        let mesh = &self.hierarchy.levels[0];
        self.state
            .iter()
            .zip(&mesh.volumes)
            .map(|(u, &v)| u[0] * v)
            .sum()
    }

    /// Total energy `Σ E·vol` (conserved exactly).
    pub fn total_energy(&self) -> f64 {
        let mesh = &self.hierarchy.levels[0];
        self.state
            .iter()
            .zip(&mesh.volumes)
            .map(|(u, &v)| u[4] * v)
            .sum()
    }

    /// Whether density and pressure are positive everywhere.
    pub fn is_physical(&self) -> bool {
        self.state.iter().all(|u| u[0] > 0.0 && pressure(u) > 0.0)
    }
}

/// Volume-weighted restriction of a state to the coarse mesh.
fn restrict(
    fine: &UnstructuredMesh,
    coarse: &UnstructuredMesh,
    map: &[usize],
    state: &[Conserved],
) -> Vec<Conserved> {
    let mut out = vec![[0.0; 5]; coarse.n_cells()];
    for (fc, &cc) in map.iter().enumerate() {
        let w = fine.volumes[fc];
        for i in 0..5 {
            out[cc][i] += w * state[fc][i];
        }
    }
    for (cc, u) in out.iter_mut().enumerate() {
        let inv = 1.0 / coarse.volumes[cc];
        for v in u.iter_mut() {
            *v *= inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_mesh::mesh::combustor_box;

    fn solver(nx: usize, levels: usize) -> EulerSolver {
        let mesh = combustor_box(nx, nx, nx, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(mesh, levels);
        EulerSolver::acoustic_pulse(h, 0.1)
    }

    #[test]
    fn mass_and_energy_conserved_fine_steps() {
        let mut s = solver(8, 1);
        let m0 = s.total_mass();
        let e0 = s.total_energy();
        for _ in 0..50 {
            s.step_fine();
        }
        assert!((s.total_mass() - m0).abs() / m0 < 1e-12);
        assert!((s.total_energy() - e0).abs() / e0 < 1e-12);
    }

    #[test]
    fn mass_conserved_through_mg_cycles() {
        let mut s = solver(8, 3);
        let m0 = s.total_mass();
        for _ in 0..10 {
            s.mg_cycle(2);
        }
        assert!(
            (s.total_mass() - m0).abs() / m0 < 1e-12,
            "mass drift {}",
            (s.total_mass() - m0).abs() / m0
        );
    }

    #[test]
    fn pulse_decays_toward_steady_state() {
        let mut s = solver(8, 1);
        let r0 = s.residual_norm();
        for _ in 0..200 {
            s.step_fine();
        }
        let r1 = s.residual_norm();
        assert!(r1 < 0.5 * r0, "residual {r0} -> {r1}");
    }

    #[test]
    fn state_stays_physical() {
        let mut s = solver(6, 2);
        for _ in 0..100 {
            s.mg_cycle(1);
        }
        assert!(s.is_physical());
    }

    #[test]
    fn uniform_state_is_steady() {
        let mesh = combustor_box(5, 5, 5, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(mesh, 1);
        let mut s = EulerSolver::acoustic_pulse(h, 0.0); // amplitude 0
        assert!(s.residual_norm() < 1e-12);
        s.step_fine();
        assert!(s.residual_norm() < 1e-12);
    }

    #[test]
    fn flux_is_consistent() {
        // F(u, n) with Rusanov of identical states equals physical flux.
        let u = [1.0, 0.3, 0.0, 0.0, 2.5];
        let n = [1.0, 0.0, 0.0];
        let f = rusanov(&u, &u, n);
        let exact = flux(&u, n);
        for i in 0..5 {
            assert!((f[i] - exact[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn pressure_of_quiescent_gas() {
        let u = [1.0, 0.0, 0.0, 0.0, 2.5];
        assert!((pressure(&u) - 1.0).abs() < 1e-14);
        assert!((wave_speed(&u) - (1.4f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mass_energy_residuals_conserve() {
        // Interior fluxes cancel pairwise and walls carry no mass or
        // energy: those residual components sum to zero exactly. The
        // momentum components feel wall forces, which cancel here only
        // by the pulse's symmetry, hence the looser tolerance.
        let s = solver(6, 1);
        let res = residual(s.mesh(), &s.state);
        for i in [0usize, 4] {
            let total: f64 = res.iter().map(|r| r[i]).sum();
            assert!(total.abs() < 1e-10, "component {i}: {total}");
        }
        for i in 1..4 {
            let total: f64 = res.iter().map(|r| r[i]).sum();
            assert!(total.abs() < 1e-8, "momentum {i}: {total}");
        }
    }

    #[test]
    fn boundary_vectors_close_each_mesh() {
        // Summed over all cells, wall vectors give the total boundary
        // area vector of a closed domain: zero.
        let s = solver(5, 1);
        let bv = boundary_vectors(s.mesh());
        for i in 0..3 {
            let total: f64 = bv.iter().map(|v| v[i]).sum();
            assert!(total.abs() < 1e-10, "axis {i}: {total}");
        }
        // Interior cells of the box have no wall.
        let interior = bv
            .iter()
            .filter(|v| v.iter().all(|&x| x.abs() < 1e-12))
            .count();
        assert_eq!(interior, 27); // 3³ interior cells of a 5³ box
    }

    #[test]
    fn mg_cycles_still_decay_residual() {
        let mut with_mg = solver(8, 3);
        let r0 = with_mg.residual_norm();
        for _ in 0..30 {
            with_mg.mg_cycle(2);
        }
        let r1 = with_mg.residual_norm();
        assert!(r1 < r0, "mg residual {r0} -> {r1}");
        assert!(with_mg.is_physical());
    }

    #[test]
    fn rk3_conserves_and_stays_physical() {
        let mut s = solver(8, 1);
        let m0 = s.total_mass();
        let e0 = s.total_energy();
        for _ in 0..40 {
            s.step_rk(&[0.1481, 0.4, 1.0]);
        }
        assert!((s.total_mass() - m0).abs() / m0 < 1e-12);
        assert!((s.total_energy() - e0).abs() / e0 < 1e-12);
        assert!(s.is_physical());
    }

    #[test]
    fn rk3_damps_at_least_as_well_as_forward_euler() {
        let mut euler1 = solver(8, 1);
        let mut rk3 = solver(8, 1);
        for _ in 0..60 {
            euler1.step_fine();
        }
        for _ in 0..60 {
            rk3.step_rk(&[0.1481, 0.4, 1.0]);
        }
        // Same number of timesteps: the multistage scheme must make at
        // least comparable progress toward steady state.
        assert!(rk3.residual_norm() < euler1.residual_norm() * 1.5);
    }

    #[test]
    fn single_stage_rk_equals_forward_euler() {
        let mut a = solver(6, 1);
        let mut b = solver(6, 1);
        for _ in 0..5 {
            a.step_fine();
            b.step_rk(&[1.0]);
        }
        for (u, v) in a.state.iter().zip(&b.state) {
            for i in 0..5 {
                assert_eq!(u[i], v[i]);
            }
        }
    }
}
