//! Physics invariant guards — silent-data-corruption detection for the
//! Euler solver.
//!
//! ABFT checksums (cpx-sparse) protect the linear-algebra kernels; the
//! nonlinear finite-volume update is protected by the *physics* instead.
//! The Rusanov flux is conservative by construction, so total mass and
//! total energy are preserved to rounding by every smoothing step and
//! multigrid cycle — an invariant a bit flip in the state or the flux
//! accumulation almost surely breaks. [`InvariantGuard`] captures the
//! conserved totals at watch time and [`InvariantGuard::check`] verifies,
//! in order of diagnostic strength:
//!
//! 1. every state component is finite (NaN/Inf watchdog),
//! 2. density and pressure are positive everywhere (physicality),
//! 3. total mass and total energy drift stays within a relative
//!    tolerance of the watched baseline.
//!
//! The conservation tolerance must cover legitimate rounding: the
//! solver's own tests pin drift below `1e-12` relative over hundreds of
//! steps, so the default `1e-9` leaves three orders of headroom — a flip
//! in any exponent bit or high mantissa bit of a state variable lands
//! far above it, while clean runs never trip it.

use crate::euler::{pressure, EulerSolver};

/// Default relative tolerance for conserved-total drift.
pub const DEFAULT_CONSERVATION_TOL: f64 = 1e-9;

/// A detected invariant violation (one per check; the first found, in
/// order finiteness → physicality → conservation, is returned).
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A state component is NaN or infinite.
    NonFinite {
        /// Cell index on the finest mesh.
        cell: usize,
        /// Conserved-variable component (0=ρ, 1–3=ρu, 4=E).
        component: usize,
        /// The offending value.
        value: f64,
    },
    /// Density or pressure is non-positive.
    NonPhysical {
        /// Cell index on the finest mesh.
        cell: usize,
        /// Density there.
        density: f64,
        /// Pressure there.
        pressure: f64,
    },
    /// Total mass drifted from the watched baseline.
    MassDrift {
        /// Current total mass.
        mass: f64,
        /// Baseline total mass at watch time.
        baseline: f64,
        /// Relative tolerance that was exceeded.
        tol: f64,
    },
    /// Total energy drifted from the watched baseline.
    EnergyDrift {
        /// Current total energy.
        energy: f64,
        /// Baseline total energy at watch time.
        baseline: f64,
        /// Relative tolerance that was exceeded.
        tol: f64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::NonFinite {
                cell,
                component,
                value,
            } => write!(
                f,
                "non-finite state: cell {cell} component {component} = {value}"
            ),
            InvariantViolation::NonPhysical {
                cell,
                density,
                pressure,
            } => write!(
                f,
                "unphysical state: cell {cell} rho={density} p={pressure}"
            ),
            InvariantViolation::MassDrift {
                mass,
                baseline,
                tol,
            } => write!(
                f,
                "mass drift: {mass} vs baseline {baseline} (rel tol {tol:e})"
            ),
            InvariantViolation::EnergyDrift {
                energy,
                baseline,
                tol,
            } => write!(
                f,
                "energy drift: {energy} vs baseline {baseline} (rel tol {tol:e})"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Conservation and physicality watchdog over an [`EulerSolver`].
///
/// Capture once with [`InvariantGuard::watch`], then call
/// [`InvariantGuard::check`] after each step / cycle / suspect region.
/// Re-watch after any *legitimate* non-conservative operation (e.g.
/// re-initialisation).
#[derive(Debug, Clone, Copy)]
pub struct InvariantGuard {
    /// Total mass at watch time.
    pub mass0: f64,
    /// Total energy at watch time.
    pub energy0: f64,
    /// Relative drift tolerance.
    pub rel_tol: f64,
}

impl InvariantGuard {
    /// Capture the conserved totals of `solver` as the trusted baseline.
    pub fn watch(solver: &EulerSolver) -> InvariantGuard {
        InvariantGuard {
            mass0: solver.total_mass(),
            energy0: solver.total_energy(),
            rel_tol: DEFAULT_CONSERVATION_TOL,
        }
    }

    /// Same, with an explicit drift tolerance.
    pub fn with_tol(solver: &EulerSolver, rel_tol: f64) -> InvariantGuard {
        InvariantGuard {
            rel_tol,
            ..InvariantGuard::watch(solver)
        }
    }

    /// Verify all invariants; `Err` carries the first violation found.
    pub fn check(&self, solver: &EulerSolver) -> Result<(), InvariantViolation> {
        for (cell, u) in solver.state.iter().enumerate() {
            for (component, &value) in u.iter().enumerate() {
                if !value.is_finite() {
                    return Err(InvariantViolation::NonFinite {
                        cell,
                        component,
                        value,
                    });
                }
            }
        }
        for (cell, u) in solver.state.iter().enumerate() {
            let p = pressure(u);
            if u[0] <= 0.0 || p <= 0.0 {
                return Err(InvariantViolation::NonPhysical {
                    cell,
                    density: u[0],
                    pressure: p,
                });
            }
        }
        let mass = solver.total_mass();
        let scale_m = self.mass0.abs().max(f64::MIN_POSITIVE);
        if !mass.is_finite() || (mass - self.mass0).abs() > self.rel_tol * scale_m {
            return Err(InvariantViolation::MassDrift {
                mass,
                baseline: self.mass0,
                tol: self.rel_tol,
            });
        }
        let energy = solver.total_energy();
        let scale_e = self.energy0.abs().max(f64::MIN_POSITIVE);
        if !energy.is_finite() || (energy - self.energy0).abs() > self.rel_tol * scale_e {
            return Err(InvariantViolation::EnergyDrift {
                energy,
                baseline: self.energy0,
                tol: self.rel_tol,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_comm::BitFlipInjector;
    use cpx_mesh::mesh::combustor_box;
    use cpx_mesh::MeshHierarchy;

    fn solver() -> EulerSolver {
        let mesh = combustor_box(6, 6, 6, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(mesh, 2);
        EulerSolver::acoustic_pulse(h, 0.05)
    }

    #[test]
    fn clean_run_never_trips() {
        let mut s = solver();
        let guard = InvariantGuard::watch(&s);
        for _ in 0..5 {
            s.mg_cycle(2);
            guard.check(&s).expect("clean run must pass the guard");
        }
    }

    #[test]
    fn exponent_bit_flip_is_caught() {
        let mut s = solver();
        let guard = InvariantGuard::watch(&s);
        s.step_fine();
        // Strike the density of one cell with a seeded high-bit flip.
        let flipped = BitFlipInjector::flip(s.state[17][0], 62);
        s.state[17][0] = flipped;
        assert!(guard.check(&s).is_err(), "flip to {flipped} not caught");
    }

    #[test]
    fn nan_is_caught_as_nonfinite() {
        let mut s = solver();
        let guard = InvariantGuard::watch(&s);
        s.state[3][4] = f64::NAN;
        match guard.check(&s) {
            Err(InvariantViolation::NonFinite {
                cell: 3,
                component: 4,
                ..
            }) => {}
            other => panic!("expected NonFinite at (3,4), got {other:?}"),
        }
    }

    #[test]
    fn negative_density_is_caught_as_nonphysical() {
        let mut s = solver();
        let guard = InvariantGuard::watch(&s);
        // Sign-bit flip: value stays finite, magnitude unchanged — only
        // the physicality check can see it if the totals barely move.
        s.state[5][0] = -s.state[5][0];
        assert!(matches!(
            guard.check(&s),
            Err(InvariantViolation::NonPhysical { cell: 5, .. })
        ));
    }

    #[test]
    fn energy_drift_reported_when_mass_intact() {
        let mut s = solver();
        let guard = InvariantGuard::watch(&s);
        s.state[9][4] *= 1.5; // corrupt energy only
        assert!(matches!(
            guard.check(&s),
            Err(InvariantViolation::EnergyDrift { .. })
        ));
    }

    #[test]
    fn seeded_sweep_of_high_bit_flips_all_caught() {
        // The guard's contract covers the *damaging* class of flips:
        // exponent or sign bits on the conserved components (density,
        // energy). Low-mantissa flips sit below any physical tolerance
        // by design (they are also harmless), and flips on near-zero
        // momentum components move the state by subnormal amounts — so
        // the sweep draws its sites from the detectable class and
        // expects (near-)total coverage there.
        let inj = BitFlipInjector::new(0xabcd, 1.0);
        let mut caught = 0;
        let mut total = 0;
        for site in 0..20u64 {
            if !inj.strikes(site) {
                continue;
            }
            let mut s = solver();
            let guard = InvariantGuard::watch(&s);
            let cell = (site as usize * 7) % s.state.len();
            let comp = if site % 2 == 0 { 0 } else { 4 };
            let bit = 52 + inj.bit(site) % 12; // exponent or sign bit
            s.state[cell][comp] = BitFlipInjector::flip(s.state[cell][comp], bit);
            total += 1;
            if guard.check(&s).is_err() {
                caught += 1;
            }
        }
        assert!(total > 0);
        assert!(
            caught * 10 >= total * 8,
            "only {caught}/{total} flips caught"
        );
    }
}
