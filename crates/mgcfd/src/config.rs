//! MG-CFD instance configuration.

/// Configuration of one MG-CFD (density solver) instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MgCfdConfig {
    /// Target mesh size this instance *represents* (cells). Trace
    /// generation and the performance model use this.
    pub target_cells: f64,
    /// Cells of the scaled-down functional mesh actually built when the
    /// instance runs numerics.
    pub functional_cells: usize,
    /// Geometric multigrid levels.
    pub mg_levels: usize,
    /// Solver iterations (timesteps) to run.
    pub iterations: usize,
    /// Smoothing sweeps per multigrid level per iteration.
    pub smooth_sweeps: usize,
}

impl MgCfdConfig {
    /// A blade-row instance representing `target_cells` cells at scale.
    pub fn blade_row(target_cells: f64) -> MgCfdConfig {
        MgCfdConfig {
            target_cells,
            functional_cells: 4096,
            mg_levels: 3,
            iterations: 25,
            smooth_sweeps: 2,
        }
    }

    /// The NASA Rotor 37 150M-cell validation instance (Fig 8a).
    pub fn rotor37_150m() -> MgCfdConfig {
        Self::blade_row(150.0e6)
    }

    /// The 8M-cell base case the performance model scales from.
    pub fn base_8m() -> MgCfdConfig {
        Self::blade_row(8.0e6)
    }

    /// The 24M-cell compressor-row instances of the large test (Fig 8b).
    pub fn row_24m() -> MgCfdConfig {
        Self::blade_row(24.0e6)
    }

    /// The 300M-cell turbine instance of the large test (Fig 8b).
    pub fn turbine_300m() -> MgCfdConfig {
        Self::blade_row(300.0e6)
    }

    /// Override iteration count.
    pub fn with_iterations(mut self, iters: usize) -> Self {
        self.iterations = iters;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(MgCfdConfig::base_8m().target_cells, 8.0e6);
        assert_eq!(MgCfdConfig::row_24m().target_cells, 24.0e6);
        assert_eq!(MgCfdConfig::rotor37_150m().target_cells, 150.0e6);
        assert_eq!(MgCfdConfig::turbine_300m().target_cells, 300.0e6);
    }

    #[test]
    fn with_iterations_overrides() {
        let c = MgCfdConfig::base_8m().with_iterations(250);
        assert_eq!(c.iterations, 250);
    }
}
