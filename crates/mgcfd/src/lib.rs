//! # cpx-mgcfd
//!
//! MG-CFD — the unstructured finite-volume Euler mini-app used as the
//! *density solver* proxy (compressor and turbine blade rows) in the
//! coupled simulation, after Owenson et al.
//!
//! Three layers:
//!
//! * [`euler`] — the numerics: cell-centred compressible Euler with a
//!   Rusanov (local Lax–Friedrichs) face flux, explicit pseudo-timestep
//!   smoothing and a geometric multigrid cycle over a
//!   [`cpx_mesh::MeshHierarchy`]. Conservation and positivity are tested.
//! * [`dist`] — a rank-distributed runner over `cpx-comm` with ghost-cell
//!   halo exchange, verified to reproduce the serial solver bit-for-bit.
//! * [`guard`] — physics invariant watchdogs for silent-data-corruption
//!   detection: [`InvariantGuard`] pins mass/energy conservation,
//!   positivity and finiteness of the state.
//! * [`trace`] — trace generation for the virtual testbed: given a target
//!   mesh size (8M–300M cells) and rank count, emits the per-rank phase
//!   trace of one solver iteration (flux compute over the rank's cells,
//!   halo exchanges with its measured neighbour count, the residual
//!   allreduce, and the coarse multigrid levels), grounded in measured
//!   partition statistics extrapolated by [`cpx_mesh::SurfaceModel`].
//!
//! The headline scaling behaviour this must reproduce (paper §II-B): the
//! density solver scales *well* — ~88% parallel efficiency at ~10,000
//! cores on production meshes — so in the coupled simulation it is never
//! the bottleneck; the pressure solver is.

pub mod config;
pub mod dist;
pub mod euler;
pub mod guard;
pub mod trace;

pub use config::MgCfdConfig;
pub use euler::EulerSolver;
pub use guard::{InvariantGuard, InvariantViolation};
pub use trace::MgCfdTraceModel;
