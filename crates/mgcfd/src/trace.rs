//! Trace generation: MG-CFD at production scale on the virtual testbed.
//!
//! Given the instance's *represented* mesh size (8M–300M cells) and a
//! rank count, this emits the per-rank phase trace of solver iterations:
//! edge-based flux compute over each rank's cell share (with the
//! partition imbalance and halo sizes coming from the measured-and-
//! extrapolated [`SurfaceModel`]), halo exchanges with a 3-D neighbour
//! pattern, the per-iteration residual allreduce, and the coarser
//! geometric multigrid levels (8× fewer cells, 4× smaller halos per
//! level, same latency structure — which is why coarse levels are
//! latency-bound at scale).
//!
//! Cost constants are calibrated so the density solver reproduces the
//! paper's behaviour: high parallel efficiency (≈90%) out to ~10,000
//! cores on production-size meshes.

use cpx_machine::{CollectiveKind, KernelCost, Machine, Op, PhaseId, Replayer, TraceProgram};
use cpx_mesh::SurfaceModel;

use crate::config::MgCfdConfig;

/// FLOPs per cell per fine-level iteration. Production density solvers
/// (multi-stage RK, real gas models, multigrid forcing) are far heavier
/// than a textbook Euler kernel; these constants are calibrated so that
/// the relative solver speeds reproduce the paper's rank allocations
/// (Figs 8a/9b): ~75 µs·core per cell per iteration.
pub const FLOPS_PER_CELL: f64 = 60_000.0;
/// Memory traffic per cell per fine-level iteration.
pub const BYTES_PER_CELL: f64 = 117_000.0;
/// Bytes exchanged per halo cell (full production field set, all
/// stages).
const HALO_BYTES_PER_CELL: f64 = 2_000.0;

/// The trace/cost model of one MG-CFD instance.
#[derive(Debug, Clone)]
pub struct MgCfdTraceModel {
    /// Instance configuration.
    pub config: MgCfdConfig,
    /// Halo/imbalance extrapolation.
    pub surface: SurfaceModel,
}

impl MgCfdTraceModel {
    /// Model with the default box-calibrated surface law.
    pub fn new(config: MgCfdConfig) -> MgCfdTraceModel {
        MgCfdTraceModel {
            config,
            surface: SurfaceModel::default_box(),
        }
    }

    /// Per-rank cell count at `p` ranks: rank 0 carries the imbalance
    /// peak, the rest share the remainder evenly.
    fn cells_of_rank(&self, rank_in_group: usize, p: usize, level: usize) -> f64 {
        let total = self.config.target_cells / 8f64.powi(level as i32);
        if p == 1 {
            return total;
        }
        let max = self.surface.max_load(total, p);
        if rank_in_group == 0 {
            max
        } else {
            (total - max) / (p - 1) as f64
        }
    }

    /// Halo bytes per neighbour for `level` at `p` ranks.
    fn halo_bytes(&self, p: usize, level: usize) -> usize {
        let total = self.config.target_cells / 8f64.powi(level as i32);
        let halo = self.surface.halo(total, p) / NEIGHBOR_OFFSETS_LEN as f64;
        (halo * HALO_BYTES_PER_CELL) as usize
    }

    /// Emit `steps` solver iterations for an instance on `ranks` (world
    /// rank ids, group-ordered) with registered collective group
    /// `group`. Ops are wrapped in a `Repeat` for compactness.
    pub fn emit(&self, program: &mut TraceProgram, ranks: &[usize], group: usize, steps: u32) {
        let p = ranks.len();
        assert!(p >= 1);
        for (i, &world_rank) in ranks.iter().enumerate() {
            let body = self.step_body(i, p, ranks, group);
            program
                .rank(world_rank)
                .ops
                .push(Op::Repeat { count: steps, body });
        }
    }

    /// The ops of one solver iteration for group-index `i` of `p`.
    pub fn step_body(&self, i: usize, p: usize, ranks: &[usize], group: usize) -> Vec<Op> {
        let mut body = Vec::new();
        for level in 0..self.config.mg_levels {
            let cells = self.cells_of_rank(i, p, level);
            let sweeps = if level == 0 {
                1.0
            } else {
                self.config.smooth_sweeps as f64
            };
            body.push(Op::Compute(KernelCost::new(
                cells * FLOPS_PER_CELL * sweeps,
                cells * BYTES_PER_CELL * sweeps,
            )));
            if p > 1 {
                let bytes = self.halo_bytes(p, level);
                let tag = 100 + level as u32;
                for &off in neighbor_offsets(p).iter() {
                    let dst = ranks[(i + off) % p];
                    body.push(Op::Send { dst, bytes, tag });
                }
                for &off in neighbor_offsets(p).iter() {
                    let src = ranks[(i + p - off % p) % p];
                    body.push(Op::Recv { src, tag });
                }
            }
        }
        // Residual / timestep allreduce once per iteration.
        body.push(Op::Collective {
            kind: CollectiveKind::Allreduce,
            group,
            bytes: 8,
        });
        body
    }

    /// As [`MgCfdTraceModel::step_body`], prefixed with an
    /// `Op::Phase(phase)` marker so a traced replay attributes the
    /// whole iteration to this instance — used by the coupled profiler,
    /// where CU-exchange phases interleave into the same rank timeline
    /// and each must hand the rank back to its owning app's phase.
    /// Phase markers are free in the replayer, so timings are identical
    /// to the unphased body.
    pub fn step_body_phased(
        &self,
        i: usize,
        p: usize,
        ranks: &[usize],
        group: usize,
        phase: PhaseId,
    ) -> Vec<Op> {
        let mut body = vec![Op::Phase(phase)];
        body.extend(self.step_body(i, p, ranks, group));
        body
    }

    /// Standalone virtual runtime of this instance at `p` ranks for its
    /// configured iteration count, by replaying a generated trace.
    pub fn standalone_runtime(&self, p: usize, machine: &Machine) -> f64 {
        let sample_steps: u32 = 8;
        let mut program = TraceProgram::new(p);
        let ranks: Vec<usize> = (0..p).collect();
        let group = program.add_world_group();
        self.emit(&mut program, &ranks, group, sample_steps);
        let out = Replayer::new(machine.clone())
            .run(&program)
            .expect("MG-CFD trace must replay");
        out.makespan() * self.config.iterations as f64 / sample_steps as f64
    }

    /// Per-iteration runtime at `p` ranks.
    pub fn per_step_runtime(&self, p: usize, machine: &Machine) -> f64 {
        self.standalone_runtime(p, machine) / self.config.iterations as f64
    }
}

/// 3-D-decomposition-flavoured neighbour offsets: ±1 (contiguous, mostly
/// same node), ±p^(1/3), ±p^(2/3) (increasingly remote).
const NEIGHBOR_OFFSETS_LEN: usize = 3;

fn neighbor_offsets(p: usize) -> [usize; NEIGHBOR_OFFSETS_LEN] {
    if p <= 1 {
        return [0, 0, 0];
    }
    let c = (p as f64).powf(1.0 / 3.0).ceil() as usize;
    [1, c.clamp(1, p - 1), (c * c).clamp(1, p - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cells: f64) -> MgCfdTraceModel {
        MgCfdTraceModel::new(MgCfdConfig::blade_row(cells))
    }

    fn pe(model: &MgCfdTraceModel, p_base: usize, p: usize) -> f64 {
        let m = Machine::archer2();
        let t_base = model.per_step_runtime(p_base, &m);
        let t = model.per_step_runtime(p, &m);
        (t_base * p_base as f64) / (t * p as f64)
    }

    #[test]
    fn single_rank_trace_replays() {
        let m = model(1.0e6);
        let t = m.per_step_runtime(1, &Machine::archer2());
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn runtime_decreases_with_ranks() {
        let m = model(8.0e6);
        let machine = Machine::archer2();
        let t100 = m.per_step_runtime(100, &machine);
        let t400 = m.per_step_runtime(400, &machine);
        let t1600 = m.per_step_runtime(1600, &machine);
        assert!(t400 < t100);
        assert!(t1600 < t400);
    }

    #[test]
    fn scales_well_on_production_mesh() {
        // Paper §II-B: ~88% parallel efficiency at ~10,000 cores for the
        // density solver on production meshes.
        let m = model(150.0e6);
        let e = pe(&m, 128, 8192);
        assert!(e > 0.75, "150M-cell PE at 8k ranks = {e}");
    }

    #[test]
    fn efficiency_declines_monotonically() {
        // The production solver scales very well (that is the paper's
        // point — the pressure solver is the bottleneck, not this), but
        // load imbalance still erodes efficiency monotonically.
        let m = model(8.0e6);
        let e16k = pe(&m, 100, 16_384);
        let e64k = pe(&m, 100, 65_536);
        assert!(
            e64k < e16k,
            "PE must keep falling: 64k {e64k} vs 16k {e16k}"
        );
        assert!(e64k > 0.6, "still no collapse at 64k: {e64k}");
    }

    #[test]
    fn bigger_mesh_scales_better_at_same_ranks() {
        let small = pe(&model(8.0e6), 128, 4096);
        let large = pe(&model(300.0e6), 128, 4096);
        assert!(large > small, "300M {large} vs 8M {small}");
    }

    #[test]
    fn runtime_scales_linearly_with_cells_serial() {
        let machine = Machine::archer2();
        let t1 = model(1.0e6).per_step_runtime(1, &machine);
        let t4 = model(4.0e6).per_step_runtime(1, &machine);
        let ratio = t4 / t1;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn emit_into_shared_program() {
        // Two instances in one program on disjoint rank sets.
        let mut program = TraceProgram::new(8);
        let g0 = program.add_group((0..4).collect());
        let g1 = program.add_group((4..8).collect());
        let m = model(1.0e6);
        m.emit(&mut program, &[0, 1, 2, 3], g0, 3);
        m.emit(&mut program, &[4, 5, 6, 7], g1, 3);
        assert!(program.validate().is_ok());
        let out = Replayer::new(Machine::archer2()).run(&program).unwrap();
        assert!(out.makespan() > 0.0);
    }

    #[test]
    fn phased_body_costs_the_same_as_plain() {
        let m = model(1.0e6);
        let machine = Machine::archer2();
        let ranks: Vec<usize> = (0..8).collect();
        let build = |phased: bool| {
            let mut program = TraceProgram::new(8);
            let g = program.add_world_group();
            for i in 0..8 {
                let body = if phased {
                    m.step_body_phased(i, 8, &ranks, g, 3)
                } else {
                    m.step_body(i, 8, &ranks, g)
                };
                program.rank(i).ops.push(Op::Repeat { count: 4, body });
            }
            Replayer::new(machine.clone())
                .track_phases(4)
                .run(&program)
                .unwrap()
        };
        let plain = build(false);
        let phased = build(true);
        assert_eq!(plain.makespan(), phased.makespan());
        let breakdown = phased.phases.unwrap();
        assert!(breakdown.elapsed(3) > 0.0);
    }

    #[test]
    fn neighbor_offsets_valid() {
        for p in [2usize, 3, 8, 100, 4096] {
            for off in neighbor_offsets(p) {
                assert!(off < p, "p={p} off={off}");
                assert!(off >= 1);
            }
        }
    }

    #[test]
    fn rank_zero_carries_imbalance() {
        let m = model(8.0e6);
        let c0 = m.cells_of_rank(0, 1000, 0);
        let c1 = m.cells_of_rank(1, 1000, 0);
        assert!(c0 > c1);
        // Total conserved.
        let total = c0 + 999.0 * c1;
        assert!((total - 8.0e6).abs() / 8.0e6 < 1e-9);
    }
}
