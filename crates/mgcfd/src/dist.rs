//! Rank-distributed Euler stepping with ghost-cell halo exchange.
//!
//! Each rank owns the cells its partition assigns it, keeps ghost copies
//! of remote face-neighbours, and per timestep (1) exchanges ghost
//! states, (2) agrees the stable `dt` by a global min-allreduce, and
//! (3) accumulates fluxes over every face touching an owned cell.
//! Face processing order matches the serial solver's global face order,
//! so a distributed run reproduces the serial state **bit-for-bit** —
//! the strongest possible validation of the halo machinery (and the
//! test below asserts exactly that).
//!
//! The distributed runner steps the finest level only; the geometric
//! multigrid cycle is exercised serially in [`crate::euler`] and modelled
//! at scale by [`crate::trace`].

use cpx_comm::{Group, RankCtx, ReduceOp};
use cpx_machine::KernelCost;
use cpx_mesh::{MeshPartition, UnstructuredMesh};

use crate::euler::{
    boundary_vectors, pressure, residual as serial_residual, wave_speed, Conserved,
};

/// Per-rank distributed Euler state.
pub struct DistributedEuler {
    /// The replicated mesh (functional scale, so replication is cheap;
    /// at production scale this path is replaced by trace generation).
    mesh: UnstructuredMesh,
    /// Partition assignment (replicated).
    assignment: Vec<usize>,
    /// Globally-indexed state; only owned + ghost entries are kept
    /// current on this rank.
    state: Vec<Conserved>,
    /// Owned cell ids (ascending).
    owned: Vec<usize>,
    /// For each peer rank: owned cells whose state we must send.
    send_lists: Vec<Vec<usize>>,
    /// For each peer rank: ghost cells we receive (ascending ids).
    recv_lists: Vec<Vec<usize>>,
    /// Faces this rank processes (at least one endpoint owned), in
    /// global face order.
    faces: Vec<(usize, usize, f64)>,
    /// Per-cell outward boundary (wall) area vectors of the full mesh.
    walls: Vec<[f64; 3]>,
    /// CFL number.
    pub cfl: f64,
}

impl DistributedEuler {
    /// Set up the rank-local structures from a replicated mesh and an
    /// initial global state. `group.size()` must equal the partition's
    /// part count.
    pub fn new(
        group: &Group,
        mesh: UnstructuredMesh,
        partition: &MeshPartition,
        initial: Vec<Conserved>,
    ) -> DistributedEuler {
        let me = group.index();
        let p = group.size();
        assert_eq!(partition.parts, p, "partition parts must equal group size");
        assert_eq!(initial.len(), mesh.n_cells());
        let assignment = partition.assignment.clone();
        let owned: Vec<usize> = (0..mesh.n_cells())
            .filter(|&c| assignment[c] == me)
            .collect();

        // Cross-face ghost negotiation is fully deterministic from the
        // replicated assignment: no communication needed.
        let mut send_sets: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); p];
        let mut recv_sets: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); p];
        let mut faces = Vec::new();
        for &(a, b, area) in &mesh.faces {
            let (pa, pb) = (assignment[a], assignment[b]);
            if pa == me || pb == me {
                faces.push((a, b, area));
            }
            if pa == me && pb != me {
                send_sets[pb].insert(a);
                recv_sets[pb].insert(b);
            } else if pb == me && pa != me {
                send_sets[pa].insert(b);
                recv_sets[pa].insert(a);
            }
        }

        let walls = boundary_vectors(&mesh);
        DistributedEuler {
            mesh,
            assignment,
            state: initial,
            owned,
            walls,
            send_lists: send_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            recv_lists: recv_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            faces,
            cfl: 0.4,
        }
    }

    /// Owned cell count.
    pub fn n_owned(&self) -> usize {
        self.owned.len()
    }

    /// Ghost cell count.
    pub fn n_ghosts(&self) -> usize {
        self.recv_lists.iter().map(Vec::len).sum()
    }

    /// Exchange ghost states with every neighbouring rank. Collective.
    fn exchange_ghosts(&mut self, ctx: &mut RankCtx, group: &Group) {
        let p = group.size();
        const TAG: u32 = 0x47; // 'G'
                               // Post all sends first (eager), then receive.
        for peer in 0..p {
            if self.send_lists[peer].is_empty() {
                continue;
            }
            let mut buf = Vec::with_capacity(self.send_lists[peer].len() * 5);
            for &c in &self.send_lists[peer] {
                buf.extend_from_slice(&self.state[c]);
            }
            ctx.compute(KernelCost::bytes(buf.len() as f64 * 16.0));
            ctx.send(group.member(peer), TAG, buf);
        }
        for peer in 0..p {
            if self.recv_lists[peer].is_empty() {
                continue;
            }
            let buf = ctx.recv(group.member(peer), TAG).into_f64();
            assert_eq!(buf.len(), self.recv_lists[peer].len() * 5);
            for (i, &c) in self.recv_lists[peer].iter().enumerate() {
                for k in 0..5 {
                    self.state[c][k] = buf[i * 5 + k];
                }
            }
        }
    }

    /// One explicit timestep. Collective; returns the global `dt` used.
    pub fn step(&mut self, ctx: &mut RankCtx, group: &Group) -> f64 {
        self.exchange_ghosts(ctx, group);

        // Local stable dt over the faces this rank processes, reduced
        // globally (min) — identical to the serial min over all faces.
        let mut local_min = f64::INFINITY;
        for &(a, b, _) in &self.faces {
            let d = [
                self.mesh.coords[b][0] - self.mesh.coords[a][0],
                self.mesh.coords[b][1] - self.mesh.coords[a][1],
                self.mesh.coords[b][2] - self.mesh.coords[a][2],
            ];
            let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let s = wave_speed(&self.state[a]).max(wave_speed(&self.state[b]));
            if s > 0.0 {
                local_min = local_min.min(len / s);
            }
        }
        let global_min = group.allreduce_scalar(ctx, ReduceOp::Min, local_min);
        let dt = self.cfl
            * if global_min.is_finite() {
                global_min
            } else {
                1.0
            };

        // Flux accumulation over this rank's faces; identical order to
        // serial for the owned endpoints.
        let nnz_work = self.faces.len() as f64;
        ctx.compute(KernelCost::new(nnz_work * 220.0, nnz_work * 200.0));
        let mut res: std::collections::HashMap<usize, Conserved> = std::collections::HashMap::new();
        for &(a, b, area) in &self.faces {
            let d = [
                self.mesh.coords[b][0] - self.mesh.coords[a][0],
                self.mesh.coords[b][1] - self.mesh.coords[a][1],
                self.mesh.coords[b][2] - self.mesh.coords[a][2],
            ];
            let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let n = [d[0] / len, d[1] / len, d[2] / len];
            let f = rusanov_face(&self.state[a], &self.state[b], n);
            if self.assignment[a] == group.index() {
                let e = res.entry(a).or_insert([0.0; 5]);
                for i in 0..5 {
                    e[i] -= f[i] * area;
                }
            }
            if self.assignment[b] == group.index() {
                let e = res.entry(b).or_insert([0.0; 5]);
                for i in 0..5 {
                    e[i] += f[i] * area;
                }
            }
        }
        // Slip-wall pressure flux on owned cells (same arithmetic and
        // ordering as the serial residual).
        for &c in &self.owned {
            let p_c = pressure(&self.state[c]);
            let e = res.entry(c).or_insert([0.0; 5]);
            for i in 0..3 {
                e[1 + i] -= p_c * self.walls[c][i];
            }
        }
        for &c in &self.owned {
            if let Some(r) = res.get(&c) {
                let f = dt / self.mesh.volumes[c];
                for i in 0..5 {
                    self.state[c][i] += f * r[i];
                }
            }
        }
        dt
    }

    /// Gather the full state to group member 0. Collective.
    pub fn gather_state(&self, ctx: &mut RankCtx, group: &Group) -> Option<Vec<Conserved>> {
        let mut flat = Vec::with_capacity(self.owned.len() * 6);
        for &c in &self.owned {
            flat.push(c as f64);
            flat.extend_from_slice(&self.state[c]);
        }
        let gathered = group.gather(ctx, 0, flat)?;
        let mut full = vec![[0.0; 5]; self.mesh.n_cells()];
        for part in gathered {
            for chunk in part.chunks_exact(6) {
                let c = chunk[0] as usize;
                full[c].copy_from_slice(&chunk[1..6]);
            }
        }
        Some(full)
    }

    /// Density of a cell (valid for owned cells and freshly-exchanged
    /// ghosts).
    pub fn density_of(&self, cell: usize) -> f64 {
        self.state[cell][0]
    }

    /// Local contribution to total mass (collective sum gives the
    /// conserved global mass).
    pub fn local_mass(&self) -> f64 {
        self.owned
            .iter()
            .map(|&c| self.state[c][0] * self.mesh.volumes[c])
            .sum()
    }
}

/// Rusanov flux (duplicated from `euler` to keep the arithmetic order
/// identical in both call sites).
fn rusanov_face(ua: &Conserved, ub: &Conserved, n: [f64; 3]) -> Conserved {
    // Delegate to the serial residual's building block by constructing
    // the same expressions; see `euler::residual`.
    let fa = flux_dir(ua, n);
    let fb = flux_dir(ub, n);
    let smax = wave_speed(ua).max(wave_speed(ub));
    let mut out = [0.0; 5];
    for i in 0..5 {
        out[i] = 0.5 * (fa[i] + fb[i]) - 0.5 * smax * (ub[i] - ua[i]);
    }
    out
}

fn flux_dir(u: &Conserved, n: [f64; 3]) -> Conserved {
    let rho = u[0];
    let inv_rho = 1.0 / rho;
    let vel = [u[1] * inv_rho, u[2] * inv_rho, u[3] * inv_rho];
    let vn = vel[0] * n[0] + vel[1] * n[1] + vel[2] * n[2];
    let ke = 0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
    let p = (crate::euler::GAMMA - 1.0) * (u[4] - ke);
    [
        rho * vn,
        u[1] * vn + p * n[0],
        u[2] * vn + p * n[1],
        u[3] * vn + p * n[2],
        (u[4] + p) * vn,
    ]
}

/// Serial reference used by the equivalence test.
pub fn serial_steps(
    mesh: &UnstructuredMesh,
    mut state: Vec<Conserved>,
    cfl: f64,
    steps: usize,
) -> Vec<Conserved> {
    for _ in 0..steps {
        let mut min_dt = f64::INFINITY;
        for &(a, b, _) in &mesh.faces {
            let d = [
                mesh.coords[b][0] - mesh.coords[a][0],
                mesh.coords[b][1] - mesh.coords[a][1],
                mesh.coords[b][2] - mesh.coords[a][2],
            ];
            let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let s = wave_speed(&state[a]).max(wave_speed(&state[b]));
            if s > 0.0 {
                min_dt = min_dt.min(len / s);
            }
        }
        let dt = cfl * if min_dt.is_finite() { min_dt } else { 1.0 };
        let res = serial_residual(mesh, &state);
        for c in 0..state.len() {
            let f = dt / mesh.volumes[c];
            for i in 0..5 {
                state[c][i] += f * res[c][i];
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpx_comm::World;
    use cpx_machine::Machine;
    use cpx_mesh::mesh::combustor_box;
    use cpx_mesh::MeshHierarchy;

    fn initial(mesh: &UnstructuredMesh) -> Vec<Conserved> {
        let h = MeshHierarchy::build(mesh.clone(), 1);
        crate::euler::EulerSolver::acoustic_pulse(h, 0.1).state
    }

    #[test]
    fn distributed_matches_serial_bit_for_bit() {
        let mesh = combustor_box(6, 6, 6, 0.0, 1.0, 1.0, 1.0);
        let init = initial(&mesh);
        let want = serial_steps(&mesh, init.clone(), 0.4, 10);
        for p in [2usize, 4, 7] {
            let mesh2 = mesh.clone();
            let init2 = init.clone();
            let res = World::new(Machine::archer2()).run(p, move |ctx| {
                let group = ctx.world();
                let partition = MeshPartition::build(&mesh2, group.size());
                let mut solver =
                    DistributedEuler::new(&group, mesh2.clone(), &partition, init2.clone());
                for _ in 0..10 {
                    solver.step(ctx, &group);
                }
                solver.gather_state(ctx, &group)
            });
            let got = res[0].0.as_ref().expect("rank 0 gathers");
            for (c, (u, v)) in got.iter().zip(&want).enumerate() {
                for i in 0..5 {
                    assert!(
                        u[i] == v[i],
                        "p={p} cell {c} comp {i}: {} != {}",
                        u[i],
                        v[i]
                    );
                }
            }
        }
    }

    #[test]
    fn mass_conserved_distributed() {
        let mesh = combustor_box(5, 5, 5, 0.0, 1.0, 1.0, 1.0);
        let init = initial(&mesh);
        let m0: f64 = init.iter().zip(&mesh.volumes).map(|(u, &v)| u[0] * v).sum();
        let res = World::new(Machine::archer2()).run(3, move |ctx| {
            let group = ctx.world();
            let partition = MeshPartition::build(&mesh, group.size());
            let mut solver = DistributedEuler::new(&group, mesh.clone(), &partition, init.clone());
            for _ in 0..20 {
                solver.step(ctx, &group);
            }
            group.allreduce_scalar(ctx, cpx_comm::ReduceOp::Sum, solver.local_mass())
        });
        for (m, _) in res {
            assert!((m - m0).abs() / m0 < 1e-12);
        }
    }

    #[test]
    fn ghost_counts_symmetric() {
        let mesh = combustor_box(4, 4, 4, 0.0, 1.0, 1.0, 1.0);
        let init = initial(&mesh);
        let res = World::new(Machine::archer2()).run(4, move |ctx| {
            let group = ctx.world();
            let partition = MeshPartition::build(&mesh, group.size());
            let solver = DistributedEuler::new(&group, mesh.clone(), &partition, init.clone());
            (
                solver.send_lists.iter().map(Vec::len).collect::<Vec<_>>(),
                solver.recv_lists.iter().map(Vec::len).collect::<Vec<_>>(),
            )
        });
        // send_lists[r][s] must equal recv_lists[s][r].
        for r in 0..4 {
            for s in 0..4 {
                assert_eq!(res[r].0 .0[s], res[s].0 .1[r], "r={r} s={s}");
            }
        }
    }

    #[test]
    fn owned_cells_partition_the_mesh() {
        let mesh = combustor_box(4, 4, 4, 0.0, 1.0, 1.0, 1.0);
        let init = initial(&mesh);
        let res = World::new(Machine::archer2()).run(3, move |ctx| {
            let group = ctx.world();
            let partition = MeshPartition::build(&mesh, group.size());
            let solver = DistributedEuler::new(&group, mesh.clone(), &partition, init.clone());
            solver.n_owned()
        });
        let total: usize = res.iter().map(|(n, _)| n).sum();
        assert_eq!(total, 64);
    }
}
