//! # cpx-par
//!
//! Deterministic shared-memory parallel execution for the workspace's
//! hot kernels (SpMV, SpGEMM, hybrid Gauss–Seidel, the SIMPIC particle
//! push, the pressure spray update), built on vendored `crossbeam`
//! scoped threads.
//!
//! ## Determinism contract
//!
//! Work is partitioned into a fixed number of contiguous **chunks**
//! ([`chunk_ranges`]). All numerics are keyed to the chunk count and to
//! which chunk a datum falls in — never to the runtime thread count.
//! Threads only decide *which worker executes which chunk* (a static
//! stride assignment: worker `w` owns chunks `w, w + W, w + 2W, …`),
//! and every chunk's output lands in storage addressed by its chunk
//! index, so results are bit-identical from 1 to N threads. A
//! [`ParPool`] with `threads == 1` degrades every combinator to the
//! plain serial loop — no scope, no spawn, no synchronisation.
//!
//! ## Configuration
//!
//! The global pool ([`ParPool::current`]) is sized from the
//! `CPX_THREADS` environment variable (default 1, clamped to
//! `1..=`[`MAX_THREADS`]) or programmatically via
//! [`ParPool::set_global_threads`]. Kernels that consult the global
//! pool first apply [`ParPool::limited`] so tiny problems never pay
//! thread-spawn latency. Explicit pools ([`ParPool::with_threads`]) are
//! for benchmarks and tests that sweep thread counts without touching
//! process-global state.
//!
//! ## Telemetry
//!
//! [`with_telemetry`] opens an observational window in which every
//! combinator records one [`ChunkTiming`] per executed chunk (worker,
//! items, wall start/end). The resulting [`PoolTelemetry`] derives
//! per-worker busy/idle time, utilization and a load-imbalance ratio.
//! Collection never affects the chunk→worker assignment, so the
//! determinism contract is unchanged; when no window is open the cost
//! is one relaxed atomic load per chunk.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod telemetry;

pub use telemetry::{with_telemetry, ChunkTiming, PoolTelemetry};

/// Upper bound on the configured thread count (sanity clamp for the
/// `CPX_THREADS` parse; far above any plausible core count here).
pub const MAX_THREADS: usize = 256;

/// Minimum work units (rows, nonzeros, particles, …) per worker before
/// the global-pool entry points fan out: below this, scoped-thread
/// setup costs more than the kernel body. Sized so the smoke-problem
/// kernels (≲100k nonzeros) stay on the serial fast path — measured in
/// `bench_kernels --size`, spawn latency only amortises above roughly
/// this many units per worker.
pub const MIN_WORK_PER_WORKER: usize = 131_072;

/// Global thread count; 0 means "not yet initialised from the
/// environment".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached `std::thread::available_parallelism` (0 = not yet probed).
static HW_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Hardware parallelism as reported by the OS, probed once and cached.
/// Oversubscribing beyond this only adds context-switch latency — the
/// determinism contract keys results to chunk counts, so capping the
/// worker count never changes a result bit.
pub fn hardware_threads() -> usize {
    let cached = HW_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    HW_THREADS.store(hw, Ordering::Relaxed);
    hw
}

fn env_threads() -> usize {
    std::env::var("CPX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.clamp(1, MAX_THREADS))
}

/// One chunk's worth of work handed to a worker: chunk index, the index
/// range it covers, and the disjoint sub-slice it owns.
type ChunkTask<'a, T> = (usize, Range<usize>, &'a mut [T]);

/// [`ChunkTask`] over two slices partitioned by the same ranges.
type ZipChunkTask<'a, A, B> = (usize, Range<usize>, &'a mut [A], &'a mut [B]);

/// A worker-count handle. Copyable and cheap; the actual threads are
/// scoped per call, so a pool carries no OS resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParPool {
    threads: usize,
}

impl ParPool {
    /// A pool with exactly `threads` workers (clamped to
    /// `1..=`[`MAX_THREADS`]).
    pub fn with_threads(threads: usize) -> ParPool {
        ParPool {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// The always-serial pool (the `threads == 1` fast path).
    pub fn serial() -> ParPool {
        ParPool::with_threads(1)
    }

    /// The global pool: sized from `CPX_THREADS` on first use (default
    /// 1), or whatever [`ParPool::set_global_threads`] last stored.
    pub fn current() -> ParPool {
        let mut t = GLOBAL_THREADS.load(Ordering::Relaxed);
        if t == 0 {
            t = env_threads();
            // Racing initialisers all compute the same value.
            GLOBAL_THREADS.store(t, Ordering::Relaxed);
        }
        ParPool { threads: t }
    }

    /// Override the global pool size (e.g. from a benchmark driver).
    pub fn set_global_threads(threads: usize) {
        GLOBAL_THREADS.store(threads.clamp(1, MAX_THREADS), Ordering::Relaxed);
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Default chunk count for kernels whose results are
    /// partition-invariant: one chunk per worker.
    pub fn chunks(&self) -> usize {
        self.threads
    }

    /// This pool with its worker count capped so each worker gets at
    /// least [`MIN_WORK_PER_WORKER`] of the given work units, and never
    /// more workers than the machine has hardware threads
    /// ([`hardware_threads`]). Tiny problems (like the smoke-suite
    /// kernels) therefore degrade to the serial fast path instead of
    /// paying spawn latency for a guaranteed loss.
    pub fn limited(&self, work_units: usize) -> ParPool {
        let cap = (work_units / MIN_WORK_PER_WORKER).max(1);
        ParPool {
            threads: self.threads.min(cap).min(hardware_threads()),
        }
    }

    /// Evaluate `f(chunk_index)` for `chunks` chunks, returning the
    /// results in chunk order regardless of the thread count.
    pub fn map<T, F>(&self, chunks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let chunks = chunks.max(1);
        let workers = self.threads.min(chunks);
        if workers <= 1 {
            return (0..chunks)
                .map(|c| telemetry::timed_chunk(c, 0, 1, || f(c)))
                .collect();
        }
        let mut out: Vec<Option<T>> = (0..chunks).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = (1..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        let mut c = w;
                        while c < chunks {
                            mine.push((c, telemetry::timed_chunk(c, w, 1, || f(c))));
                            c += workers;
                        }
                        mine
                    })
                })
                .collect();
            // Worker 0 runs on the calling thread.
            let mut c = 0;
            while c < chunks {
                out[c] = Some(telemetry::timed_chunk(c, 0, 1, || f(c)));
                c += workers;
            }
            for h in handles {
                for (c, v) in h.join().expect("cpx-par worker panicked") {
                    out[c] = Some(v);
                }
            }
        });
        out.into_iter()
            .map(|v| v.expect("chunk computed"))
            .collect()
    }

    /// Partition `data` into `chunks` contiguous ranges and call
    /// `f(chunk_index, range, sub_slice)` for each — sub-slices are
    /// disjoint, so chunks may run concurrently; with one worker they
    /// run in chunk order on the calling thread.
    pub fn chunks_mut<T, F>(&self, data: &mut [T], chunks: usize, f: F)
    where
        T: Send,
        F: Fn(usize, Range<usize>, &mut [T]) + Sync,
    {
        let chunks = chunks.max(1);
        if self.threads.min(chunks) <= 1 {
            // Serial fast path: the same ceil-division layout as
            // [`chunk_ranges`], computed on the fly so steady-state
            // serial kernels never touch the allocator.
            let n = data.len();
            let per = n.div_ceil(chunks);
            let mut rest = data;
            for i in 0..chunks {
                let r = (i * per).min(n)..((i + 1) * per).min(n);
                let (head, tail) = rest.split_at_mut(r.len());
                telemetry::timed_chunk(i, 0, r.len(), || f(i, r.clone(), head));
                rest = tail;
            }
            return;
        }
        self.ranges_mut(data, &chunk_ranges(data.len(), chunks), f)
    }

    /// [`ParPool::chunks_mut`] with caller-supplied partition ranges:
    /// `ranges` must tile `data` contiguously from 0 to `data.len()`.
    /// Used by kernels whose natural work unit is not a uniform block —
    /// e.g. the SELL-C-σ SpMV, whose parallel boundaries must align
    /// with σ sorting windows so each task owns whole output rows.
    pub fn ranges_mut<T, F>(&self, data: &mut [T], ranges: &[Range<usize>], f: F)
    where
        T: Send,
        F: Fn(usize, Range<usize>, &mut [T]) + Sync,
    {
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next, "ranges_mut: ranges must tile contiguously");
            assert!(r.end >= r.start, "ranges_mut: range end before start");
            next = r.end;
        }
        assert_eq!(next, data.len(), "ranges_mut: ranges must cover data");
        let workers = self.threads.min(ranges.len()).max(1);
        if workers <= 1 {
            let mut rest = data;
            for (i, r) in ranges.iter().enumerate() {
                let (head, tail) = rest.split_at_mut(r.len());
                telemetry::timed_chunk(i, 0, r.len(), || f(i, r.clone(), head));
                rest = tail;
            }
            return;
        }
        // Static stride assignment: worker w owns chunks w, w+W, …
        let mut per_worker: Vec<Vec<ChunkTask<T>>> = (0..workers).map(|_| Vec::new()).collect();
        let mut rest = data;
        for (i, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.len());
            per_worker[i % workers].push((i, r.clone(), head));
            rest = tail;
        }
        crossbeam::thread::scope(|s| {
            let f = &f;
            let mut lists = per_worker.into_iter();
            let mine = lists.next().expect("worker 0 exists");
            let handles: Vec<_> = lists
                .enumerate()
                .map(|(k, list)| {
                    s.spawn(move || {
                        for (i, r, slice) in list {
                            let items = r.len();
                            telemetry::timed_chunk(i, k + 1, items, || f(i, r, slice));
                        }
                    })
                })
                .collect();
            for (i, r, slice) in mine {
                let items = r.len();
                telemetry::timed_chunk(i, 0, items, || f(i, r, slice));
            }
            for h in handles {
                h.join().expect("cpx-par worker panicked");
            }
        });
    }

    /// [`ParPool::chunks_mut`] over two equal-length slices partitioned
    /// by the same ranges (for structure-of-arrays data like the spray's
    /// position/velocity pair).
    pub fn zip_chunks_mut<A, B, F>(&self, a: &mut [A], b: &mut [B], chunks: usize, f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, Range<usize>, &mut [A], &mut [B]) + Sync,
    {
        assert_eq!(a.len(), b.len(), "zip_chunks_mut: length mismatch");
        let ranges = chunk_ranges(a.len(), chunks);
        let workers = self.threads.min(ranges.len()).max(1);
        if workers <= 1 {
            let (mut rest_a, mut rest_b) = (a, b);
            for (i, r) in ranges.iter().enumerate() {
                let (ha, ta) = rest_a.split_at_mut(r.len());
                let (hb, tb) = rest_b.split_at_mut(r.len());
                telemetry::timed_chunk(i, 0, r.len(), || f(i, r.clone(), ha, hb));
                rest_a = ta;
                rest_b = tb;
            }
            return;
        }
        let mut per_worker: Vec<Vec<ZipChunkTask<A, B>>> =
            (0..workers).map(|_| Vec::new()).collect();
        let (mut rest_a, mut rest_b) = (a, b);
        for (i, r) in ranges.iter().enumerate() {
            let (ha, ta) = rest_a.split_at_mut(r.len());
            let (hb, tb) = rest_b.split_at_mut(r.len());
            per_worker[i % workers].push((i, r.clone(), ha, hb));
            rest_a = ta;
            rest_b = tb;
        }
        crossbeam::thread::scope(|s| {
            let f = &f;
            let mut lists = per_worker.into_iter();
            let mine = lists.next().expect("worker 0 exists");
            let handles: Vec<_> = lists
                .enumerate()
                .map(|(k, list)| {
                    s.spawn(move || {
                        for (i, r, sa, sb) in list {
                            let items = r.len();
                            telemetry::timed_chunk(i, k + 1, items, || f(i, r, sa, sb));
                        }
                    })
                })
                .collect();
            for (i, r, sa, sb) in mine {
                let items = r.len();
                telemetry::timed_chunk(i, 0, items, || f(i, r, sa, sb));
            }
            for h in handles {
                h.join().expect("cpx-par worker panicked");
            }
        });
    }
}

/// Partition `n` items into `chunks` contiguous ranges — the same
/// ceil-division block layout every kernel in the workspace already
/// used serially (`per = ceil(n / chunks)`; trailing chunks may be
/// empty). A chunk count of 0 is clamped to 1.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1);
    let per = n.div_ceil(chunks);
    (0..chunks)
        .map(|c| (c * per).min(n)..((c + 1) * per).min(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_contiguously() {
        for (n, chunks) in [(10, 3), (0, 4), (7, 1), (5, 9), (100, 0)] {
            let ranges = chunk_ranges(n, chunks);
            assert_eq!(ranges.len(), chunks.max(1));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next.min(n));
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(ranges.last().unwrap().end, n);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} chunks={chunks}");
        }
    }

    #[test]
    fn chunk_ranges_match_legacy_layout() {
        // The serial kernels used per = ceil(n/chunks), lo = i*per.
        let n = 53usize;
        let chunks = 7;
        let per = n.div_ceil(chunks);
        for (i, r) in chunk_ranges(n, chunks).iter().enumerate() {
            assert_eq!(r.start, (i * per).min(n));
            assert_eq!(r.end, ((i + 1) * per).min(n));
        }
    }

    #[test]
    fn map_returns_chunk_order_at_any_thread_count() {
        let baseline: Vec<usize> = (0..23).map(|c| c * c).collect();
        for threads in [1, 2, 4, 8, 23, 64] {
            let pool = ParPool::with_threads(threads);
            assert_eq!(pool.map(23, |c| c * c), baseline, "threads={threads}");
        }
    }

    #[test]
    fn chunks_mut_bit_identical_across_thread_counts() {
        let n = 1000;
        let reference: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 3.0).collect();
        for threads in [1, 2, 4, 8] {
            for chunks in [1, 3, 8, n + 5] {
                let mut data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
                ParPool::with_threads(threads).chunks_mut(&mut data, chunks, |_, _, s| {
                    for v in s {
                        *v *= 3.0;
                    }
                });
                assert_eq!(data, reference, "threads={threads} chunks={chunks}");
            }
        }
    }

    #[test]
    fn chunks_mut_passes_matching_range_and_slice() {
        let mut data: Vec<usize> = vec![0; 37];
        ParPool::with_threads(4).chunks_mut(&mut data, 5, |i, r, s| {
            assert_eq!(r.len(), s.len());
            for (v, idx) in s.iter_mut().zip(r) {
                *v = idx * 10 + i;
            }
        });
        let per = 37usize.div_ceil(5);
        for (idx, &v) in data.iter().enumerate() {
            assert_eq!(v, idx * 10 + idx / per);
        }
    }

    #[test]
    fn zip_chunks_mut_updates_both_slices() {
        let n = 500;
        for threads in [1, 4] {
            let mut a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut b: Vec<f64> = vec![1.0; n];
            ParPool::with_threads(threads).zip_chunks_mut(&mut a, &mut b, 6, |_, _, sa, sb| {
                for (x, y) in sa.iter_mut().zip(sb.iter_mut()) {
                    *y += *x;
                    *x *= 2.0;
                }
            });
            for i in 0..n {
                assert_eq!(a[i], 2.0 * i as f64);
                assert_eq!(b[i], 1.0 + i as f64);
            }
        }
    }

    #[test]
    fn limited_caps_workers_by_granularity() {
        let hw = hardware_threads();
        let pool = ParPool::with_threads(8);
        assert_eq!(pool.limited(100).threads(), 1);
        assert_eq!(pool.limited(MIN_WORK_PER_WORKER - 1).threads(), 1);
        assert_eq!(pool.limited(MIN_WORK_PER_WORKER * 3).threads(), 3.min(hw));
        assert_eq!(pool.limited(MIN_WORK_PER_WORKER * 100).threads(), 8.min(hw));
    }

    #[test]
    fn ranges_mut_matches_chunks_mut_on_uniform_ranges() {
        let n = 513;
        let mut via_chunks: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut via_ranges = via_chunks.clone();
        let scale = |_: usize, r: Range<usize>, s: &mut [f64]| {
            for (v, idx) in s.iter_mut().zip(r) {
                *v = *v * 2.0 + idx as f64;
            }
        };
        for threads in [1, 4] {
            let pool = ParPool::with_threads(threads);
            pool.chunks_mut(&mut via_chunks, 7, scale);
            pool.ranges_mut(&mut via_ranges, &chunk_ranges(n, 7), scale);
            assert_eq!(via_chunks, via_ranges, "threads={threads}");
        }
    }

    #[test]
    fn ranges_mut_accepts_nonuniform_tiling() {
        let mut data = vec![0usize; 10];
        let ranges = vec![0..3, 3..3, 3..9, 9..10];
        ParPool::with_threads(4).ranges_mut(&mut data, &ranges, |i, r, s| {
            assert_eq!(r.len(), s.len());
            for v in s {
                *v = i + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 3, 3, 3, 3, 3, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "ranges_mut: ranges must cover data")]
    #[allow(clippy::single_range_in_vec_init)]
    fn ranges_mut_rejects_short_tiling() {
        let mut data = vec![0usize; 10];
        ParPool::serial().ranges_mut(&mut data, &[0..4], |_, _, _| {});
    }

    #[test]
    fn empty_data_is_fine() {
        let mut data: Vec<f64> = Vec::new();
        ParPool::with_threads(4).chunks_mut(&mut data, 4, |_, _, _| {});
        let out = ParPool::with_threads(4).map(3, |c| c);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn global_pool_has_at_least_one_thread() {
        assert!(ParPool::current().threads() >= 1);
    }

    #[test]
    fn with_threads_clamps() {
        assert_eq!(ParPool::with_threads(0).threads(), 1);
        assert_eq!(ParPool::with_threads(100_000).threads(), MAX_THREADS);
    }

    #[test]
    fn telemetry_observes_chunks_without_changing_results() {
        // 7 chunks of exactly 1111 items: a length no other test in this
        // binary uses, so concurrently running tests (whose chunks also
        // land in the open window) can be filtered out.
        let n = 7777;
        let chunks = 7;
        let reference: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 2.0).collect();
        let mut data: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let (_, t) = with_telemetry(|| {
            ParPool::with_threads(4).chunks_mut(&mut data, chunks, |_, _, s| {
                for v in s {
                    *v *= 2.0;
                }
            });
        });
        assert_eq!(data, reference, "telemetry must not perturb results");
        let mine: Vec<_> = t.chunks.iter().filter(|c| c.items == 1111).collect();
        assert_eq!(mine.len(), chunks);
        let mut seen: Vec<usize> = mine.iter().map(|c| c.chunk).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..chunks).collect::<Vec<_>>());
        for c in &mine {
            assert!(c.worker < 4);
            assert!(c.end >= c.start && c.start >= 0.0);
        }
        assert!(t.wall > 0.0);
        assert!(t.workers >= 1);
        assert!(t.utilization() > 0.0 && t.utilization() <= 1.0);
        assert!(t.imbalance() >= 1.0 - 1e-12);

        // A pool call outside any window is not recorded: run one with a
        // distinctive chunk size (613), then check the next window never
        // saw it. Same test function as above so the process-global
        // collector is never contended by two test threads at once.
        let mut outside = vec![0.0f64; 613];
        ParPool::with_threads(2).chunks_mut(&mut outside, 1, |_, _, s| {
            for v in s {
                *v += 1.0;
            }
        });
        let ((), empty) = with_telemetry(|| {});
        assert!(empty.chunks.iter().all(|c| c.items != 613));
        assert_eq!(empty.workers, 0);
    }
}
