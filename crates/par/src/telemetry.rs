//! Per-worker wall-clock telemetry for the pool combinators.
//!
//! [`with_telemetry`] wraps any code that drives a [`ParPool`] — a
//! single kernel call or a whole solver step — and collects one
//! [`ChunkTiming`] per chunk the combinators execute inside it: which
//! worker ran the chunk, how many items it covered and its start/end
//! timestamps relative to the collection epoch. The result is a
//! [`PoolTelemetry`] with derived busy/idle time per worker, a
//! utilization figure and a load-imbalance ratio — the numbers a
//! work-stealing-free static-stride schedule needs watched, because a
//! skewed chunk cost distribution shows up directly as idle workers.
//!
//! Collection is **observational only**: it never changes which worker
//! runs which chunk, so the `cpx-par` determinism contract (results
//! keyed to chunk count, bit-identical at any thread count) holds with
//! telemetry on or off. When no collection is active the combinators
//! pay one relaxed atomic load per chunk — noise next to
//! [`MIN_WORK_PER_WORKER`](crate::MIN_WORK_PER_WORKER) items of work.
//!
//! The collector is process-global (worker threads are scoped, so a
//! thread-local cannot see them) and non-reentrant: nesting
//! [`with_telemetry`] panics, and two threads collecting concurrently
//! would attribute each other's chunks. Benchmarks collect one kernel
//! at a time, which is the intended shape.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Is a collection window open? Checked (relaxed) once per chunk.
static COLLECTING: AtomicBool = AtomicBool::new(false);

/// The open collection window: epoch + timings gathered so far.
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

struct Sink {
    epoch: Instant,
    chunks: Vec<ChunkTiming>,
}

/// One executed chunk: who ran it, what it covered, when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkTiming {
    /// Chunk index within its combinator call.
    pub chunk: usize,
    /// Worker that executed it (0 = the calling thread).
    pub worker: usize,
    /// Items the chunk covered (range length, or 1 for `map`).
    pub items: usize,
    /// Start, seconds since the collection epoch.
    pub start: f64,
    /// End, seconds since the collection epoch.
    pub end: f64,
}

impl ChunkTiming {
    /// Chunk wall duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Everything observed in one [`with_telemetry`] window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolTelemetry {
    /// Wall seconds of the whole window (includes any non-pool work the
    /// wrapped closure did; utilization is relative to this).
    pub wall: f64,
    /// Workers observed (max worker index + 1 across all chunks).
    pub workers: usize,
    /// Per-chunk timings in execution-record order.
    pub chunks: Vec<ChunkTiming>,
}

impl PoolTelemetry {
    /// Busy seconds per worker (summed chunk durations), indexed by
    /// worker id; length [`PoolTelemetry::workers`].
    pub fn busy_per_worker(&self) -> Vec<f64> {
        let mut busy = vec![0.0; self.workers];
        for c in &self.chunks {
            busy[c.worker] += c.duration();
        }
        busy
    }

    /// Idle seconds per worker: window wall time minus busy time,
    /// clamped at zero (a chunk can straddle the window edge only by
    /// clock-resolution noise).
    pub fn idle_per_worker(&self) -> Vec<f64> {
        self.busy_per_worker()
            .iter()
            .map(|&b| (self.wall - b).max(0.0))
            .collect()
    }

    /// Aggregate utilization in `[0, 1]`: total busy time over
    /// `workers × wall`. 0.0 for an empty window.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.busy_per_worker().iter().sum();
        (busy / (self.workers as f64 * self.wall)).min(1.0)
    }

    /// Load-imbalance ratio: max worker busy time over mean worker busy
    /// time. 1.0 is perfectly balanced; 0.0 for an empty window. With a
    /// static stride schedule this is the direct cost of skewed chunks —
    /// there is no stealing to hide it.
    pub fn imbalance(&self) -> f64 {
        let busy = self.busy_per_worker();
        if busy.is_empty() {
            return 0.0;
        }
        let max = busy.iter().cloned().fold(0.0, f64::max);
        let mean: f64 = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile over per-worker busy times; `q` in
    /// percent. Returns 0.0 for an empty window.
    pub fn worker_busy_percentile(&self, q: f64) -> f64 {
        let mut busy = self.busy_per_worker();
        if busy.is_empty() {
            return 0.0;
        }
        busy.sort_by(f64::total_cmp);
        cpx_obs::percentile_sorted(&busy, q)
    }

    /// Total busy seconds across all workers.
    pub fn total_busy(&self) -> f64 {
        self.chunks.iter().map(ChunkTiming::duration).sum()
    }

    /// Total items covered by all chunks.
    pub fn total_items(&self) -> usize {
        self.chunks.iter().map(|c| c.items).sum()
    }
}

/// Run `f` with chunk telemetry collection on, returning its result and
/// the observed [`PoolTelemetry`]. Panics if a collection window is
/// already open (the collector is process-global and non-reentrant).
pub fn with_telemetry<R>(f: impl FnOnce() -> R) -> (R, PoolTelemetry) {
    {
        let mut sink = SINK.lock().expect("telemetry sink poisoned");
        assert!(
            sink.is_none(),
            "cpx-par telemetry windows cannot nest or overlap"
        );
        *sink = Some(Sink {
            epoch: Instant::now(),
            chunks: Vec::new(),
        });
    }
    COLLECTING.store(true, Ordering::Release);
    let result = f();
    COLLECTING.store(false, Ordering::Release);
    let sink = SINK
        .lock()
        .expect("telemetry sink poisoned")
        .take()
        .expect("telemetry window was open");
    let workers = sink.chunks.iter().map(|c| c.worker + 1).max().unwrap_or(0);
    (
        result,
        PoolTelemetry {
            wall: sink.epoch.elapsed().as_secs_f64(),
            workers,
            chunks: sink.chunks,
        },
    )
}

/// Is a collection window open? One relaxed load; the combinators call
/// this once per chunk.
#[inline]
pub(crate) fn collecting() -> bool {
    COLLECTING.load(Ordering::Relaxed)
}

/// Record one executed chunk (no-op if the window closed meanwhile).
pub(crate) fn record(chunk: usize, worker: usize, items: usize, t0: Instant, t1: Instant) {
    let mut sink = SINK.lock().expect("telemetry sink poisoned");
    if let Some(sink) = sink.as_mut() {
        sink.chunks.push(ChunkTiming {
            chunk,
            worker,
            items,
            start: t0.duration_since(sink.epoch).as_secs_f64(),
            end: t1.duration_since(sink.epoch).as_secs_f64(),
        });
    }
}

/// Run one chunk body, recording a [`ChunkTiming`] if a collection
/// window is open.
#[inline]
pub(crate) fn timed_chunk<R>(
    chunk: usize,
    worker: usize,
    items: usize,
    f: impl FnOnce() -> R,
) -> R {
    if !collecting() {
        return f();
    }
    let t0 = Instant::now();
    let r = f();
    record(chunk, worker, items, t0, Instant::now());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(chunks: Vec<ChunkTiming>, wall: f64, workers: usize) -> PoolTelemetry {
        PoolTelemetry {
            wall,
            workers,
            chunks,
        }
    }

    fn ct(chunk: usize, worker: usize, start: f64, end: f64) -> ChunkTiming {
        ChunkTiming {
            chunk,
            worker,
            items: 10,
            start,
            end,
        }
    }

    #[test]
    fn busy_idle_and_utilization() {
        // Worker 0 busy 0.8 of 1.0 s, worker 1 busy 0.4.
        let t = fake(vec![ct(0, 0, 0.0, 0.8), ct(1, 1, 0.0, 0.4)], 1.0, 2);
        assert_eq!(t.busy_per_worker(), vec![0.8, 0.4]);
        let idle = t.idle_per_worker();
        assert!((idle[0] - 0.2).abs() < 1e-12 && (idle[1] - 0.6).abs() < 1e-12);
        assert!((t.utilization() - 0.6).abs() < 1e-12);
        // max 0.8 / mean 0.6.
        assert!((t.imbalance() - 0.8 / 0.6).abs() < 1e-12);
        assert!((t.total_busy() - 1.2).abs() < 1e-12);
        assert_eq!(t.total_items(), 20);
    }

    #[test]
    fn percentiles_over_worker_busy() {
        let t = fake(
            vec![
                ct(0, 0, 0.0, 0.1),
                ct(1, 1, 0.0, 0.2),
                ct(2, 2, 0.0, 0.3),
                ct(3, 3, 0.0, 0.4),
            ],
            0.5,
            4,
        );
        assert!((t.worker_busy_percentile(50.0) - 0.3).abs() < 1e-12);
        assert!((t.worker_busy_percentile(99.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_all_zeros() {
        let t = PoolTelemetry::default();
        assert_eq!(t.utilization(), 0.0);
        assert_eq!(t.imbalance(), 0.0);
        assert_eq!(t.worker_busy_percentile(50.0), 0.0);
        assert!(t.busy_per_worker().is_empty());
    }
}
