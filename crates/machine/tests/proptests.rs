//! Property-based tests for the virtual testbed.

use proptest::prelude::*;

use cpx_machine::{CollectiveKind, KernelCost, Machine, Op, Replayer, TraceProgram};

/// A random ring program: compute + neighbour exchange + allreduce.
fn ring_program(n: usize, steps: u32, flops: f64, bytes: usize) -> TraceProgram {
    let mut p = TraceProgram::new(n);
    let g = p.add_world_group();
    for r in 0..n {
        let body = vec![
            Op::Compute(KernelCost::new(flops, flops / 2.0)),
            Op::Send {
                dst: (r + 1) % n,
                bytes,
                tag: 0,
            },
            Op::Recv {
                src: (r + n - 1) % n,
                tag: 0,
            },
            Op::Collective {
                kind: CollectiveKind::Allreduce,
                group: g,
                bytes: 8,
            },
        ];
        p.rank(r).ops.push(Op::Repeat { count: steps, body });
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_is_deterministic(n in 2usize..32, steps in 1u32..8, bytes in 0usize..100_000) {
        let program = ring_program(n, steps, 1e6, bytes);
        let rep = Replayer::new(Machine::archer2());
        let a = rep.run(&program).unwrap();
        let b = rep.run(&program).unwrap();
        prop_assert_eq!(a.finish, b.finish);
        prop_assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn makespan_bounds(n in 2usize..24, steps in 1u32..6, flops in 1e5f64..1e9) {
        let program = ring_program(n, steps, flops, 1024);
        let out = Replayer::new(Machine::archer2()).run(&program).unwrap();
        let m = Machine::archer2();
        // Lower bound: the pure compute time of one rank.
        let compute = m.kernel_time(KernelCost::new(flops, flops / 2.0)) * steps as f64;
        prop_assert!(out.makespan() >= compute * 0.999);
        // All clocks non-negative and ≤ makespan.
        for &f in &out.finish {
            prop_assert!(f >= 0.0 && f <= out.makespan() + 1e-15);
        }
        // Compute + comm accounts for each rank's elapsed time.
        for r in 0..n {
            let total = out.compute_time[r] + out.comm_time[r];
            prop_assert!((total - out.finish[r]).abs() < 1e-9 * out.finish[r].max(1.0));
        }
    }

    #[test]
    fn more_bytes_never_faster(n in 2usize..16, steps in 1u32..4) {
        let small = Replayer::new(Machine::archer2())
            .run(&ring_program(n, steps, 1e6, 64))
            .unwrap()
            .makespan();
        let big = Replayer::new(Machine::archer2())
            .run(&ring_program(n, steps, 1e6, 1 << 20))
            .unwrap()
            .makespan();
        prop_assert!(big >= small);
    }

    #[test]
    fn noise_is_one_sided_and_seeded(n in 2usize..12, seed in 0u64..1000) {
        let program = ring_program(n, 3, 1e7, 512);
        let clean = Replayer::new(Machine::archer2()).run(&program).unwrap();
        let noisy = Replayer::new(Machine::archer2())
            .with_noise(0.05, seed)
            .run(&program)
            .unwrap();
        let noisy2 = Replayer::new(Machine::archer2())
            .with_noise(0.05, seed)
            .run(&program)
            .unwrap();
        // Noise only slows things down.
        prop_assert!(noisy.makespan() >= clean.makespan());
        // And not by more than the amplitude bound (2·amp on compute).
        prop_assert!(noisy.makespan() <= clean.makespan() * 1.25);
        // Same seed ⇒ bit-identical replay.
        prop_assert_eq!(noisy.finish, noisy2.finish);
    }

    #[test]
    fn trace_stats_consistent_with_replay(n in 2usize..16, steps in 1u32..5) {
        let program = ring_program(n, steps, 1e6, 256);
        let stats = cpx_machine::TraceStats::of(&program);
        let out = Replayer::new(Machine::archer2()).run(&program).unwrap();
        prop_assert_eq!(stats.sends, out.messages);
        prop_assert_eq!(stats.send_bytes, out.bytes);
        prop_assert!(stats.messages_balanced());
    }
}
