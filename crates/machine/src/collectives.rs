//! Analytic cost models for MPI-style collectives.
//!
//! Both execution backends share these formulas: the discrete-event
//! replayer charges them directly, and the threaded runtime in `cpx-comm`
//! uses them to advance virtual clocks when a collective completes. The
//! models are the textbook latency–bandwidth (α–β) expressions for the
//! algorithms production MPIs use at these message sizes:
//!
//! * broadcast / reduce — binomial tree: `⌈log2 p⌉ (α + nβ)`
//! * allreduce — recursive doubling: `log2 p` rounds of `α + nβ` plus the
//!   local reduction arithmetic
//! * barrier — dissemination: `⌈log2 p⌉ α`
//! * allgather — ring: `(p-1)(α + (n/p)β)`
//! * alltoall — pairwise exchange: `(p-1)(α + (n/p)β)`
//!
//! `n` is the total payload in bytes and α/β are taken from the machine's
//! link class for the group (intra-node if the whole group fits on one
//! node, inter-node otherwise).

use crate::model::Machine;
use crate::trace::CollectiveKind;

/// ⌈log2 p⌉ with `log2ceil(1) == 0`.
#[inline]
pub fn log2ceil(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros().min(usize::BITS)
}

/// Time for a collective of `kind` over a group of `group_size` ranks
/// with a per-rank payload of `bytes`, on `machine`.
///
/// Returns 0 for single-rank groups: every collective degenerates to a
/// local no-op.
pub fn collective_time(
    machine: &Machine,
    kind: CollectiveKind,
    group_size: usize,
    bytes: usize,
) -> f64 {
    if group_size <= 1 {
        return 0.0;
    }
    let (alpha, beta_bw) = machine.group_link(group_size);
    let beta = 1.0 / beta_bw;
    let p = group_size as f64;
    let n = bytes as f64;
    let rounds = log2ceil(group_size) as f64;
    match kind {
        CollectiveKind::Barrier => rounds * alpha,
        CollectiveKind::Broadcast | CollectiveKind::Reduce => rounds * (alpha + n * beta),
        CollectiveKind::Allreduce => {
            // Recursive doubling + local reduction arithmetic (1 flop per
            // 8-byte word per round, charged at the compute rate).
            let arithmetic = rounds * (n / 8.0) / machine.flops_per_core;
            rounds * (alpha + n * beta) + arithmetic
        }
        CollectiveKind::Allgather | CollectiveKind::Alltoall => {
            (p - 1.0) * (alpha + (n / p) * beta)
        }
        CollectiveKind::Gather | CollectiveKind::Scatter => {
            // Binomial tree with halving payload per level; bounded by the
            // root's full-payload serialization.
            rounds * alpha + n * beta
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Machine {
        Machine::archer2()
    }

    #[test]
    fn log2ceil_values() {
        assert_eq!(log2ceil(1), 0);
        assert_eq!(log2ceil(2), 1);
        assert_eq!(log2ceil(3), 2);
        assert_eq!(log2ceil(4), 2);
        assert_eq!(log2ceil(5), 3);
        assert_eq!(log2ceil(1024), 10);
        assert_eq!(log2ceil(40_000), 16);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        for kind in [
            CollectiveKind::Barrier,
            CollectiveKind::Broadcast,
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
            CollectiveKind::Alltoall,
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
        ] {
            assert_eq!(collective_time(&m(), kind, 1, 1 << 20), 0.0);
        }
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let t1k = collective_time(&m(), CollectiveKind::Allreduce, 1024, 64);
        let t32k = collective_time(&m(), CollectiveKind::Allreduce, 32768, 64);
        // 15/10 rounds: ratio must be ~1.5, definitely below linear (32x).
        assert!(t32k > t1k);
        assert!(t32k < 2.0 * t1k);
    }

    #[test]
    fn barrier_cheaper_than_allreduce() {
        let b = collective_time(&m(), CollectiveKind::Barrier, 512, 0);
        let a = collective_time(&m(), CollectiveKind::Allreduce, 512, 8);
        assert!(b <= a);
    }

    #[test]
    fn intra_node_group_is_faster() {
        let small = collective_time(&m(), CollectiveKind::Allreduce, 64, 8);
        // Same round count (log2ceil(64)=6 vs log2ceil(33)=6) but the
        // 64-rank group fits on a node while a 4096-rank group does not.
        let large = collective_time(&m(), CollectiveKind::Allreduce, 4096, 8);
        assert!(small < large);
    }

    #[test]
    fn alltoall_scales_with_group() {
        let t8 = collective_time(&m(), CollectiveKind::Alltoall, 8, 8192);
        let t64 = collective_time(&m(), CollectiveKind::Alltoall, 64, 8192);
        assert!(t64 > t8);
    }

    #[test]
    fn payload_increases_cost() {
        for kind in [
            CollectiveKind::Broadcast,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
            CollectiveKind::Gather,
        ] {
            let small = collective_time(&m(), kind, 256, 64);
            let big = collective_time(&m(), kind, 256, 1 << 22);
            assert!(big > small, "{kind:?}");
        }
    }
}
