//! # cpx-machine
//!
//! Machine model and discrete-event virtual testbed for the CPX coupled
//! mini-app reproduction.
//!
//! The paper's measurements were taken on ARCHER2, an HPE-Cray EX system
//! with 128-core AMD EPYC 7742 nodes and a Slingshot interconnect, at up to
//! 40,000 MPI ranks. This crate provides the stand-in for that testbed:
//!
//! * [`model::Machine`] — a parametric description of a cluster (cores per
//!   node, sustained per-core compute rate, memory bandwidth, intra- and
//!   inter-node latency/bandwidth), with an [`model::Machine::archer2`]
//!   preset.
//! * [`cost`] — roofline-style kernel cost accounting: a kernel is
//!   characterised by the floating-point work and memory traffic it
//!   performs and the machine converts that into seconds.
//! * [`trace`] — a compact per-rank *phase trace* representation
//!   (compute / send / recv / collectives) that mini-apps emit from their
//!   real partitioned data structures.
//! * [`des`] — a discrete-event replayer that executes a
//!   [`trace::TraceProgram`] against a [`model::Machine`] and yields the
//!   virtual elapsed time of every rank. It comfortably replays programs
//!   with tens of thousands of ranks.
//! * [`collectives`] — analytic cost models for MPI-style collectives
//!   (binomial-tree broadcast, recursive-doubling allreduce, …) shared by
//!   the replayer and the threaded runtime in `cpx-comm`.
//!
//! The combination lets the rest of the workspace produce "measured"
//! scaling curves at ARCHER2 scale without ARCHER2: mini-apps partition
//! their actual data structures at the requested rank count, emit traces,
//! and the replayer integrates the timing.

pub mod collectives;
pub mod cost;
pub mod des;
pub mod graph;
pub mod model;
pub mod stats;
pub mod trace;

pub use cost::KernelCost;
pub use des::{DesEvent, DesEventKind, ReplayError, ReplayOutcome, Replayer};
pub use graph::{build_task_graph, collective_label, scale_compute_by_phase, validate_against_des};
pub use model::{Machine, MachineBuilder};
pub use stats::TraceStats;
pub use trace::{CollectiveKind, Op, PhaseId, RankTrace, TraceProgram};
