//! Roofline-style kernel cost accounting.
//!
//! Mini-apps in this workspace never time host execution with a wall
//! clock; instead every computational phase reports the floating-point
//! work and memory traffic it performs as a [`KernelCost`], and the
//! machine model converts that into virtual seconds. This keeps the
//! virtual testbed deterministic and independent of the machine the
//! reproduction happens to run on.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Work performed by one rank in one computational phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelCost {
    /// Double-precision floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from memory (reads + writes).
    pub bytes: f64,
}

impl KernelCost {
    /// A kernel performing `flops` FLOPs and moving `bytes` bytes.
    #[inline]
    pub fn new(flops: f64, bytes: f64) -> Self {
        KernelCost { flops, bytes }
    }

    /// A purely compute-bound kernel.
    #[inline]
    pub fn flops(flops: f64) -> Self {
        KernelCost { flops, bytes: 0.0 }
    }

    /// A purely bandwidth-bound kernel.
    #[inline]
    pub fn bytes(bytes: f64) -> Self {
        KernelCost { flops: 0.0, bytes }
    }

    /// The zero cost.
    #[inline]
    pub fn zero() -> Self {
        KernelCost::default()
    }

    /// Arithmetic intensity in FLOP/byte (`inf` for pure compute,
    /// `0` for pure streaming).
    #[inline]
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Whether both components are finite and non-negative.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.flops.is_finite() && self.bytes.is_finite() && self.flops >= 0.0 && self.bytes >= 0.0
    }
}

impl Add for KernelCost {
    type Output = KernelCost;
    #[inline]
    fn add(self, rhs: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + rhs.flops,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for KernelCost {
    #[inline]
    fn add_assign(&mut self, rhs: KernelCost) {
        self.flops += rhs.flops;
        self.bytes += rhs.bytes;
    }
}

impl Mul<f64> for KernelCost {
    type Output = KernelCost;
    #[inline]
    fn mul(self, k: f64) -> KernelCost {
        KernelCost {
            flops: self.flops * k,
            bytes: self.bytes * k,
        }
    }
}

impl Sum for KernelCost {
    fn sum<I: Iterator<Item = KernelCost>>(iter: I) -> Self {
        iter.fold(KernelCost::zero(), |a, b| a + b)
    }
}

/// A running tally of kernel work, used by the numerics crates to report
/// what they actually did (e.g. FLOPs per AMG V-cycle) so that trace
/// generation is grounded in measured operation counts rather than
/// hand-waved estimates.
#[derive(Debug, Clone, Default)]
pub struct WorkCounter {
    total: KernelCost,
    phases: Vec<(String, KernelCost)>,
}

impl WorkCounter {
    /// An empty counter.
    pub fn new() -> Self {
        WorkCounter::default()
    }

    /// Record `cost` against phase `name` (phases accumulate).
    pub fn record(&mut self, name: &str, cost: KernelCost) {
        self.total += cost;
        if let Some((_, c)) = self.phases.iter_mut().find(|(n, _)| n == name) {
            *c += cost;
        } else {
            self.phases.push((name.to_string(), cost));
        }
    }

    /// Total work across all phases.
    pub fn total(&self) -> KernelCost {
        self.total
    }

    /// Work recorded for `name`, zero if absent.
    pub fn phase(&self, name: &str) -> KernelCost {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// All phases in insertion order.
    pub fn phases(&self) -> &[(String, KernelCost)] {
        &self.phases
    }

    /// Reset the counter.
    pub fn clear(&mut self) {
        self.total = KernelCost::zero();
        self.phases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let a = KernelCost::new(10.0, 20.0);
        let b = KernelCost::new(1.0, 2.0);
        let c = a + b * 2.0;
        assert_eq!(c, KernelCost::new(12.0, 24.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: KernelCost = (0..4).map(|i| KernelCost::new(i as f64, 1.0)).sum();
        assert_eq!(total, KernelCost::new(6.0, 4.0));
    }

    #[test]
    fn intensity_edges() {
        assert_eq!(KernelCost::flops(8.0).intensity(), f64::INFINITY);
        assert_eq!(KernelCost::bytes(8.0).intensity(), 0.0);
        assert!((KernelCost::new(8.0, 4.0).intensity() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn work_counter_accumulates_per_phase() {
        let mut w = WorkCounter::new();
        w.record("spmv", KernelCost::new(100.0, 800.0));
        w.record("spmv", KernelCost::new(100.0, 800.0));
        w.record("dot", KernelCost::new(10.0, 80.0));
        assert_eq!(w.phase("spmv"), KernelCost::new(200.0, 1600.0));
        assert_eq!(w.phase("dot"), KernelCost::new(10.0, 80.0));
        assert_eq!(w.phase("missing"), KernelCost::zero());
        assert_eq!(w.total(), KernelCost::new(210.0, 1680.0));
        assert_eq!(w.phases().len(), 2);
        w.clear();
        assert_eq!(w.total(), KernelCost::zero());
    }

    #[test]
    fn validity() {
        assert!(KernelCost::new(1.0, 1.0).is_valid());
        assert!(!KernelCost::new(-1.0, 1.0).is_valid());
        assert!(!KernelCost::new(f64::NAN, 1.0).is_valid());
    }
}
