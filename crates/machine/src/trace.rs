//! Per-rank phase traces.
//!
//! A [`TraceProgram`] is the interface between the mini-apps and the
//! virtual testbed: each mini-app partitions its real data structures at
//! the requested rank count and emits, per rank, the sequence of compute
//! phases, point-to-point messages and collectives one timestep performs.
//! The [`crate::des::Replayer`] then integrates the program against a
//! [`crate::model::Machine`] to produce virtual runtimes.
//!
//! Traces are deliberately *not* recorded from execution — they are
//! generated from partition arithmetic (halo lists, particle counts,
//! matrix row distributions), which is what lets the testbed scale to
//! 40,000 ranks on a laptop.

use serde::{Deserialize, Serialize};

use crate::cost::KernelCost;

/// Identifier of a rank group registered in a [`TraceProgram`].
pub type GroupId = usize;

/// Identifier of a phase label (used to attribute time to solver
/// functions, e.g. "pressure field" vs "spray").
pub type PhaseId = u16;

/// The collective operations the testbed models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Synchronisation only.
    Barrier,
    /// One-to-all, `bytes` payload.
    Broadcast,
    /// All-to-one reduction.
    Reduce,
    /// All-to-all reduction (the workhorse of dot products and residuals).
    Allreduce,
    /// All-to-all gather of per-rank contributions.
    Allgather,
    /// Personalised all-to-all exchange.
    Alltoall,
    /// All-to-one gather.
    Gather,
    /// One-to-all scatter.
    Scatter,
}

/// One event in a rank's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Local computation described by a roofline cost.
    Compute(KernelCost),
    /// Local computation of a fixed duration in seconds (used when the
    /// duration was measured/calibrated rather than derived).
    ComputeSecs(f64),
    /// Eager point-to-point send. The sender is charged only the software
    /// overhead; transfer time is charged to the receiver.
    Send { dst: usize, bytes: usize, tag: u32 },
    /// Blocking receive matching `(src, tag)` in FIFO order.
    Recv { src: usize, tag: u32 },
    /// Collective over a registered group. Every member of the group must
    /// post the same collectives in the same order.
    Collective {
        kind: CollectiveKind,
        group: GroupId,
        bytes: usize,
    },
    /// Set the phase label for subsequent ops on this rank (for
    /// per-function time attribution, Fig 5).
    Phase(PhaseId),
    /// Repeat a body of ops `count` times (loop compression; bodies may
    /// not nest another `Repeat`).
    Repeat { count: u32, body: Vec<Op> },
}

/// The trace of a single rank.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankTrace {
    /// Ordered events.
    pub ops: Vec<Op>,
}

impl RankTrace {
    /// An empty trace.
    pub fn new() -> Self {
        RankTrace::default()
    }

    /// Append a compute phase.
    pub fn compute(&mut self, cost: KernelCost) {
        self.ops.push(Op::Compute(cost));
    }

    /// Append a fixed-duration compute phase.
    pub fn compute_secs(&mut self, secs: f64) {
        self.ops.push(Op::ComputeSecs(secs));
    }

    /// Append a send.
    pub fn send(&mut self, dst: usize, bytes: usize, tag: u32) {
        self.ops.push(Op::Send { dst, bytes, tag });
    }

    /// Append a receive.
    pub fn recv(&mut self, src: usize, tag: u32) {
        self.ops.push(Op::Recv { src, tag });
    }

    /// Append a collective.
    pub fn collective(&mut self, kind: CollectiveKind, group: GroupId, bytes: usize) {
        self.ops.push(Op::Collective { kind, group, bytes });
    }

    /// Append a phase label change.
    pub fn phase(&mut self, phase: PhaseId) {
        self.ops.push(Op::Phase(phase));
    }

    /// Number of ops counting repeated bodies once.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops after expanding `Repeat` bodies.
    pub fn expanded_len(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Repeat { count, body } => *count as usize * body.len(),
                _ => 1,
            })
            .sum()
    }
}

/// A complete multi-rank program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceProgram {
    /// Per-rank traces; `traces.len()` is the world size.
    pub traces: Vec<RankTrace>,
    /// Registered rank groups for collectives.
    pub groups: Vec<Vec<usize>>,
}

impl TraceProgram {
    /// A program with `n_ranks` empty traces and no groups.
    pub fn new(n_ranks: usize) -> Self {
        TraceProgram {
            traces: vec![RankTrace::new(); n_ranks],
            groups: Vec::new(),
        }
    }

    /// World size.
    pub fn n_ranks(&self) -> usize {
        self.traces.len()
    }

    /// Register a rank group and return its id. Group members must be
    /// distinct, in-range ranks; this is validated at replay time.
    pub fn add_group(&mut self, ranks: Vec<usize>) -> GroupId {
        self.groups.push(ranks);
        self.groups.len() - 1
    }

    /// Register the all-ranks group.
    pub fn add_world_group(&mut self) -> GroupId {
        let n = self.n_ranks();
        self.add_group((0..n).collect())
    }

    /// Mutable access to rank `r`'s trace.
    pub fn rank(&mut self, r: usize) -> &mut RankTrace {
        &mut self.traces[r]
    }

    /// Validate structural invariants: group members in range and unique,
    /// send/recv peers in range. Returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_ranks();
        for (gid, g) in self.groups.iter().enumerate() {
            let mut seen = vec![false; n];
            for &r in g {
                if r >= n {
                    return Err(format!("group {gid}: rank {r} out of range ({n} ranks)"));
                }
                if seen[r] {
                    return Err(format!("group {gid}: duplicate rank {r}"));
                }
                seen[r] = true;
            }
        }
        let check_ops = |rank: usize, ops: &[Op]| -> Result<(), String> {
            for op in ops {
                match op {
                    Op::Send { dst, .. } if *dst >= n => {
                        return Err(format!("rank {rank}: send to out-of-range rank {dst}"));
                    }
                    Op::Recv { src, .. } if *src >= n => {
                        return Err(format!("rank {rank}: recv from out-of-range rank {src}"));
                    }
                    Op::Collective { group, .. } if *group >= self.groups.len() => {
                        return Err(format!("rank {rank}: unknown group {group}"));
                    }
                    Op::Repeat { body, .. }
                        if body.iter().any(|o| matches!(o, Op::Repeat { .. })) =>
                    {
                        return Err(format!("rank {rank}: nested Repeat"));
                    }
                    _ => {}
                }
            }
            Ok(())
        };
        for (rank, t) in self.traces.iter().enumerate() {
            check_ops(rank, &t.ops)?;
            for op in &t.ops {
                if let Op::Repeat { body, .. } = op {
                    check_ops(rank, body)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_ok() {
        let mut p = TraceProgram::new(4);
        let world = p.add_world_group();
        for r in 0..4 {
            p.rank(r).compute(KernelCost::flops(1e6));
            p.rank(r).collective(CollectiveKind::Allreduce, world, 8);
        }
        p.rank(0).send(1, 100, 7);
        p.rank(1).recv(0, 7);
        assert!(p.validate().is_ok());
        assert_eq!(p.n_ranks(), 4);
    }

    #[test]
    fn validate_rejects_bad_peer() {
        let mut p = TraceProgram::new(2);
        p.rank(0).send(5, 10, 0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_group_member() {
        let mut p = TraceProgram::new(3);
        p.add_group(vec![0, 0]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_group() {
        let mut p = TraceProgram::new(2);
        p.rank(0).collective(CollectiveKind::Barrier, 3, 0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_nested_repeat() {
        let mut p = TraceProgram::new(1);
        p.rank(0).ops.push(Op::Repeat {
            count: 2,
            body: vec![Op::Repeat {
                count: 2,
                body: vec![],
            }],
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn expanded_len_counts_repeats() {
        let mut t = RankTrace::new();
        t.compute(KernelCost::zero());
        t.ops.push(Op::Repeat {
            count: 10,
            body: vec![Op::ComputeSecs(0.0), Op::ComputeSecs(0.0)],
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.expanded_len(), 21);
    }
}
