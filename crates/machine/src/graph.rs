//! Happens-before task-graph construction from trace programs.
//!
//! [`build_task_graph`] walks a [`TraceProgram`] against a [`Machine`]
//! and produces the [`cpx_obs::TaskGraph`] the critical-path analytics
//! run on: one node per expanded op, program-order edges within a rank,
//! a matched-send edge per receive (FIFO per `(src, dst, tag)`, the
//! mailbox discipline of [`crate::des::Replayer`]), and one shared
//! [`cpx_obs::Meet`] per collective occurrence.
//!
//! The construction is *static* — no replay runs; matching follows from
//! program order alone, exactly as the DES scheduler would resolve it.
//! Costs are charged with the same float expressions the replayer uses
//! (`kernel_time`, `p2p_time`, `send_overhead`, `collective_time`), so
//! a noise-free [`crate::des::Replayer::run`] and the graph's baseline
//! schedule agree **bit for bit**; [`validate_against_des`] checks that
//! against a logged event stream, event by event.

use cpx_obs::{Meet, Schedule, TaskGraph, TaskKind, TaskNode};

use crate::collectives::collective_time;
use crate::des::{DesEvent, DesEventKind};
use crate::model::Machine;
use crate::trace::{CollectiveKind, Op, TraceProgram};

/// Short label for a collective kind (blamed-span output).
pub fn collective_label(kind: CollectiveKind) -> &'static str {
    match kind {
        CollectiveKind::Barrier => "barrier",
        CollectiveKind::Broadcast => "broadcast",
        CollectiveKind::Reduce => "reduce",
        CollectiveKind::Allreduce => "allreduce",
        CollectiveKind::Allgather => "allgather",
        CollectiveKind::Alltoall => "alltoall",
        CollectiveKind::Gather => "gather",
        CollectiveKind::Scatter => "scatter",
    }
}

/// Build the causal task graph of `program` on `machine`.
///
/// `phase_names` labels phase ids for reports (index 0 is conventionally
/// `"(untracked)"`); it does not affect the graph structure. Programs
/// with noise are not representable — the graph models the noise-free
/// replay, which is what every committed artifact records.
///
/// Errors on malformed programs (receive with no matching send,
/// inconsistent collective kinds, short collective occurrences) instead
/// of deadlocking the way a live replay would.
pub fn build_task_graph(
    program: &TraceProgram,
    machine: &Machine,
    phase_names: &[String],
) -> Result<TaskGraph, String> {
    program.validate()?;
    let n = program.n_ranks();
    let mut nodes: Vec<TaskNode> = Vec::new();

    // Sends per (src, dst, tag), in sender program order — exactly the
    // DES mailbox FIFO, because each key has a single sender.
    use std::collections::HashMap;
    let mut send_queues: HashMap<(usize, usize, u32), std::collections::VecDeque<usize>> =
        HashMap::new();
    // Collective occurrences: per group, per occurrence index, the
    // member entries in rank-walk order.
    struct Entry {
        node: usize,
        kind: CollectiveKind,
        bytes: usize,
    }
    let mut occurrences: Vec<Vec<Vec<Entry>>> = std::iter::repeat_with(Vec::new)
        .take(program.groups.len())
        .collect();

    for rank in 0..n {
        let mut prev: Option<usize> = None;
        let mut phase: u16 = 0;
        let mut occ_counter = vec![0usize; program.groups.len()];
        // Expanded-op walk (Repeat bodies are not nested, like the DES
        // cursor assumes).
        let mut walk =
            |op: &Op,
             nodes: &mut Vec<TaskNode>,
             send_queues: &mut HashMap<(usize, usize, u32), std::collections::VecDeque<usize>>,
             occurrences: &mut Vec<Vec<Vec<Entry>>>,
             prev: &mut Option<usize>,
             phase: &mut u16|
             -> Result<(), String> {
                match *op {
                    Op::Phase(p) => {
                        *phase = p;
                    }
                    Op::Compute(cost) => {
                        let id = nodes.len();
                        nodes.push(TaskNode {
                            rank,
                            phase: *phase,
                            kind: TaskKind::Compute,
                            dur: machine.kernel_time(cost),
                            transfer: 0.0,
                            prev: *prev,
                            matched_send: None,
                        });
                        *prev = Some(id);
                    }
                    Op::ComputeSecs(secs) => {
                        let id = nodes.len();
                        nodes.push(TaskNode {
                            rank,
                            phase: *phase,
                            kind: TaskKind::Compute,
                            dur: secs,
                            transfer: 0.0,
                            prev: *prev,
                            matched_send: None,
                        });
                        *prev = Some(id);
                    }
                    Op::Send { dst, bytes, tag } => {
                        let id = nodes.len();
                        nodes.push(TaskNode {
                            rank,
                            phase: *phase,
                            kind: TaskKind::Send {
                                dst,
                                tag,
                                bytes: bytes as u64,
                            },
                            dur: machine.send_overhead,
                            transfer: machine.p2p_time(rank, dst, bytes),
                            prev: *prev,
                            matched_send: None,
                        });
                        send_queues
                            .entry((rank, dst, tag))
                            .or_default()
                            .push_back(id);
                        *prev = Some(id);
                    }
                    Op::Recv { src, tag } => {
                        let id = nodes.len();
                        nodes.push(TaskNode {
                            rank,
                            phase: *phase,
                            kind: TaskKind::Recv { src, tag },
                            dur: 0.0,
                            transfer: 0.0,
                            prev: *prev,
                            matched_send: None,
                        });
                        *prev = Some(id);
                    }
                    Op::Collective { kind, group, bytes } => {
                        if group >= program.groups.len() {
                            return Err(format!("rank {rank}: unknown group {group}"));
                        }
                        let id = nodes.len();
                        nodes.push(TaskNode {
                            rank,
                            phase: *phase,
                            // Meet index patched after the walk.
                            kind: TaskKind::Collective { meet: usize::MAX },
                            dur: 0.0,
                            transfer: 0.0,
                            prev: *prev,
                            matched_send: None,
                        });
                        let occ = occ_counter[group];
                        occ_counter[group] += 1;
                        if occurrences[group].len() <= occ {
                            occurrences[group].resize_with(occ + 1, Vec::new);
                        }
                        occurrences[group][occ].push(Entry {
                            node: id,
                            kind,
                            bytes,
                        });
                        *prev = Some(id);
                    }
                    Op::Repeat { .. } => unreachable!("expanded by caller"),
                }
                Ok(())
            };

        for op in &program.traces[rank].ops {
            match op {
                Op::Repeat { count, body } => {
                    for _ in 0..*count {
                        for b in body {
                            walk(
                                b,
                                &mut nodes,
                                &mut send_queues,
                                &mut occurrences,
                                &mut prev,
                                &mut phase,
                            )?;
                        }
                    }
                }
                other => walk(
                    other,
                    &mut nodes,
                    &mut send_queues,
                    &mut occurrences,
                    &mut prev,
                    &mut phase,
                )?,
            }
        }
    }

    // Match receives to sends: receives on one key execute on a single
    // rank in its program order, which is ascending node id — the pop
    // order below is the DES match order.
    for id in 0..nodes.len() {
        if let TaskKind::Recv { src, tag } = nodes[id].kind {
            let rank = nodes[id].rank;
            let send = send_queues
                .get_mut(&(src, rank, tag))
                .and_then(|q| q.pop_front())
                .ok_or_else(|| {
                    format!("rank {rank}: recv from {src} tag {tag} has no matching send")
                })?;
            nodes[id].matched_send = Some(send);
            nodes[id].transfer = nodes[send].transfer;
        }
    }
    if let Some(((src, dst, tag), _)) = send_queues.iter().find(|(_, q)| !q.is_empty()) {
        return Err(format!("send {src}->{dst} tag {tag} is never received"));
    }

    // Seal collective occurrences into meets.
    let mut meets: Vec<Meet> = Vec::new();
    for (group, occs) in occurrences.iter().enumerate() {
        let gsize = program.groups[group].len();
        for (occ, entries) in occs.iter().enumerate() {
            if entries.len() != gsize {
                return Err(format!(
                    "group {group} occurrence {occ}: {} of {gsize} members emitted a collective",
                    entries.len()
                ));
            }
            let kind = entries[0].kind;
            let mut max_bytes = 0usize;
            for e in entries {
                if e.kind != kind {
                    return Err(format!(
                        "group {group} occurrence {occ}: mismatched collective kinds \
                         {kind:?} vs {:?}",
                        e.kind
                    ));
                }
                max_bytes = max_bytes.max(e.bytes);
            }
            let meet_id = meets.len();
            for e in entries {
                nodes[e.node].kind = TaskKind::Collective { meet: meet_id };
            }
            meets.push(Meet {
                members: entries.iter().map(|e| e.node).collect(),
                cost: collective_time(machine, kind, gsize, max_bytes),
                label: collective_label(kind),
            });
        }
    }

    Ok(TaskGraph {
        nodes,
        meets,
        n_ranks: n,
        phase_names: phase_names.to_vec(),
    })
}

/// Check a baseline schedule against a logged DES event stream, event
/// by event and **bit by bit**: send/recv events must carry the node's
/// end time, collective events the node's start (entry) time, and the
/// finish event the rank's final clock. Any drift means the graph and
/// the replayer disagree about the run's causal structure.
pub fn validate_against_des(
    graph: &TaskGraph,
    sched: &Schedule,
    events: &[DesEvent],
) -> Result<(), String> {
    // Per-rank cursors over that rank's nodes in id (= program) order.
    let mut rank_nodes: Vec<Vec<usize>> = vec![Vec::new(); graph.n_ranks];
    for (id, node) in graph.nodes.iter().enumerate() {
        rank_nodes[node.rank].push(id);
    }
    let mut cursor = vec![0usize; graph.n_ranks];

    let mut advance_to = |rank: usize, want: fn(&TaskKind) -> bool| -> Option<usize> {
        let list = &rank_nodes[rank];
        while cursor[rank] < list.len() {
            let id = list[cursor[rank]];
            cursor[rank] += 1;
            if want(&graph.nodes[id].kind) {
                return Some(id);
            }
        }
        None
    };

    for (i, ev) in events.iter().enumerate() {
        let rank = ev.rank as usize;
        if rank >= graph.n_ranks {
            return Err(format!("event {i}: rank {rank} outside graph"));
        }
        let (got, what) = match ev.kind {
            DesEventKind::Send { .. } => (
                advance_to(rank, |k| matches!(k, TaskKind::Send { .. })).map(|id| sched.end[id]),
                "send end",
            ),
            DesEventKind::Recv { .. } => (
                advance_to(rank, |k| matches!(k, TaskKind::Recv { .. })).map(|id| sched.end[id]),
                "recv end",
            ),
            DesEventKind::Collective { .. } => (
                advance_to(rank, |k| matches!(k, TaskKind::Collective { .. }))
                    .map(|id| sched.start[id]),
                "collective entry",
            ),
            DesEventKind::Finish => (
                Some(
                    rank_nodes[rank]
                        .last()
                        .map(|&id| sched.end[id])
                        .unwrap_or(0.0),
                ),
                "finish",
            ),
        };
        let Some(got) = got else {
            return Err(format!(
                "event {i}: rank {rank} has no remaining {what} node"
            ));
        };
        if got.to_bits() != ev.vtime.to_bits() {
            return Err(format!(
                "event {i}: rank {rank} {what} = {got:?} but DES logged {:?} \
                 (diff {:e})",
                ev.vtime,
                (got - ev.vtime).abs()
            ));
        }
    }
    Ok(())
}

/// Phase-aware compute rescaling of a program: every `Compute` /
/// `ComputeSecs` op in phase `p` has its cost multiplied by
/// `factor[p]` (missing entries mean 1.0). `Repeat` bodies are expanded
/// so phase state threads through iterations correctly; the expanded
/// program replays to the identical event stream when all factors are
/// 1.0. This is how a what-if prediction gets its ground truth: scale
/// the program, re-run the DES, compare makespans.
pub fn scale_compute_by_phase(program: &TraceProgram, factor: &[f64]) -> TraceProgram {
    let f = |p: u16| -> f64 { *factor.get(p as usize).unwrap_or(&1.0) };
    let mut out = TraceProgram::new(program.n_ranks());
    out.groups = program.groups.clone();
    for (rank, trace) in program.traces.iter().enumerate() {
        let mut phase: u16 = 0;
        let mut ops: Vec<Op> = Vec::with_capacity(trace.expanded_len());
        let push = |op: &Op, ops: &mut Vec<Op>, phase: &mut u16| match *op {
            Op::Phase(p) => {
                *phase = p;
                ops.push(Op::Phase(p));
            }
            Op::Compute(cost) => {
                let k = f(*phase);
                ops.push(Op::Compute(cost * k));
            }
            Op::ComputeSecs(secs) => {
                ops.push(Op::ComputeSecs(secs * f(*phase)));
            }
            ref other => ops.push(other.clone()),
        };
        for op in &trace.ops {
            match op {
                Op::Repeat { count, body } => {
                    for _ in 0..*count {
                        for b in body {
                            push(b, &mut ops, &mut phase);
                        }
                    }
                }
                other => push(other, &mut ops, &mut phase),
            }
        }
        out.traces[rank].ops = ops;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;
    use crate::des::Replayer;
    use cpx_obs::Rescale;

    fn ring_program(n: usize, iters: u32) -> TraceProgram {
        let mut prog = TraceProgram::new(n);
        let world = prog.add_world_group();
        for r in 0..n {
            let t = prog.rank(r);
            t.phase(1);
            t.ops.push(Op::Repeat {
                count: iters,
                body: vec![
                    Op::Compute(KernelCost::flops(1e9 * (r + 1) as f64)),
                    Op::Send {
                        dst: (r + 1) % n,
                        bytes: 4096,
                        tag: 7,
                    },
                    Op::Recv {
                        src: (r + n - 1) % n,
                        tag: 7,
                    },
                    Op::Collective {
                        kind: CollectiveKind::Allreduce,
                        group: world,
                        bytes: 8,
                    },
                ],
            });
        }
        prog
    }

    fn names() -> Vec<String> {
        vec!["(untracked)".to_string(), "ring".to_string()]
    }

    #[test]
    fn graph_makespan_bit_matches_des() {
        let machine = Machine::archer2();
        let prog = ring_program(6, 4);
        let graph = build_task_graph(&prog, &machine, &names()).unwrap();
        let sched = graph.schedule(&Rescale::none()).unwrap();
        let (out, log) = Replayer::new(machine).run_logged(&prog).unwrap();
        assert_eq!(sched.makespan.to_bits(), out.makespan().to_bits());
        validate_against_des(&graph, &sched, &log).unwrap();
    }

    #[test]
    fn cross_node_ranks_use_inter_node_links() {
        // Ranks straddling a node boundary: transfers must price the
        // inter-node link, visible as a larger makespan than the same
        // program on one node.
        let machine = Machine::archer2();
        let n = machine.cores_per_node;
        let mut prog = TraceProgram::new(n + 1);
        prog.rank(0).send(n, 1 << 20, 3);
        prog.rank(n).recv(0, 3);
        let graph = build_task_graph(&prog, &machine, &names()).unwrap();
        let sched = graph.schedule(&Rescale::none()).unwrap();
        let (out, log) = Replayer::new(machine).run_logged(&prog).unwrap();
        assert_eq!(sched.makespan.to_bits(), out.makespan().to_bits());
        validate_against_des(&graph, &sched, &log).unwrap();
    }

    #[test]
    fn what_if_rescale_matches_rescaled_des_replay() {
        // The engine's prediction for "phase-1 compute 2x faster" must
        // bit-match actually rescaling the program and re-replaying.
        let machine = Machine::archer2();
        let prog = ring_program(5, 3);
        let graph = build_task_graph(&prog, &machine, &names()).unwrap();
        let factors = vec![1.0, 0.5];
        let predicted = graph
            .what_if_makespan(&Rescale {
                compute_by_phase: factors.clone(),
                transfer_by_tag: vec![],
            })
            .unwrap();
        let scaled = scale_compute_by_phase(&prog, &factors);
        let measured = Replayer::new(machine).run(&scaled).unwrap().makespan();
        assert_eq!(predicted.to_bits(), measured.to_bits());
    }

    #[test]
    fn identity_scale_preserves_the_event_stream() {
        let machine = Machine::archer2();
        let prog = ring_program(4, 2);
        let expanded = scale_compute_by_phase(&prog, &[]);
        let (_, log_a) = Replayer::new(machine.clone()).run_logged(&prog).unwrap();
        let (_, log_b) = Replayer::new(machine).run_logged(&expanded).unwrap();
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn unmatched_messaging_is_a_build_error() {
        let mut prog = TraceProgram::new(2);
        prog.rank(0).send(1, 64, 1);
        let err = build_task_graph(&prog, &Machine::archer2(), &names()).unwrap_err();
        assert!(err.contains("never received"), "{err}");

        let mut prog = TraceProgram::new(2);
        prog.rank(1).recv(0, 9);
        let err = build_task_graph(&prog, &Machine::archer2(), &names()).unwrap_err();
        assert!(err.contains("no matching send"), "{err}");
    }

    #[test]
    fn short_collective_is_a_build_error() {
        let mut prog = TraceProgram::new(2);
        let world = prog.add_world_group();
        prog.rank(0).collective(CollectiveKind::Allreduce, world, 8);
        let err = build_task_graph(&prog, &Machine::archer2(), &names()).unwrap_err();
        assert!(err.contains("members emitted"), "{err}");
    }
}
