//! Discrete-event replayer for [`TraceProgram`]s.
//!
//! The replayer executes every rank's trace against a [`Machine`],
//! advancing a per-rank virtual clock:
//!
//! * `Compute` advances the rank's clock by the roofline time of the
//!   kernel on one core.
//! * `Send` is eager: the sender is charged only the per-message software
//!   overhead and the message is deposited with an arrival timestamp of
//!   `send_clock + p2p_time`.
//! * `Recv` blocks until the matching `(src, tag)` message exists, then
//!   sets the clock to `max(clock, arrival)`.
//! * `Collective` blocks until every member of the group arrives, then
//!   sets every member's clock to `max(member clocks) + collective_time`.
//!
//! Execution is a simple run-to-block scheduler over runnable ranks, so
//! replay cost is `O(total ops)` — programs with tens of thousands of
//! ranks and millions of ops replay in well under a second. Replay is
//! fully deterministic.

use std::collections::{HashMap, VecDeque};

use cpx_obs::{RankRecorder, TraceSession};

use crate::collectives::collective_time;
use crate::model::Machine;
use crate::trace::{CollectiveKind, Op, PhaseId, RankTrace, TraceProgram};

/// Errors detected during replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The program failed structural validation.
    Invalid(String),
    /// No rank can make progress but not all ranks finished.
    Deadlock {
        /// Ranks still blocked, with a description of what they wait on.
        blocked: Vec<(usize, String)>,
    },
    /// Two members of a group posted different collectives at the same
    /// position in the group's collective sequence.
    CollectiveMismatch {
        group: usize,
        expected: CollectiveKind,
        found: CollectiveKind,
    },
    /// A rank posted a collective on a group it is not a member of.
    NotAMember { rank: usize, group: usize },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Invalid(s) => write!(f, "invalid trace program: {s}"),
            ReplayError::Deadlock { blocked } => {
                write!(f, "deadlock: {} ranks blocked", blocked.len())?;
                for (r, why) in blocked.iter().take(4) {
                    write!(f, "; rank {r}: {why}")?;
                }
                Ok(())
            }
            ReplayError::CollectiveMismatch {
                group,
                expected,
                found,
            } => write!(
                f,
                "collective mismatch on group {group}: {expected:?} vs {found:?}"
            ),
            ReplayError::NotAMember { rank, group } => {
                write!(
                    f,
                    "rank {rank} posted collective on group {group} it is not in"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// What happened in one replay-relevant scheduler step (see
/// [`DesEvent`]). Compute ops are *not* logged — their effect is fully
/// captured by the virtual timestamps of the surrounding events — so a
/// log stays compact even for million-op programs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DesEventKind {
    /// A rank deposited a message. `bytes` saturates at `u32::MAX`
    /// (virtual messages are far smaller; the narrow fields keep the
    /// event 32 bytes so logging stays within the recorder's <5%
    /// overhead budget).
    Send { dst: u32, tag: u32, bytes: u32 },
    /// A rank completed a matching receive.
    Recv { src: u32, tag: u32 },
    /// A rank arrived at a collective.
    Collective { kind: CollectiveKind, group: u32 },
    /// A rank ran out of ops.
    Finish,
}

/// One entry of the deterministic event log produced by
/// [`Replayer::run_logged`]: which rank did what, at which virtual
/// time. The run-to-block scheduler is deterministic, so the *global*
/// order of these events is reproducible bit-for-bit — same program,
/// same machine ⇒ identical log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesEvent {
    /// The rank the event happened on.
    pub rank: u32,
    /// The rank's virtual clock immediately after the event.
    pub vtime: f64,
    /// What happened.
    pub kind: DesEventKind,
}

/// Per-phase, per-rank time accounting (enabled via
/// [`Replayer::track_phases`]).
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// `compute[phase][rank]` — seconds of local compute attributed to
    /// `phase` on `rank`.
    pub compute: Vec<Vec<f64>>,
    /// `comm[phase][rank]` — seconds of communication wait attributed.
    pub comm: Vec<Vec<f64>>,
}

impl PhaseBreakdown {
    /// Max over ranks of compute + comm for `phase` — the elapsed time a
    /// profiler would attribute to that function.
    pub fn elapsed(&self, phase: usize) -> f64 {
        self.compute[phase]
            .iter()
            .zip(&self.comm[phase])
            .map(|(c, m)| c + m)
            .fold(0.0, f64::max)
    }

    /// Total compute seconds across ranks for `phase`.
    pub fn total_compute(&self, phase: usize) -> f64 {
        self.compute[phase].iter().sum()
    }

    /// Total communication seconds across ranks for `phase`.
    pub fn total_comm(&self, phase: usize) -> f64 {
        self.comm[phase].iter().sum()
    }
}

/// Result of a successful replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Virtual finish time of each rank.
    pub finish: Vec<f64>,
    /// Seconds each rank spent in local compute.
    pub compute_time: Vec<f64>,
    /// Seconds each rank spent waiting on communication.
    pub comm_time: Vec<f64>,
    /// Number of point-to-point messages delivered.
    pub messages: u64,
    /// Total point-to-point payload bytes.
    pub bytes: u64,
    /// Optional per-phase accounting.
    pub phases: Option<PhaseBreakdown>,
}

impl ReplayOutcome {
    /// The virtual runtime of the program (max rank finish time).
    pub fn makespan(&self) -> f64 {
        self.finish.iter().copied().fold(0.0, f64::max)
    }

    /// Mean fraction of the makespan ranks spent computing — a crude
    /// whole-program efficiency measure.
    pub fn compute_fraction(&self) -> f64 {
        let span = self.makespan();
        if span == 0.0 {
            return 1.0;
        }
        let mean: f64 = self.compute_time.iter().sum::<f64>() / self.compute_time.len() as f64;
        mean / span
    }

    /// Max finish time over a subset of ranks (an app instance's runtime
    /// inside a coupled program).
    pub fn makespan_of(&self, ranks: &[usize]) -> f64 {
        ranks.iter().map(|&r| self.finish[r]).fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Blocked {
    Recv { src: usize, tag: u32 },
    Collective { group: usize },
}

/// Per-rank phase-segment recorder for traced replays: every maximal
/// run of virtual time a rank spends in one phase becomes a span on
/// that rank's timeline.
struct DesTracer {
    names: Vec<String>,
    recorders: Vec<RankRecorder>,
    seg_start: Vec<f64>,
}

impl DesTracer {
    fn new(n_ranks: usize, phase_names: &[&str]) -> Self {
        DesTracer {
            names: phase_names.iter().map(|s| s.to_string()).collect(),
            recorders: (0..n_ranks).map(|_| RankRecorder::on()).collect(),
            seg_start: vec![0.0; n_ranks],
        }
    }

    /// Close the segment `rank` has occupied since the last phase
    /// switch (no-op for zero-length segments).
    fn close_segment(&mut self, rank: usize, phase: PhaseId, now: f64) {
        let start = self.seg_start[rank];
        if now > start {
            let name = self
                .names
                .get(phase as usize)
                .cloned()
                .unwrap_or_else(|| format!("phase {phase}"));
            self.recorders[rank].push_span(name, start, now);
        }
        self.seg_start[rank] = now;
    }

    fn into_session(self, finish: &[f64]) -> TraceSession {
        TraceSession::new(
            self.recorders
                .into_iter()
                .enumerate()
                .map(|(rank, rec)| rec.into_timeline(rank, finish[rank]))
                .collect(),
        )
    }
}

#[derive(Debug)]
struct PendingColl {
    kind: CollectiveKind,
    arrived: usize,
    max_clock: f64,
    max_bytes: usize,
    /// (rank, clock at arrival) for comm-time attribution.
    waiters: Vec<(usize, f64)>,
}

/// Cursor over a rank trace, expanding `Repeat` lazily.
#[derive(Debug, Clone)]
struct Cursor {
    pc: usize,
    rep_iter: u32,
    rep_pc: usize,
    in_repeat: bool,
}

impl Cursor {
    fn new() -> Self {
        Cursor {
            pc: 0,
            rep_iter: 0,
            rep_pc: 0,
            in_repeat: false,
        }
    }
}

/// The discrete-event replayer. Construct with a machine, optionally
/// enable phase tracking and system noise, then call [`Replayer::run`].
#[derive(Debug, Clone)]
pub struct Replayer {
    machine: Machine,
    n_phases: usize,
    /// Optional `(amplitude, seed)` system-noise model.
    noise: Option<(f64, u64)>,
}

impl Replayer {
    /// A replayer for `machine`.
    pub fn new(machine: Machine) -> Self {
        Replayer {
            machine,
            n_phases: 0,
            noise: None,
        }
    }

    /// Enable per-phase accounting for phase ids `0..n_phases`.
    pub fn track_phases(mut self, n_phases: usize) -> Self {
        self.n_phases = n_phases;
        self
    }

    /// Enable deterministic system noise: every compute op's duration
    /// is scaled by a factor in `[1, 1 + 2·amplitude]` drawn from a
    /// splitmix64 stream keyed by `(seed, rank, op index)` — a simple
    /// model of OS jitter and memory/network contention on a production
    /// machine (one-sided: interference only ever slows a core down).
    /// Replays remain bit-reproducible for a given seed.
    pub fn with_noise(mut self, amplitude: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&amplitude));
        self.noise = if amplitude > 0.0 {
            Some((amplitude, seed))
        } else {
            None
        };
        self
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Replay `program`, returning per-rank timings.
    pub fn run(&self, program: &TraceProgram) -> Result<ReplayOutcome, ReplayError> {
        self.run_inner::<false>(program, None, &mut Vec::new())
    }

    /// Replay `program` and additionally return the deterministic
    /// event log: every send, receive, collective arrival and rank
    /// finish, in global scheduler order, each stamped with the rank's
    /// virtual clock. Same program + machine ⇒ bit-identical log, which
    /// is what makes the log usable as a golden trace for record/replay
    /// regression checks.
    pub fn run_logged(
        &self,
        program: &TraceProgram,
    ) -> Result<(ReplayOutcome, Vec<DesEvent>), ReplayError> {
        // Preallocate for the common case — one event per expanded op
        // plus a finish per rank — so logging costs pushes, not
        // reallocation+copy cycles (the <5% recorder-overhead budget).
        let cap: usize = program
            .traces
            .iter()
            .map(RankTrace::expanded_len)
            .sum::<usize>()
            + program.n_ranks();
        let mut log = Vec::with_capacity(cap);
        let out = self.run_inner::<true>(program, None, &mut log)?;
        Ok((out, log))
    }

    /// As [`Replayer::run_logged`], recording into a caller-provided
    /// buffer (cleared first, capacity reserved). Reusing one buffer
    /// across many replays avoids the large-allocation round trip to
    /// the OS per run — the recommended shape for repeated recording,
    /// and what keeps recorder overhead under its <5% budget.
    pub fn run_logged_into(
        &self,
        program: &TraceProgram,
        log: &mut Vec<DesEvent>,
    ) -> Result<ReplayOutcome, ReplayError> {
        log.clear();
        let cap: usize = program
            .traces
            .iter()
            .map(RankTrace::expanded_len)
            .sum::<usize>()
            + program.n_ranks();
        log.reserve(cap);
        self.run_inner::<true>(program, None, log)
    }

    /// Replay `program` with span recording: alongside the outcome,
    /// returns a [`TraceSession`] with one lane per rank where every
    /// maximal single-phase stretch of virtual time is a span named
    /// after its phase (`phase_names[id]`, falling back to `"phase
    /// {id}"`). Deterministic: same program ⇒ byte-identical session.
    pub fn run_traced(
        &self,
        program: &TraceProgram,
        phase_names: &[&str],
    ) -> Result<(ReplayOutcome, TraceSession), ReplayError> {
        let mut tracer = DesTracer::new(program.n_ranks(), phase_names);
        let out = self.run_inner::<false>(program, Some(&mut tracer), &mut Vec::new())?;
        let session = tracer.into_session(&out.finish);
        Ok((out, session))
    }

    // Monomorphized over `LOGGED` so the unlogged replay carries zero
    // event-recording code in its hot loop, and the logged one records
    // with straight-line pushes (no per-event `Option` dispatch).
    fn run_inner<const LOGGED: bool>(
        &self,
        program: &TraceProgram,
        mut tracer: Option<&mut DesTracer>,
        log: &mut Vec<DesEvent>,
    ) -> Result<ReplayOutcome, ReplayError> {
        program.validate().map_err(ReplayError::Invalid)?;
        let n = program.n_ranks();

        // Group membership checks are cheaper with a lookup table.
        let mut member: Vec<Vec<bool>> = Vec::with_capacity(program.groups.len());
        for g in &program.groups {
            let mut m = vec![false; n];
            for &r in g {
                m[r] = true;
            }
            member.push(m);
        }

        let mut clock = vec![0.0f64; n];
        let mut compute_time = vec![0.0f64; n];
        let mut comm_time = vec![0.0f64; n];
        let mut phase: Vec<PhaseId> = vec![0; n];
        let mut cursors: Vec<Cursor> = (0..n).map(|_| Cursor::new()).collect();
        let mut blocked: Vec<Option<Blocked>> = vec![None; n];
        let mut done = vec![false; n];

        let mut phase_compute = vec![vec![0.0f64; n]; self.n_phases];
        let mut phase_comm = vec![vec![0.0f64; n]; self.n_phases];

        // (src, dst, tag) -> FIFO of arrival times.
        let mut mailbox: HashMap<(usize, usize, u32), VecDeque<f64>> = HashMap::new();
        // (src, dst, tag) -> rank `dst` blocked on this key.
        let mut recv_waiters: HashMap<(usize, usize, u32), usize> = HashMap::new();
        let mut pending_colls: HashMap<usize, PendingColl> = HashMap::new();

        let mut messages: u64 = 0;
        let mut total_bytes: u64 = 0;

        let mut runnable: VecDeque<usize> = (0..n).collect();
        let mut queued = vec![true; n];
        // Per-rank compute-op counters for the noise stream.
        let mut op_counter = vec![0u64; n];
        let noise = self.noise;
        let noise_factor = |rank: usize, counter: u64| -> f64 {
            match noise {
                None => 1.0,
                Some((amp, seed)) => {
                    let mut x = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    x ^= counter.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    // splitmix64 finalizer.
                    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
                    x ^= x >> 31;
                    let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                    1.0 + 2.0 * amp * u
                }
            }
        };

        let charge_comm = |rank: usize,
                           dt: f64,
                           phase: &[PhaseId],
                           comm_time: &mut [f64],
                           phase_comm: &mut [Vec<f64>]| {
            comm_time[rank] += dt;
            let p = phase[rank] as usize;
            if p < phase_comm.len() {
                phase_comm[p][rank] += dt;
            }
        };

        while let Some(rank) = runnable.pop_front() {
            queued[rank] = false;
            if done[rank] || blocked[rank].is_some() {
                continue;
            }
            let ops = &program.traces[rank].ops;
            'run: loop {
                // Resolve the current op through the Repeat cursor.
                let cur = &mut cursors[rank];
                let op: &Op = loop {
                    if cur.pc >= ops.len() {
                        done[rank] = true;
                        if let Some(t) = tracer.as_deref_mut() {
                            t.close_segment(rank, phase[rank], clock[rank]);
                        }
                        if LOGGED {
                            log.push(DesEvent {
                                rank: rank as u32,
                                vtime: clock[rank],
                                kind: DesEventKind::Finish,
                            });
                        }
                        break 'run;
                    }
                    match &ops[cur.pc] {
                        Op::Repeat { count, body } => {
                            if cur.rep_iter >= *count || body.is_empty() {
                                cur.pc += 1;
                                cur.rep_iter = 0;
                                cur.rep_pc = 0;
                                cur.in_repeat = false;
                                continue;
                            }
                            if cur.rep_pc >= body.len() {
                                cur.rep_iter += 1;
                                cur.rep_pc = 0;
                                continue;
                            }
                            cur.in_repeat = true;
                            break &body[cur.rep_pc];
                        }
                        other => {
                            cur.in_repeat = false;
                            break other;
                        }
                    }
                };

                // Advance-past helper applied after the op executes.
                macro_rules! advance {
                    () => {{
                        let cur = &mut cursors[rank];
                        if cur.in_repeat {
                            cur.rep_pc += 1;
                        } else {
                            cur.pc += 1;
                        }
                    }};
                }

                match *op {
                    Op::Compute(cost) => {
                        op_counter[rank] += 1;
                        let dt =
                            self.machine.kernel_time(cost) * noise_factor(rank, op_counter[rank]);
                        clock[rank] += dt;
                        compute_time[rank] += dt;
                        let p = phase[rank] as usize;
                        if p < phase_compute.len() {
                            phase_compute[p][rank] += dt;
                        }
                        advance!();
                    }
                    Op::ComputeSecs(dt) => {
                        op_counter[rank] += 1;
                        let dt = dt * noise_factor(rank, op_counter[rank]);
                        clock[rank] += dt;
                        compute_time[rank] += dt;
                        let p = phase[rank] as usize;
                        if p < phase_compute.len() {
                            phase_compute[p][rank] += dt;
                        }
                        advance!();
                    }
                    Op::Phase(p) => {
                        if p != phase[rank] {
                            if let Some(t) = tracer.as_deref_mut() {
                                t.close_segment(rank, phase[rank], clock[rank]);
                            }
                            phase[rank] = p;
                        }
                        advance!();
                    }
                    Op::Send { dst, bytes, tag } => {
                        let arrival = clock[rank] + self.machine.p2p_time(rank, dst, bytes);
                        clock[rank] += self.machine.send_overhead;
                        charge_comm(
                            rank,
                            self.machine.send_overhead,
                            &phase,
                            &mut comm_time,
                            &mut phase_comm,
                        );
                        messages += 1;
                        total_bytes += bytes as u64;
                        if LOGGED {
                            log.push(DesEvent {
                                rank: rank as u32,
                                vtime: clock[rank],
                                kind: DesEventKind::Send {
                                    dst: dst as u32,
                                    tag,
                                    bytes: bytes.min(u32::MAX as usize) as u32,
                                },
                            });
                        }
                        let key = (rank, dst, tag);
                        mailbox.entry(key).or_default().push_back(arrival);
                        if let Some(&waiter) = recv_waiters.get(&key) {
                            recv_waiters.remove(&key);
                            blocked[waiter] = None;
                            if !queued[waiter] && !done[waiter] {
                                queued[waiter] = true;
                                runnable.push_back(waiter);
                            }
                        }
                        advance!();
                    }
                    Op::Recv { src, tag } => {
                        let key = (src, rank, tag);
                        let maybe = mailbox.get_mut(&key).and_then(|q| q.pop_front());
                        match maybe {
                            Some(arrival) => {
                                let wait = (arrival - clock[rank]).max(0.0);
                                clock[rank] += wait;
                                charge_comm(rank, wait, &phase, &mut comm_time, &mut phase_comm);
                                if LOGGED {
                                    log.push(DesEvent {
                                        rank: rank as u32,
                                        vtime: clock[rank],
                                        kind: DesEventKind::Recv {
                                            src: src as u32,
                                            tag,
                                        },
                                    });
                                }
                                advance!();
                            }
                            None => {
                                blocked[rank] = Some(Blocked::Recv { src, tag });
                                recv_waiters.insert(key, rank);
                                break 'run;
                            }
                        }
                    }
                    Op::Collective { kind, group, bytes } => {
                        if group >= member.len() || !member[group][rank] {
                            return Err(ReplayError::NotAMember { rank, group });
                        }
                        let gsize = program.groups[group].len();
                        let entry = pending_colls.entry(group).or_insert_with(|| PendingColl {
                            kind,
                            arrived: 0,
                            max_clock: 0.0,
                            max_bytes: 0,
                            waiters: Vec::with_capacity(gsize),
                        });
                        if entry.kind != kind {
                            return Err(ReplayError::CollectiveMismatch {
                                group,
                                expected: entry.kind,
                                found: kind,
                            });
                        }
                        entry.arrived += 1;
                        entry.max_clock = entry.max_clock.max(clock[rank]);
                        entry.max_bytes = entry.max_bytes.max(bytes);
                        entry.waiters.push((rank, clock[rank]));
                        if LOGGED {
                            log.push(DesEvent {
                                rank: rank as u32,
                                vtime: clock[rank],
                                kind: DesEventKind::Collective {
                                    kind,
                                    group: group as u32,
                                },
                            });
                        }
                        // Advance this rank's cursor past the collective
                        // now; it will be unblocked when the group is
                        // complete.
                        advance!();
                        if entry.arrived == gsize {
                            let coll = pending_colls.remove(&group).expect("just inserted");
                            let t_end = coll.max_clock
                                + collective_time(&self.machine, coll.kind, gsize, coll.max_bytes);
                            for (r, at) in coll.waiters {
                                let wait = t_end - at;
                                clock[r] = t_end;
                                charge_comm(r, wait, &phase, &mut comm_time, &mut phase_comm);
                                if r != rank {
                                    blocked[r] = None;
                                    if !queued[r] && !done[r] {
                                        queued[r] = true;
                                        runnable.push_back(r);
                                    }
                                }
                            }
                            // This rank continues running.
                        } else {
                            blocked[rank] = Some(Blocked::Collective { group });
                            break 'run;
                        }
                    }
                    Op::Repeat { .. } => unreachable!("resolved by cursor"),
                }
            }
        }

        // Every rank must be done; otherwise we deadlocked.
        if done.iter().any(|d| !d) {
            let blocked_list = (0..n)
                .filter(|&r| !done[r])
                .map(|r| {
                    let why = match &blocked[r] {
                        Some(Blocked::Recv { src, tag }) => {
                            format!("recv from {src} tag {tag}")
                        }
                        Some(Blocked::Collective { group }) => {
                            format!("collective on group {group}")
                        }
                        None => "runnable but never scheduled (bug)".to_string(),
                    };
                    (r, why)
                })
                .collect();
            return Err(ReplayError::Deadlock {
                blocked: blocked_list,
            });
        }

        let phases = if self.n_phases > 0 {
            Some(PhaseBreakdown {
                compute: phase_compute,
                comm: phase_comm,
            })
        } else {
            None
        };

        Ok(ReplayOutcome {
            finish: clock,
            compute_time,
            comm_time,
            messages,
            bytes: total_bytes,
            phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;
    use crate::model::MachineBuilder;

    fn simple_machine() -> Machine {
        MachineBuilder::new("unit")
            .cores_per_node(2)
            .flops_per_core(1.0) // 1 flop = 1 second
            .mem_bw_per_core(1.0)
            .intra(0.5, 10.0)
            .inter(1.0, 1.0)
            .send_overhead(0.0)
            .build()
    }

    #[test]
    fn compute_only() {
        let mut p = TraceProgram::new(2);
        p.rank(0).compute(KernelCost::flops(3.0));
        p.rank(1).compute(KernelCost::flops(5.0));
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        assert_eq!(out.finish, vec![3.0, 5.0]);
        assert_eq!(out.makespan(), 5.0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn send_recv_timing() {
        // Rank 0 computes 2s then sends 10 bytes to rank 1 (same node:
        // latency 0.5, bw 10 -> transfer 1.0). Rank 1 recvs immediately.
        let mut p = TraceProgram::new(2);
        p.rank(0).compute(KernelCost::flops(2.0));
        p.rank(0).send(1, 10, 0);
        p.rank(1).recv(0, 0);
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        // Arrival = 2 + 0.5 + 1.0 = 3.5.
        assert!((out.finish[1] - 3.5).abs() < 1e-12);
        assert!((out.comm_time[1] - 3.5).abs() < 1e-12);
        assert_eq!(out.messages, 1);
        assert_eq!(out.bytes, 10);
    }

    #[test]
    fn recv_posted_before_send() {
        let mut p = TraceProgram::new(2);
        p.rank(1).recv(0, 3);
        p.rank(0).compute(KernelCost::flops(4.0));
        p.rank(0).send(1, 0, 3);
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        assert!((out.finish[1] - 4.5).abs() < 1e-12); // 4 + latency 0.5
    }

    #[test]
    fn fifo_matching_same_tag() {
        let mut p = TraceProgram::new(2);
        p.rank(0).send(1, 10, 0); // arrival 1.5
        p.rank(0).compute(KernelCost::flops(10.0));
        p.rank(0).send(1, 10, 0); // arrival 11.5
        p.rank(1).recv(0, 0);
        p.rank(1).recv(0, 0);
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        assert!((out.finish[1] - 11.5).abs() < 1e-12);
    }

    #[test]
    fn tags_demultiplex() {
        let mut p = TraceProgram::new(2);
        p.rank(0).send(1, 10, 7); // tag 7 first
        p.rank(0).send(1, 10, 9);
        // Receiver takes tag 9 then tag 7 — must not deadlock.
        p.rank(1).recv(0, 9);
        p.rank(1).recv(0, 7);
        assert!(Replayer::new(simple_machine()).run(&p).is_ok());
    }

    #[test]
    fn allreduce_synchronises() {
        let mut p = TraceProgram::new(4);
        let g = p.add_world_group();
        for r in 0..4 {
            p.rank(r).compute(KernelCost::flops((r + 1) as f64));
            p.rank(r).collective(CollectiveKind::Allreduce, g, 8);
        }
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        // All ranks finish at the same time, >= slowest compute (4s).
        let f0 = out.finish[0];
        assert!(f0 > 4.0);
        for r in 1..4 {
            assert!((out.finish[r] - f0).abs() < 1e-12);
        }
    }

    #[test]
    fn subgroup_collectives_independent() {
        let mut p = TraceProgram::new(4);
        let g0 = p.add_group(vec![0, 1]);
        let g1 = p.add_group(vec![2, 3]);
        p.rank(0).collective(CollectiveKind::Barrier, g0, 0);
        p.rank(1).collective(CollectiveKind::Barrier, g0, 0);
        p.rank(2).compute(KernelCost::flops(100.0));
        p.rank(2).collective(CollectiveKind::Barrier, g1, 0);
        p.rank(3).collective(CollectiveKind::Barrier, g1, 0);
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        // Group 0 must not be delayed by group 1's slow member.
        assert!(out.finish[0] < 10.0);
        assert!(out.finish[3] >= 100.0);
    }

    #[test]
    fn deadlock_detected() {
        let mut p = TraceProgram::new(2);
        p.rank(0).recv(1, 0);
        p.rank(1).recv(0, 0);
        match Replayer::new(simple_machine()).run(&p) {
            Err(ReplayError::Deadlock { blocked }) => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn collective_mismatch_detected() {
        let mut p = TraceProgram::new(2);
        let g = p.add_world_group();
        p.rank(0).collective(CollectiveKind::Barrier, g, 0);
        p.rank(1).collective(CollectiveKind::Allreduce, g, 8);
        assert!(matches!(
            Replayer::new(simple_machine()).run(&p),
            Err(ReplayError::CollectiveMismatch { .. })
        ));
    }

    #[test]
    fn non_member_collective_detected() {
        let mut p = TraceProgram::new(3);
        let g = p.add_group(vec![0, 1]);
        p.rank(0).collective(CollectiveKind::Barrier, g, 0);
        p.rank(1).collective(CollectiveKind::Barrier, g, 0);
        p.rank(2).collective(CollectiveKind::Barrier, g, 0);
        assert!(matches!(
            Replayer::new(simple_machine()).run(&p),
            Err(ReplayError::NotAMember { rank: 2, group: 0 })
        ));
    }

    #[test]
    fn repeat_expands() {
        let mut p = TraceProgram::new(1);
        p.rank(0).ops.push(Op::Repeat {
            count: 5,
            body: vec![Op::ComputeSecs(2.0)],
        });
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        assert!((out.finish[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn repeat_with_messaging() {
        // Ping-pong inside Repeat across both ranks.
        let mut p = TraceProgram::new(2);
        p.rank(0).ops.push(Op::Repeat {
            count: 3,
            body: vec![
                Op::Send {
                    dst: 1,
                    bytes: 8,
                    tag: 0,
                },
                Op::Recv { src: 1, tag: 1 },
            ],
        });
        p.rank(1).ops.push(Op::Repeat {
            count: 3,
            body: vec![
                Op::Recv { src: 0, tag: 0 },
                Op::Send {
                    dst: 0,
                    bytes: 8,
                    tag: 1,
                },
            ],
        });
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        assert!(out.makespan() > 0.0);
        assert_eq!(out.messages, 6);
    }

    #[test]
    fn phase_attribution() {
        let mut p = TraceProgram::new(2);
        for r in 0..2 {
            p.rank(r).phase(0);
            p.rank(r).compute(KernelCost::flops(1.0));
            p.rank(r).phase(1);
            p.rank(r).compute(KernelCost::flops(2.0));
        }
        let out = Replayer::new(simple_machine())
            .track_phases(2)
            .run(&p)
            .unwrap();
        let ph = out.phases.unwrap();
        assert!((ph.total_compute(0) - 2.0).abs() < 1e-12);
        assert!((ph.total_compute(1) - 4.0).abs() < 1e-12);
        assert!((ph.elapsed(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn traced_replay_segments_phases() {
        let mut p = TraceProgram::new(2);
        for r in 0..2 {
            p.rank(r).phase(0);
            p.rank(r).compute(KernelCost::flops(1.0));
            p.rank(r).phase(1);
            p.rank(r).compute(KernelCost::flops(2.0));
        }
        let rep = Replayer::new(simple_machine());
        let (out, session) = rep.run_traced(&p, &["alpha", "beta"]).unwrap();
        assert_eq!(session.lanes.len(), 2);
        for lane in &session.lanes {
            assert_eq!(lane.spans.len(), 2);
            assert_eq!(lane.spans[0].name, "alpha");
            assert_eq!(lane.spans[1].name, "beta");
            assert!(lane.spans.iter().all(|s| s.end >= s.start));
        }
        // Traced and untraced replays agree exactly.
        let plain = rep.run(&p).unwrap();
        assert_eq!(out.finish, plain.finish);
        // And the session itself is deterministic.
        let (_, again) = rep.run_traced(&p, &["alpha", "beta"]).unwrap();
        assert_eq!(session, again);
    }

    #[test]
    fn traced_replay_names_unknown_phases() {
        let mut p = TraceProgram::new(1);
        p.rank(0).phase(3);
        p.rank(0).compute(KernelCost::flops(1.0));
        let (_, session) = Replayer::new(simple_machine()).run_traced(&p, &[]).unwrap();
        assert_eq!(session.lanes[0].spans[0].name, "phase 3");
    }

    #[test]
    fn determinism_across_runs() {
        let mut p = TraceProgram::new(8);
        let g = p.add_world_group();
        for r in 0..8 {
            p.rank(r).compute(KernelCost::flops(r as f64 + 1.0));
            p.rank(r).send((r + 1) % 8, 64, 0);
            p.rank(r).recv((r + 7) % 8, 0);
            p.rank(r).collective(CollectiveKind::Allreduce, g, 8);
        }
        let rep = Replayer::new(simple_machine());
        let a = rep.run(&p).unwrap();
        let b = rep.run(&p).unwrap();
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.comm_time, b.comm_time);
    }

    #[test]
    fn large_rank_count_replays() {
        // 10k ranks in a ring with an allreduce — smoke test for scale.
        let n = 10_000;
        let mut p = TraceProgram::new(n);
        let g = p.add_world_group();
        for r in 0..n {
            p.rank(r).compute(KernelCost::flops(1.0));
            p.rank(r).send((r + 1) % n, 8, 0);
            p.rank(r).recv((r + n - 1) % n, 0);
            p.rank(r).collective(CollectiveKind::Allreduce, g, 8);
        }
        let out = Replayer::new(Machine::archer2()).run(&p).unwrap();
        assert_eq!(out.messages, n as u64);
        assert!(out.makespan() > 0.0);
    }

    #[test]
    fn logged_replay_is_deterministic_and_agrees_with_plain() {
        let mut p = TraceProgram::new(4);
        let g = p.add_world_group();
        for r in 0..4 {
            p.rank(r).compute(KernelCost::flops(r as f64 + 1.0));
            p.rank(r).send((r + 1) % 4, 64, 0);
            p.rank(r).recv((r + 3) % 4, 0);
            p.rank(r).collective(CollectiveKind::Allreduce, g, 8);
        }
        let rep = Replayer::new(simple_machine());
        let (out, log) = rep.run_logged(&p).unwrap();
        let plain = rep.run(&p).unwrap();
        assert_eq!(out.finish, plain.finish);
        // 4 sends + 4 recvs + 4 collective arrivals + 4 finishes.
        assert_eq!(log.len(), 16);
        assert_eq!(
            log.iter()
                .filter(|e| matches!(e.kind, DesEventKind::Finish))
                .count(),
            4
        );
        let (_, again) = rep.run_logged(&p).unwrap();
        assert_eq!(log, again);
    }

    #[test]
    fn makespan_of_subset() {
        let mut p = TraceProgram::new(3);
        p.rank(0).compute(KernelCost::flops(1.0));
        p.rank(1).compute(KernelCost::flops(5.0));
        p.rank(2).compute(KernelCost::flops(9.0));
        let out = Replayer::new(simple_machine()).run(&p).unwrap();
        assert_eq!(out.makespan_of(&[0, 1]), 5.0);
        assert_eq!(out.makespan_of(&[2]), 9.0);
    }
}
