//! Parametric cluster description.
//!
//! A [`Machine`] captures just enough of a real system to integrate the
//! timing of message-passing mini-apps: node geometry, sustained per-core
//! compute and memory rates, and a two-level (intra-node / inter-node)
//! latency–bandwidth network model.
//!
//! The preset returned by [`Machine::archer2`] is calibrated to the
//! HPE-Cray EX system used in the paper (2 × 64-core AMD EPYC 7742 per
//! node, Slingshot interconnect). The absolute constants are deliberately
//! conservative "sustained" figures rather than peaks — the reproduction
//! targets the *shape* of the scaling curves, which is governed by the
//! ratios between these constants.

use serde::{Deserialize, Serialize};

use crate::cost::KernelCost;

/// Description of a homogeneous cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Human-readable machine name (appears in reports).
    pub name: String,
    /// Physical cores per node; ranks are placed round-robin in blocks,
    /// i.e. rank `r` lives on node `r / cores_per_node`.
    pub cores_per_node: usize,
    /// Sustained double-precision rate of one core for unstructured-mesh
    /// style kernels, in FLOP/s.
    pub flops_per_core: f64,
    /// Sustained memory bandwidth available to one core when all cores of
    /// the node are active, in bytes/s.
    pub mem_bw_per_core: f64,
    /// One-way latency between two ranks on the same node, in seconds.
    pub intra_latency: f64,
    /// Point-to-point bandwidth between two ranks on the same node, bytes/s.
    pub intra_bandwidth: f64,
    /// One-way latency between two ranks on different nodes, in seconds.
    pub inter_latency: f64,
    /// Point-to-point bandwidth between two ranks on different nodes,
    /// bytes/s. This is the *per-rank effective* share of the NIC when the
    /// node is busy, not the NIC peak.
    pub inter_bandwidth: f64,
    /// Fixed per-message software overhead charged to the sender
    /// (MPI stack traversal), in seconds.
    pub send_overhead: f64,
}

impl Machine {
    /// ARCHER2-like preset: HPE-Cray EX, 128 cores/node
    /// (2 × 64C AMD EPYC 7742 @ 2.25 GHz), Slingshot-10 interconnect.
    ///
    /// Sustained figures: ~2.2 GFLOP/s/core and ~1.56 GB/s/core memory
    /// bandwidth (≈200 GB/s/node shared by 128 cores), 2 µs inter-node
    /// latency and ~1.5 GB/s effective per-rank inter-node bandwidth.
    pub fn archer2() -> Self {
        Machine {
            name: "ARCHER2 (HPE-Cray EX)".to_string(),
            cores_per_node: 128,
            flops_per_core: 2.2e9,
            mem_bw_per_core: 1.56e9,
            intra_latency: 4.0e-7,
            intra_bandwidth: 8.0e9,
            inter_latency: 2.0e-6,
            inter_bandwidth: 1.5e9,
            send_overhead: 2.5e-7,
        }
    }

    /// The 32-core machine the production pressure solver was benchmarked
    /// on in the related work the paper cites (§II-B notes the hardware
    /// difference: 32 cores/node vs 128). Useful for ablations.
    pub fn legacy32() -> Self {
        Machine {
            name: "legacy 32c/node cluster".to_string(),
            cores_per_node: 32,
            flops_per_core: 1.8e9,
            mem_bw_per_core: 3.0e9,
            intra_latency: 5.0e-7,
            intra_bandwidth: 6.0e9,
            inter_latency: 1.5e-6,
            inter_bandwidth: 1.2e9,
            send_overhead: 3.0e-7,
        }
    }

    /// Node index hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of nodes needed for `ranks` ranks.
    #[inline]
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.cores_per_node)
    }

    /// Time for a point-to-point message of `bytes` between `src` and
    /// `dst` (first-byte latency + serialization).
    #[inline]
    pub fn p2p_time(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        if src == dst {
            // Self-message: a memcpy.
            return bytes as f64 / (2.0 * self.intra_bandwidth);
        }
        let (lat, bw) = if self.same_node(src, dst) {
            (self.intra_latency, self.intra_bandwidth)
        } else {
            (self.inter_latency, self.inter_bandwidth)
        };
        lat + bytes as f64 / bw
    }

    /// Latency/bandwidth pair for a group of ranks: if the whole group
    /// fits on one node, intra-node figures are used, otherwise inter-node.
    pub fn group_link(&self, group_size: usize) -> (f64, f64) {
        if group_size <= self.cores_per_node {
            (self.intra_latency, self.intra_bandwidth)
        } else {
            (self.inter_latency, self.inter_bandwidth)
        }
    }

    /// Convert a roofline kernel cost into seconds on one core.
    ///
    /// The kernel is assumed to be limited by whichever of its compute or
    /// memory demands is slower (perfect overlap of the other), which is
    /// the standard roofline assumption for the streaming kernels that
    /// dominate CFD, PIC and sparse solvers.
    #[inline]
    pub fn kernel_time(&self, cost: KernelCost) -> f64 {
        let tf = cost.flops / self.flops_per_core;
        let tb = cost.bytes / self.mem_bw_per_core;
        tf.max(tb)
    }
}

/// Builder for custom machines (used by tests and ablation studies).
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Start from the ARCHER2 preset.
    pub fn new(name: &str) -> Self {
        let mut machine = Machine::archer2();
        machine.name = name.to_string();
        MachineBuilder { machine }
    }

    /// Set the number of cores per node.
    pub fn cores_per_node(mut self, c: usize) -> Self {
        self.machine.cores_per_node = c;
        self
    }

    /// Set the sustained per-core FLOP rate.
    pub fn flops_per_core(mut self, f: f64) -> Self {
        self.machine.flops_per_core = f;
        self
    }

    /// Set the per-core share of node memory bandwidth.
    pub fn mem_bw_per_core(mut self, b: f64) -> Self {
        self.machine.mem_bw_per_core = b;
        self
    }

    /// Set inter-node latency (seconds) and bandwidth (bytes/s).
    pub fn inter(mut self, latency: f64, bandwidth: f64) -> Self {
        self.machine.inter_latency = latency;
        self.machine.inter_bandwidth = bandwidth;
        self
    }

    /// Set intra-node latency (seconds) and bandwidth (bytes/s).
    pub fn intra(mut self, latency: f64, bandwidth: f64) -> Self {
        self.machine.intra_latency = latency;
        self.machine.intra_bandwidth = bandwidth;
        self
    }

    /// Set the per-message sender-side software overhead.
    pub fn send_overhead(mut self, o: f64) -> Self {
        self.machine.send_overhead = o;
        self
    }

    /// Finish building.
    pub fn build(self) -> Machine {
        self.machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_placement_is_block_round_robin() {
        let m = Machine::archer2();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(127), 0);
        assert_eq!(m.node_of(128), 1);
        assert!(m.same_node(0, 127));
        assert!(!m.same_node(127, 128));
    }

    #[test]
    fn nodes_for_rounds_up() {
        let m = Machine::archer2();
        assert_eq!(m.nodes_for(1), 1);
        assert_eq!(m.nodes_for(128), 1);
        assert_eq!(m.nodes_for(129), 2);
        assert_eq!(m.nodes_for(40_000), 313);
    }

    #[test]
    fn p2p_inter_node_slower_than_intra() {
        let m = Machine::archer2();
        let intra = m.p2p_time(0, 1, 8192);
        let inter = m.p2p_time(0, 128, 8192);
        assert!(inter > intra, "inter {inter} must exceed intra {intra}");
    }

    #[test]
    fn p2p_time_monotone_in_bytes() {
        let m = Machine::archer2();
        let mut prev = 0.0;
        for bytes in [0usize, 8, 64, 1024, 1 << 20] {
            let t = m.p2p_time(0, 500, bytes);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn kernel_time_roofline() {
        let m = Machine::archer2();
        // Pure compute kernel.
        let t = m.kernel_time(KernelCost::flops(2.2e9));
        assert!((t - 1.0).abs() < 1e-12);
        // Pure streaming kernel.
        let t = m.kernel_time(KernelCost::bytes(1.56e9));
        assert!((t - 1.0).abs() < 1e-12);
        // Mixed: limited by the slower resource.
        let t = m.kernel_time(KernelCost::new(2.2e9, 0.78e9));
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builder_overrides() {
        let m = MachineBuilder::new("test")
            .cores_per_node(4)
            .flops_per_core(1.0)
            .mem_bw_per_core(1.0)
            .inter(1e-3, 1e6)
            .intra(1e-6, 1e9)
            .send_overhead(0.0)
            .build();
        assert_eq!(m.cores_per_node, 4);
        assert_eq!(m.node_of(5), 1);
        assert!((m.p2p_time(0, 4, 1000) - (1e-3 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn self_message_is_cheap() {
        let m = Machine::archer2();
        assert!(m.p2p_time(3, 3, 4096) < m.p2p_time(3, 4, 4096));
    }
}
