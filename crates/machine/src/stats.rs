//! Trace-program inspection.
//!
//! Summaries of what a generated program *is* (op mix, message volume,
//! rank imbalance) — used to sanity-check trace generators and to keep
//! coupled-program construction honest (e.g. "the SIMPIC ranks carry
//! only aggregate blocks, the MG-CFD ranks carry structural halo ops").

use crate::trace::{Op, TraceProgram};

/// Aggregate statistics of a trace program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Ranks in the program.
    pub n_ranks: usize,
    /// Expanded op count (Repeat bodies multiplied out).
    pub total_ops: u64,
    /// Expanded compute ops.
    pub compute_ops: u64,
    /// Expanded sends.
    pub sends: u64,
    /// Expanded receives.
    pub recvs: u64,
    /// Expanded collectives.
    pub collectives: u64,
    /// Total payload bytes posted by sends.
    pub send_bytes: u64,
    /// Max expanded ops on any rank.
    pub max_rank_ops: u64,
    /// Min expanded ops on any rank.
    pub min_rank_ops: u64,
}

impl TraceStats {
    /// Compute statistics for `program`.
    pub fn of(program: &TraceProgram) -> TraceStats {
        let mut stats = TraceStats {
            n_ranks: program.n_ranks(),
            min_rank_ops: u64::MAX,
            ..TraceStats::default()
        };
        for trace in &program.traces {
            let mut rank_ops = 0u64;
            let visit = |op: &Op, mult: u64, stats: &mut TraceStats, rank_ops: &mut u64| {
                *rank_ops += mult;
                stats.total_ops += mult;
                match op {
                    Op::Compute(_) | Op::ComputeSecs(_) => stats.compute_ops += mult,
                    Op::Send { bytes, .. } => {
                        stats.sends += mult;
                        stats.send_bytes += *bytes as u64 * mult;
                    }
                    Op::Recv { .. } => stats.recvs += mult,
                    Op::Collective { .. } => stats.collectives += mult,
                    Op::Phase(_) => {}
                    Op::Repeat { .. } => unreachable!("flattened by caller"),
                }
            };
            for op in &trace.ops {
                match op {
                    Op::Repeat { count, body } => {
                        for inner in body {
                            visit(inner, *count as u64, &mut stats, &mut rank_ops);
                        }
                    }
                    other => visit(other, 1, &mut stats, &mut rank_ops),
                }
            }
            stats.max_rank_ops = stats.max_rank_ops.max(rank_ops);
            stats.min_rank_ops = stats.min_rank_ops.min(rank_ops);
        }
        if stats.n_ranks == 0 {
            stats.min_rank_ops = 0;
        }
        stats
    }

    /// Op-count imbalance across ranks (`max/min`, `inf` if a rank is
    /// empty).
    pub fn op_imbalance(&self) -> f64 {
        if self.min_rank_ops == 0 {
            f64::INFINITY
        } else {
            self.max_rank_ops as f64 / self.min_rank_ops as f64
        }
    }

    /// Sends and receives must pair up in a complete program.
    pub fn messages_balanced(&self) -> bool {
        self.sends == self.recvs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;
    use crate::trace::CollectiveKind;

    #[test]
    fn counts_expanded_ops() {
        let mut p = TraceProgram::new(2);
        let g = p.add_world_group();
        p.rank(0).ops.push(Op::Repeat {
            count: 5,
            body: vec![
                Op::Compute(KernelCost::flops(1.0)),
                Op::Send {
                    dst: 1,
                    bytes: 100,
                    tag: 0,
                },
            ],
        });
        p.rank(1).ops.push(Op::Repeat {
            count: 5,
            body: vec![Op::Recv { src: 0, tag: 0 }],
        });
        p.rank(0).collective(CollectiveKind::Barrier, g, 0);
        p.rank(1).collective(CollectiveKind::Barrier, g, 0);
        let s = TraceStats::of(&p);
        assert_eq!(s.n_ranks, 2);
        assert_eq!(s.compute_ops, 5);
        assert_eq!(s.sends, 5);
        assert_eq!(s.recvs, 5);
        assert_eq!(s.collectives, 2);
        assert_eq!(s.send_bytes, 500);
        assert!(s.messages_balanced());
        assert_eq!(s.max_rank_ops, 11);
        assert_eq!(s.min_rank_ops, 6);
    }

    #[test]
    fn imbalance_detects_empty_rank() {
        let mut p = TraceProgram::new(2);
        p.rank(0).compute(KernelCost::flops(1.0));
        let s = TraceStats::of(&p);
        assert!(s.op_imbalance().is_infinite());
    }

    #[test]
    fn empty_program() {
        let p = TraceProgram::new(0);
        let s = TraceStats::of(&p);
        assert_eq!(s.total_ops, 0);
        assert_eq!(s.min_rank_ops, 0);
    }
}
