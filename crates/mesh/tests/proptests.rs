//! Property-based tests for mesh generation, hierarchies and interfaces.

use proptest::prelude::*;

use cpx_mesh::mesh::{annulus_sector, combustor_box};
use cpx_mesh::{overlap_interface, sliding_plane_pair, MeshHierarchy, MeshPartition};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn annulus_always_valid_and_volume_exact(
        na in 1usize..6, nr in 1usize..5, nt in 1usize..10,
        r_in in 0.5f64..2.0, dr in 0.1f64..2.0,
        x_len in 0.1f64..3.0, theta in 0.1f64..6.2,
    ) {
        let m = annulus_sector(na, nr, nt, r_in, r_in + dr, 0.0, x_len, theta);
        prop_assert!(m.validate().is_ok());
        let exact = 0.5 * ((r_in + dr).powi(2) - r_in.powi(2)) * theta * x_len;
        prop_assert!((m.total_volume() - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn box_face_count_formula(nx in 1usize..8, ny in 1usize..8, nz in 1usize..8) {
        let m = combustor_box(nx, ny, nz, 0.0, 1.0, 1.0, 1.0);
        let want = (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1);
        prop_assert_eq!(m.n_faces(), want);
        prop_assert!(m.validate().is_ok());
    }

    #[test]
    fn hierarchy_conserves_volume(nx in 2usize..10, levels in 1usize..4) {
        let m = combustor_box(nx, nx, nx, 0.0, 1.0, 1.0, 1.0);
        let total = m.total_volume();
        let h = MeshHierarchy::build(m, levels);
        for level in &h.levels {
            prop_assert!((level.total_volume() - total).abs() / total < 1e-9);
            prop_assert!(level.validate().is_ok());
        }
        // Maps cover every coarse cell.
        for (l, map) in h.maps.iter().enumerate() {
            let n_coarse = h.levels[l + 1].n_cells();
            let mut seen = vec![false; n_coarse];
            for &c in map {
                prop_assert!(c < n_coarse);
                seen[c] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn partition_loads_sum(nx in 2usize..8, parts in 1usize..9) {
        let m = combustor_box(nx, nx, nx, 0.0, 1.0, 1.0, 1.0);
        let mp = MeshPartition::build(&m, parts);
        prop_assert_eq!(mp.loads().iter().sum::<usize>(), nx * nx * nx);
        prop_assert!(mp.assignment.iter().all(|&p| p < parts));
    }

    #[test]
    fn overlap_interface_fraction_monotone(
        nx in 4usize..16, f1 in 0.05f64..0.4, extra in 0.05f64..0.4
    ) {
        let m = combustor_box(nx, 4, 4, 0.0, 1.0, 1.0, 1.0);
        let small = overlap_interface(&m, f1, true);
        let big = overlap_interface(&m, (f1 + extra).min(1.0), true);
        prop_assert!(big.len() >= small.len());
        prop_assert!(!small.is_empty());
        // All weights positive, coordinates finite.
        prop_assert!(small.weights.iter().all(|&w| w > 0.0));
        prop_assert!(small
            .surface_coords
            .iter()
            .all(|c| c.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn sliding_plane_pairs_align(na in 2usize..6, nr in 1usize..4, nt in 2usize..12) {
        let up = annulus_sector(na, nr, nt, 1.0, 2.0, 0.0, 1.0, 1.0);
        let down = annulus_sector(na, nr, nt, 1.0, 2.0, 1.0, 1.0, 1.0);
        let (a, b) = sliding_plane_pair(&up, &down);
        prop_assert_eq!(a.len(), nr * nt);
        prop_assert_eq!(b.len(), nr * nt);
        for (ca, cb) in a.surface_coords.iter().zip(&b.surface_coords) {
            prop_assert!((ca[0] - cb[0]).abs() < 1e-9);
            prop_assert!((ca[1] - cb[1]).abs() < 1e-9);
        }
    }
}
