//! # cpx-mesh
//!
//! Unstructured mesh substrate for the CPX coupled mini-app simulation.
//!
//! The paper's test cases are built from blade-row meshes (NASA Rotor 37
//! geometry at 8M–300M cells), a combustor volume (28M–380M cells) and
//! the coupling interfaces between them (sliding planes covering ~0.42%
//! of cells between density-solver instances; steady-state overlap
//! regions covering ~5% between density and pressure solvers). Those
//! meshes are proprietary/at-scale; this crate generates synthetic
//! equivalents that preserve everything the experiments consume:
//!
//! * cell counts, adjacency structure and centroid geometry
//!   ([`mesh::UnstructuredMesh`], [`mesh::annulus_sector`],
//!   [`mesh::combustor_box`]);
//! * geometric multigrid hierarchies for MG-CFD
//!   ([`hierarchy::MeshHierarchy`]);
//! * coupling interface extraction ([`interface`]);
//! * domain decomposition with measured halo/imbalance statistics and a
//!   validated analytic extrapolation to rank counts far beyond what is
//!   practical to partition directly ([`partition`]).

pub mod hierarchy;
pub mod interface;
pub mod mesh;
pub mod partition;

pub use hierarchy::MeshHierarchy;
pub use interface::{overlap_interface, sliding_plane_pair, InterfaceMesh};
pub use mesh::{annulus_sector, combustor_box, UnstructuredMesh};
pub use partition::{MeshPartition, SurfaceModel};
