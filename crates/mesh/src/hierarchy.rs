//! Geometric multigrid mesh hierarchies for MG-CFD.
//!
//! MG-CFD accelerates its Euler solve with geometric multigrid over a
//! sequence of coarsened meshes. For generated structured-topology
//! meshes we coarsen by merging 2×2×2 blocks of cells (falling back to
//! smaller blocks at odd boundaries); volumes add, centroids average
//! volume-weighted, and coarse faces aggregate the fine face areas
//! between the merged clusters.

use cpx_sparse::Coo;

use crate::mesh::UnstructuredMesh;

/// A multigrid hierarchy of meshes, finest first, with fine→coarse cell
/// maps between consecutive levels.
#[derive(Debug, Clone)]
pub struct MeshHierarchy {
    /// Meshes, finest first.
    pub levels: Vec<UnstructuredMesh>,
    /// `maps[l][fine_cell] = coarse cell` between level `l` and `l+1`.
    pub maps: Vec<Vec<usize>>,
}

impl MeshHierarchy {
    /// Build `n_levels` levels (or fewer if the mesh bottoms out at one
    /// cell per dimension first).
    pub fn build(finest: UnstructuredMesh, n_levels: usize) -> MeshHierarchy {
        assert!(n_levels >= 1);
        assert!(
            finest.dims.is_some(),
            "geometric coarsening needs structured dims"
        );
        let mut levels = vec![finest];
        let mut maps = Vec::new();
        while levels.len() < n_levels {
            let cur = levels.last().unwrap();
            let dims = cur.dims.expect("coarsening preserves dims");
            if dims.iter().all(|&d| d <= 1) {
                break;
            }
            let (coarse, map) = coarsen_structured(cur);
            maps.push(map);
            levels.push(coarse);
        }
        MeshHierarchy { levels, maps }
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Cells per level, finest first.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|m| m.n_cells()).collect()
    }

    /// Total cells over all levels (the storage/work multiplier of the
    /// multigrid — analogous to operator complexity).
    pub fn grid_complexity(&self) -> f64 {
        let total: usize = self.level_sizes().iter().sum();
        total as f64 / self.levels[0].n_cells() as f64
    }
}

/// Merge 2×2×2 index blocks of a structured-topology mesh.
fn coarsen_structured(fine: &UnstructuredMesh) -> (UnstructuredMesh, Vec<usize>) {
    let [n0, n1, n2] = fine.dims.expect("structured dims required");
    let c0 = n0.div_ceil(2);
    let c1 = n1.div_ceil(2);
    let c2 = n2.div_ceil(2);
    let fine_idx = |i: usize, j: usize, k: usize| (i * n1 + j) * n2 + k;
    let coarse_idx = |i: usize, j: usize, k: usize| (i * c1 + j) * c2 + k;

    let n_fine = fine.n_cells();
    let n_coarse = c0 * c1 * c2;
    let mut map = vec![0usize; n_fine];
    for i in 0..n0 {
        for j in 0..n1 {
            for k in 0..n2 {
                map[fine_idx(i, j, k)] = coarse_idx(i / 2, j / 2, k / 2);
            }
        }
    }

    let mut volumes = vec![0.0f64; n_coarse];
    let mut weighted = vec![[0.0f64; 3]; n_coarse];
    for f in 0..n_fine {
        let c = map[f];
        let v = fine.volumes[f];
        volumes[c] += v;
        for d in 0..3 {
            weighted[c][d] += v * fine.coords[f][d];
        }
    }
    let coords: Vec<[f64; 3]> = weighted
        .iter()
        .zip(&volumes)
        .map(|(w, &v)| [w[0] / v, w[1] / v, w[2] / v])
        .collect();

    // Aggregate fine faces crossing coarse-cell boundaries.
    let mut face_area: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for &(a, b, area) in &fine.faces {
        let (ca, cb) = (map[a], map[b]);
        if ca != cb {
            let key = (ca.min(cb), ca.max(cb));
            *face_area.entry(key).or_insert(0.0) += area;
        }
    }
    let mut faces: Vec<(usize, usize, f64)> = face_area
        .into_iter()
        .map(|((a, b), area)| (a, b, area))
        .collect();
    faces.sort_unstable_by_key(|&(a, b, _)| (a, b));

    let mut coo = Coo::with_capacity(n_coarse, n_coarse, 2 * faces.len());
    for &(a, b, area) in &faces {
        coo.push(a, b, area);
        coo.push(b, a, area);
    }

    (
        UnstructuredMesh {
            coords,
            volumes,
            adjacency: coo.to_csr(),
            faces,
            dims: Some([c0, c1, c2]),
        },
        map,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{annulus_sector, combustor_box};

    #[test]
    fn coarsening_preserves_volume() {
        let m = annulus_sector(8, 8, 16, 1.0, 2.0, 0.0, 1.0, 1.0);
        let total = m.total_volume();
        let h = MeshHierarchy::build(m, 4);
        assert_eq!(h.n_levels(), 4);
        for level in &h.levels {
            assert!(
                (level.total_volume() - total).abs() / total < 1e-10,
                "volume not conserved"
            );
            assert!(level.validate().is_ok(), "{:?}", level.validate());
        }
    }

    #[test]
    fn sizes_shrink_roughly_8x() {
        let m = combustor_box(16, 16, 16, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(m, 3);
        let s = h.level_sizes();
        assert_eq!(s, vec![4096, 512, 64]);
    }

    #[test]
    fn odd_dims_coarsen() {
        let m = combustor_box(5, 3, 7, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(m, 2);
        let s = h.level_sizes();
        assert_eq!(s[1], 3 * 2 * 4);
        assert!(h.levels[1].validate().is_ok());
    }

    #[test]
    fn maps_cover_coarse_cells() {
        let m = combustor_box(4, 4, 4, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(m, 2);
        let map = &h.maps[0];
        let n_coarse = h.levels[1].n_cells();
        let mut seen = vec![false; n_coarse];
        for &c in map {
            assert!(c < n_coarse);
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bottoms_out_gracefully() {
        let m = combustor_box(2, 2, 2, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(m, 10);
        assert!(h.n_levels() < 10);
        assert_eq!(h.levels.last().unwrap().n_cells(), 1);
    }

    #[test]
    fn grid_complexity_close_to_eight_sevenths() {
        let m = combustor_box(32, 16, 16, 0.0, 1.0, 1.0, 1.0);
        let h = MeshHierarchy::build(m, 4);
        let gc = h.grid_complexity();
        assert!(gc > 1.1 && gc < 1.25, "grid complexity {gc}");
    }
}
