//! Coupling interface extraction.
//!
//! Two interface types drive the paper's coupling cost analysis (§II-A):
//!
//! * **Sliding planes** between density-solver instances: the annular
//!   face band where one blade row meets the next. Rotor rows rotate
//!   relative to stator rows, so the donor mapping must be *recomputed
//!   every timestep*. Covers ~0.42% of the mesh.
//! * **Steady-state overlap** between density and pressure solvers: a
//!   composite volume built from a larger portion (~5%) of the
//!   interacting meshes, but the mapping is computed *once*.
//!
//! [`InterfaceMesh`] is the coupler-side view: the participating cells,
//! their surface coordinates and weights.

use crate::mesh::UnstructuredMesh;

/// One side of a coupling interface.
#[derive(Debug, Clone)]
pub struct InterfaceMesh {
    /// Indices of the participating cells in the owning mesh.
    pub cells: Vec<usize>,
    /// Interface-surface coordinates of each participating cell: for an
    /// annular plane these are `(radius, theta)`; for a volume overlap
    /// the full centroid is projected to `(y, z)`.
    pub surface_coords: Vec<[f64; 2]>,
    /// Transfer weight of each cell (face area or cell volume).
    pub weights: Vec<f64>,
}

impl InterfaceMesh {
    /// Number of interface points.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the interface is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Fraction of the owning mesh's cells participating.
    pub fn fraction_of(&self, mesh: &UnstructuredMesh) -> f64 {
        self.len() as f64 / mesh.n_cells() as f64
    }

    /// Rotate the surface coordinates by `dtheta` (sliding-plane motion:
    /// the rotor side of the interface spins each timestep).
    pub fn rotated(&self, dtheta: f64) -> InterfaceMesh {
        let two_pi = std::f64::consts::TAU;
        InterfaceMesh {
            cells: self.cells.clone(),
            surface_coords: self
                .surface_coords
                .iter()
                .map(|&[r, th]| [r, (th + dtheta).rem_euclid(two_pi)])
                .collect(),
            weights: self.weights.clone(),
        }
    }
}

/// Extract the sliding-plane pair between two adjacent annular meshes:
/// the axially-last cell layer of `upstream` and the axially-first layer
/// of `downstream`. Surface coordinates are `(radius, theta)`.
pub fn sliding_plane_pair(
    upstream: &UnstructuredMesh,
    downstream: &UnstructuredMesh,
) -> (InterfaceMesh, InterfaceMesh) {
    (axial_layer(upstream, true), axial_layer(downstream, false))
}

fn axial_layer(mesh: &UnstructuredMesh, last: bool) -> InterfaceMesh {
    let (lo, hi) = mesh.x_range();
    // Cells whose centroid lies within half a cell-layer of the extreme.
    let dims = mesh.dims.unwrap_or([1, 1, 1]);
    let layer_thickness = (hi - lo).max(f64::MIN_POSITIVE) / dims[0].max(1) as f64;
    let target = if last { hi } else { lo };
    let mut cells = Vec::new();
    let mut surface_coords = Vec::new();
    let mut weights = Vec::new();
    for (i, c) in mesh.coords.iter().enumerate() {
        if (c[0] - target).abs() <= 0.51 * layer_thickness {
            cells.push(i);
            let r = (c[1] * c[1] + c[2] * c[2]).sqrt();
            let th = c[2].atan2(c[1]).rem_euclid(std::f64::consts::TAU);
            surface_coords.push([r, th]);
            weights.push(mesh.volumes[i]);
        }
    }
    InterfaceMesh {
        cells,
        surface_coords,
        weights,
    }
}

/// Extract the steady-state overlap region: the `fraction` of cells
/// nearest the interface end of the mesh (axially). Surface coordinates
/// are the `(y, z)` projection.
pub fn overlap_interface(mesh: &UnstructuredMesh, fraction: f64, at_max_x: bool) -> InterfaceMesh {
    assert!(fraction > 0.0 && fraction <= 1.0);
    let (lo, hi) = mesh.x_range();
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let depth = span * fraction;
    let mut cells = Vec::new();
    let mut surface_coords = Vec::new();
    let mut weights = Vec::new();
    for (i, c) in mesh.coords.iter().enumerate() {
        let inside = if at_max_x {
            c[0] >= hi - depth
        } else {
            c[0] <= lo + depth
        };
        if inside {
            cells.push(i);
            surface_coords.push([c[1], c[2]]);
            weights.push(mesh.volumes[i]);
        }
    }
    InterfaceMesh {
        cells,
        surface_coords,
        weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{annulus_sector, combustor_box};

    #[test]
    fn sliding_plane_layers_have_layer_size() {
        let up = annulus_sector(10, 4, 8, 1.0, 2.0, 0.0, 1.0, 1.0);
        let down = annulus_sector(10, 4, 8, 1.0, 2.0, 1.0, 1.0, 1.0);
        let (a, b) = sliding_plane_pair(&up, &down);
        // One axial layer = n_radial * n_theta cells.
        assert_eq!(a.len(), 32);
        assert_eq!(b.len(), 32);
        // Sliding plane is a small fraction of the mesh (0.42% at scale;
        // here 1 layer of 10).
        assert!((a.fraction_of(&up) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sliding_plane_sides_face_each_other() {
        let up = annulus_sector(6, 3, 6, 1.0, 2.0, 0.0, 1.0, 1.0);
        let down = annulus_sector(6, 3, 6, 1.0, 2.0, 1.0, 1.0, 1.0);
        let (a, b) = sliding_plane_pair(&up, &down);
        // Upstream's exit layer sits at x≈1-δ, downstream's inlet at
        // x≈1+δ: their (r,θ) coordinates must pair up exactly.
        for (ca, cb) in a.surface_coords.iter().zip(&b.surface_coords) {
            assert!((ca[0] - cb[0]).abs() < 1e-12);
            assert!((ca[1] - cb[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn overlap_fraction_respected() {
        let m = combustor_box(20, 10, 10, 0.0, 2.0, 1.0, 1.0);
        let iface = overlap_interface(&m, 0.05, false);
        let frac = iface.fraction_of(&m);
        assert!(
            (0.03..=0.08).contains(&frac),
            "wanted ~5% of cells, got {frac}"
        );
    }

    #[test]
    fn overlap_picks_correct_end() {
        let m = combustor_box(10, 2, 2, 5.0, 1.0, 1.0, 1.0);
        let lo_iface = overlap_interface(&m, 0.1, false);
        let hi_iface = overlap_interface(&m, 0.1, true);
        for &c in &lo_iface.cells {
            assert!(m.coords[c][0] < 5.2);
        }
        for &c in &hi_iface.cells {
            assert!(m.coords[c][0] > 5.8);
        }
    }

    #[test]
    fn rotation_wraps_theta() {
        let up = annulus_sector(2, 2, 4, 1.0, 2.0, 0.0, 1.0, std::f64::consts::TAU);
        let (a, _) = sliding_plane_pair(&up, &up);
        let rotated = a.rotated(std::f64::consts::TAU + 0.25);
        for (orig, rot) in a.surface_coords.iter().zip(&rotated.surface_coords) {
            assert!((rot[0] - orig[0]).abs() < 1e-12);
            let d = (rot[1] - (orig[1] + 0.25).rem_euclid(std::f64::consts::TAU)).abs();
            assert!(d < 1e-9, "theta rotation wrong by {d}");
        }
    }

    #[test]
    fn weights_positive() {
        let m = combustor_box(8, 8, 8, 0.0, 1.0, 1.0, 1.0);
        let iface = overlap_interface(&m, 0.2, true);
        assert!(iface.weights.iter().all(|&w| w > 0.0));
    }
}
