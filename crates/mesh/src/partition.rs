//! Mesh domain decomposition and surface-to-volume extrapolation.
//!
//! Functional runs partition the actual generated mesh with RCB. The
//! 40,000-rank studies need halo sizes for meshes (and rank counts) far
//! beyond what is practical to build directly, so [`SurfaceModel`] fits
//! the classic surface-to-volume law `halo(p) ≈ c · (n/p)^(2/3)` to
//! *measured* partitions of a real mesh and extrapolates; the fit is
//! validated against held-out measured points in the tests.

use cpx_sparse::partition::{partition_quality, PartitionQuality};
use cpx_sparse::rcb_partition;

use crate::mesh::UnstructuredMesh;

/// A concrete decomposition of a mesh into ranks.
#[derive(Debug, Clone)]
pub struct MeshPartition {
    /// `assignment[cell] = rank`.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub parts: usize,
    /// Quality metrics (loads, halos, neighbour counts).
    pub quality: PartitionQuality,
}

impl MeshPartition {
    /// RCB-partition `mesh` into `parts` ranks.
    pub fn build(mesh: &UnstructuredMesh, parts: usize) -> MeshPartition {
        let assignment = rcb_partition(&mesh.coords, parts);
        let quality = partition_quality(&mesh.adjacency, &assignment, parts);
        MeshPartition {
            assignment,
            parts,
            quality,
        }
    }

    /// Cells owned by `rank`.
    pub fn cells_of(&self, rank: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == rank)
            .map(|(i, _)| i)
            .collect()
    }

    /// Cell count per rank.
    pub fn loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.parts];
        for &p in &self.assignment {
            loads[p] += 1;
        }
        loads
    }
}

/// Surface-to-volume halo model `halo(n, p) = c · (n/p)^(2/3)` with an
/// imbalance term, fitted to measured partitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceModel {
    /// Surface coefficient.
    pub c: f64,
    /// Load imbalance factor (max/avg), assumed mildly increasing with
    /// part count: `imbalance(p) = 1 + d·log2(p)/100` capped at 1.25.
    pub d: f64,
}

impl SurfaceModel {
    /// Fit `c` by least squares over measured `(cells_per_part,
    /// max_halo)` samples from real partitions of `mesh`, and `d` from
    /// the measured imbalances.
    pub fn fit(mesh: &UnstructuredMesh, part_counts: &[usize]) -> SurfaceModel {
        assert!(!part_counts.is_empty());
        let n = mesh.n_cells() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        let mut imb_num = 0.0;
        let mut imb_den = 0.0;
        for &p in part_counts {
            let mp = MeshPartition::build(mesh, p);
            let x = (n / p as f64).powf(2.0 / 3.0);
            let y = mp.quality.max_halo() as f64;
            num += x * y;
            den += x * x;
            if p > 1 {
                let lg = (p as f64).log2();
                imb_num += lg * (mp.quality.imbalance() - 1.0) * 100.0;
                imb_den += lg * lg;
            }
        }
        SurfaceModel {
            c: if den > 0.0 { num / den } else { 0.0 },
            d: if imb_den > 0.0 {
                (imb_num / imb_den).max(0.0)
            } else {
                0.0
            },
        }
    }

    /// Predicted max halo cells per rank for `cells` total cells over
    /// `parts` ranks.
    pub fn halo(&self, cells: f64, parts: usize) -> f64 {
        if parts <= 1 {
            return 0.0;
        }
        self.c * (cells / parts as f64).powf(2.0 / 3.0)
    }

    /// Predicted load imbalance (max/avg cells per rank).
    pub fn imbalance(&self, parts: usize) -> f64 {
        if parts <= 1 {
            return 1.0;
        }
        (1.0 + self.d * (parts as f64).log2() / 100.0).min(1.25)
    }

    /// Predicted max cells per rank (including imbalance).
    pub fn max_load(&self, cells: f64, parts: usize) -> f64 {
        (cells / parts as f64) * self.imbalance(parts)
    }

    /// A default model calibrated offline on a 32³ box mesh — used when
    /// generating a mesh to fit against is unnecessary.
    pub fn default_box() -> SurfaceModel {
        SurfaceModel { c: 6.6, d: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::combustor_box;

    #[test]
    fn partition_covers_all_cells() {
        let m = combustor_box(8, 8, 8, 0.0, 1.0, 1.0, 1.0);
        let mp = MeshPartition::build(&m, 8);
        assert_eq!(mp.loads().iter().sum::<usize>(), 512);
        assert!(mp.loads().iter().all(|&l| l > 0));
        assert!(mp.quality.imbalance() < 1.1);
    }

    #[test]
    fn cells_of_rank_consistent() {
        let m = combustor_box(4, 4, 4, 0.0, 1.0, 1.0, 1.0);
        let mp = MeshPartition::build(&m, 4);
        let mut total = 0;
        for r in 0..4 {
            let cells = mp.cells_of(r);
            total += cells.len();
            for c in cells {
                assert_eq!(mp.assignment[c], r);
            }
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn surface_model_interpolates_measured_points() {
        let m = combustor_box(24, 24, 24, 0.0, 1.0, 1.0, 1.0);
        // Fit on 3-D (boxy) decompositions — the regime production runs
        // operate in; slab decompositions at tiny p have a different
        // surface prefactor.
        let model = SurfaceModel::fit(&m, &[8, 16, 64]);
        // Validate on a held-out part count.
        let held_out = 32;
        let mp = MeshPartition::build(&m, held_out);
        let measured = mp.quality.max_halo() as f64;
        let predicted = model.halo(m.n_cells() as f64, held_out);
        let err = (predicted - measured).abs() / measured;
        assert!(
            err < 0.4,
            "extrapolated halo off by {:.0}%: {predicted} vs {measured}",
            err * 100.0
        );
    }

    #[test]
    fn halo_decreases_with_parts_per_rank() {
        let model = SurfaceModel::default_box();
        let n = 1.0e8;
        let h1k = model.halo(n, 1000);
        let h10k = model.halo(n, 10_000);
        assert!(h10k < h1k);
        // Surface scaling: 10x parts → halo shrinks ~10^(2/3) ≈ 4.64x.
        let ratio = h1k / h10k;
        assert!((4.0..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn imbalance_grows_but_caps() {
        let model = SurfaceModel { c: 5.0, d: 2.0 };
        assert_eq!(model.imbalance(1), 1.0);
        assert!(model.imbalance(1024) > model.imbalance(16));
        assert!(model.imbalance(1 << 30) <= 1.25);
    }

    #[test]
    fn max_load_at_least_average() {
        let model = SurfaceModel::default_box();
        let n = 1e7;
        for p in [10usize, 100, 1000] {
            assert!(model.max_load(n, p) >= n / p as f64);
        }
    }

    #[test]
    fn single_part_no_halo() {
        let model = SurfaceModel::default_box();
        assert_eq!(model.halo(1e6, 1), 0.0);
        assert_eq!(model.imbalance(1), 1.0);
    }
}
