//! Unstructured cell-centred meshes and their generators.
//!
//! Meshes are stored fully unstructured (cells + face adjacency), as the
//! production density solver and MG-CFD treat them; the generators below
//! happen to produce structured topologies, which is exactly how the
//! MG-CFD reference meshes (annulus blade rows) are built.

use cpx_sparse::{Coo, Csr};

/// An unstructured cell-centred mesh.
#[derive(Debug, Clone)]
pub struct UnstructuredMesh {
    /// Cell centroids (Cartesian).
    pub coords: Vec<[f64; 3]>,
    /// Cell volumes.
    pub volumes: Vec<f64>,
    /// Symmetric cell-to-cell face adjacency (value = face area).
    pub adjacency: Csr,
    /// Interior faces as `(cell_a, cell_b, area)` with `cell_a < cell_b`
    /// — the edge list MG-CFD's edge-based kernels iterate.
    pub faces: Vec<(usize, usize, f64)>,
    /// Structured dims if the generator had them (used by geometric
    /// coarsening); `None` for general meshes.
    pub dims: Option<[usize; 3]>,
}

impl UnstructuredMesh {
    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.coords.len()
    }

    /// Number of interior faces (edges).
    pub fn n_faces(&self) -> usize {
        self.faces.len()
    }

    /// Total volume.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    /// Axial (x) extent of the mesh.
    pub fn x_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.coords {
            lo = lo.min(c[0]);
            hi = hi.max(c[0]);
        }
        (lo, hi)
    }

    /// Structural sanity checks: symmetric adjacency, faces consistent
    /// with adjacency, positive volumes/areas.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_cells();
        if self.volumes.len() != n {
            return Err("volumes length".into());
        }
        if self.adjacency.nrows() != n || self.adjacency.ncols() != n {
            return Err("adjacency shape".into());
        }
        if self.volumes.iter().any(|&v| v.is_nan() || v <= 0.0) {
            return Err("non-positive volume".into());
        }
        for &(a, b, area) in &self.faces {
            if a >= b || b >= n {
                return Err(format!("bad face ({a},{b})"));
            }
            if area.is_nan() || area <= 0.0 {
                return Err(format!("non-positive face area at ({a},{b})"));
            }
            if self.adjacency.get(a, b) == 0.0 || self.adjacency.get(b, a) == 0.0 {
                return Err(format!("face ({a},{b}) missing from adjacency"));
            }
        }
        if self.adjacency.nnz() != 2 * self.faces.len() {
            return Err(format!(
                "adjacency nnz {} != 2 * faces {}",
                self.adjacency.nnz(),
                self.faces.len()
            ));
        }
        Ok(())
    }
}

/// Build a mesh from structured grid geometry: `coords[i]` laid out over
/// `dims = [n0, n1, n2]` with neighbour connectivity along each axis.
fn structured_to_unstructured(
    dims: [usize; 3],
    coords: Vec<[f64; 3]>,
    volumes: Vec<f64>,
    face_area: impl Fn(usize, usize) -> f64,
) -> UnstructuredMesh {
    let [n0, n1, n2] = dims;
    let n = n0 * n1 * n2;
    assert_eq!(coords.len(), n);
    let idx = |i: usize, j: usize, k: usize| (i * n1 + j) * n2 + k;
    let mut faces = Vec::with_capacity(3 * n);
    for i in 0..n0 {
        for j in 0..n1 {
            for k in 0..n2 {
                let me = idx(i, j, k);
                if i + 1 < n0 {
                    faces.push((me, idx(i + 1, j, k), face_area(me, 0)));
                }
                if j + 1 < n1 {
                    faces.push((me, idx(i, j + 1, k), face_area(me, 1)));
                }
                if k + 1 < n2 {
                    faces.push((me, idx(i, j, k + 1), face_area(me, 2)));
                }
            }
        }
    }
    let mut coo = Coo::with_capacity(n, n, 2 * faces.len());
    for &(a, b, area) in &faces {
        coo.push(a, b, area);
        coo.push(b, a, area);
    }
    UnstructuredMesh {
        coords,
        volumes,
        adjacency: coo.to_csr(),
        faces,
        dims: Some(dims),
    }
}

/// Generate an annular blade-row sector mesh (the MG-CFD / density
/// solver geometry): `n_axial × n_radial × n_theta` cells between radii
/// `r_in..r_out`, axial extent `x0..x0+x_len`, sweeping `theta_span`
/// radians.
pub fn annulus_sector(
    n_axial: usize,
    n_radial: usize,
    n_theta: usize,
    r_in: f64,
    r_out: f64,
    x0: f64,
    x_len: f64,
    theta_span: f64,
) -> UnstructuredMesh {
    assert!(n_axial >= 1 && n_radial >= 1 && n_theta >= 1);
    assert!(r_out > r_in && r_in > 0.0);
    assert!(x_len > 0.0 && theta_span > 0.0);
    let dx = x_len / n_axial as f64;
    let dr = (r_out - r_in) / n_radial as f64;
    let dth = theta_span / n_theta as f64;
    let n = n_axial * n_radial * n_theta;
    let mut coords = Vec::with_capacity(n);
    let mut volumes = Vec::with_capacity(n);
    for i in 0..n_axial {
        let x = x0 + (i as f64 + 0.5) * dx;
        for j in 0..n_radial {
            let r = r_in + (j as f64 + 0.5) * dr;
            for k in 0..n_theta {
                let th = (k as f64 + 0.5) * dth;
                coords.push([x, r * th.cos(), r * th.sin()]);
                volumes.push(r * dr * dth * dx);
            }
        }
    }
    // Face areas by axis: axial faces r·dr·dθ, radial faces r·dθ·dx,
    // azimuthal faces dr·dx. Radius of the cell approximated mid-cell.
    let vol = volumes.clone();
    structured_to_unstructured(
        [n_axial, n_radial, n_theta],
        coords,
        volumes,
        move |me, axis| {
            let cell_vol = vol[me];
            match axis {
                0 => cell_vol / dx,  // normal to x
                1 => cell_vol / dr,  // normal to r
                _ => cell_vol / dth, // normal to θ (area ≈ dr·dx·r/r)
            }
        },
    )
}

/// Generate a box-shaped combustor volume mesh (`nx × ny × nz` cells
/// over the given extents), the pressure-solver geometry stand-in.
pub fn combustor_box(
    nx: usize,
    ny: usize,
    nz: usize,
    x0: f64,
    lx: f64,
    ly: f64,
    lz: f64,
) -> UnstructuredMesh {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    assert!(lx > 0.0 && ly > 0.0 && lz > 0.0);
    let (dx, dy, dz) = (lx / nx as f64, ly / ny as f64, lz / nz as f64);
    let n = nx * ny * nz;
    let mut coords = Vec::with_capacity(n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                coords.push([
                    x0 + (i as f64 + 0.5) * dx,
                    (j as f64 + 0.5) * dy - ly / 2.0,
                    (k as f64 + 0.5) * dz - lz / 2.0,
                ]);
            }
        }
    }
    let volumes = vec![dx * dy * dz; n];
    structured_to_unstructured([nx, ny, nz], coords, volumes, move |_, axis| match axis {
        0 => dy * dz,
        1 => dx * dz,
        _ => dx * dy,
    })
}

/// Pick balanced `[n_axial, n_radial, n_theta]` dims for a target cell
/// count with a blade-row-ish aspect (axial ≈ radial, theta dominates a
/// sector of many passages). Guarantees `product >= target / 2` and
/// `product <= 2 * target`.
pub fn blade_row_dims(target_cells: usize) -> [usize; 3] {
    assert!(target_cells >= 1);
    let c = (target_cells as f64).cbrt();
    let nx = (c * 0.8).round().max(1.0) as usize;
    let nr = (c * 0.8).round().max(1.0) as usize;
    let nth = (target_cells as f64 / (nx * nr) as f64).round().max(1.0) as usize;
    [nx, nr, nth]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annulus_basic_properties() {
        let m = annulus_sector(4, 3, 8, 1.0, 2.0, 0.0, 1.0, std::f64::consts::FRAC_PI_2);
        assert_eq!(m.n_cells(), 96);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
        // Analytic sector volume: 0.5·(r_out²−r_in²)·θ·L = 0.5·3·(π/2)·1.
        let exact = 0.5 * 3.0 * std::f64::consts::FRAC_PI_2;
        assert!(
            (m.total_volume() - exact).abs() / exact < 1e-10,
            "{} vs {exact}",
            m.total_volume()
        );
    }

    #[test]
    fn combustor_basic_properties() {
        let m = combustor_box(5, 4, 3, 2.0, 1.0, 0.8, 0.6);
        assert_eq!(m.n_cells(), 60);
        assert!(m.validate().is_ok());
        assert!((m.total_volume() - 0.48).abs() < 1e-12);
        let (lo, hi) = m.x_range();
        assert!(lo > 2.0 && hi < 3.0);
    }

    #[test]
    fn face_count_matches_structured_formula() {
        let m = combustor_box(4, 5, 6, 0.0, 1.0, 1.0, 1.0);
        // Interior faces: (nx-1)·ny·nz + nx·(ny-1)·nz + nx·ny·(nz-1).
        let want = 3 * 5 * 6 + 4 * 4 * 6 + 4 * 5 * 5;
        assert_eq!(m.n_faces(), want);
    }

    #[test]
    fn adjacency_symmetric() {
        let m = annulus_sector(3, 3, 5, 1.0, 1.5, 0.0, 0.5, 0.7);
        assert_eq!(m.adjacency, m.adjacency.transpose());
    }

    #[test]
    fn blade_row_dims_hit_target() {
        for target in [1_000usize, 50_000, 200_000] {
            let [a, b, c] = blade_row_dims(target);
            let got = a * b * c;
            assert!(
                got >= target / 2 && got <= target * 2,
                "target {target} got {got}"
            );
        }
    }

    #[test]
    fn single_cell_mesh() {
        let m = combustor_box(1, 1, 1, 0.0, 1.0, 1.0, 1.0);
        assert_eq!(m.n_cells(), 1);
        assert_eq!(m.n_faces(), 0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn volumes_uniform_in_box() {
        let m = combustor_box(3, 3, 3, 0.0, 3.0, 3.0, 3.0);
        for &v in &m.volumes {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
