//! Critical-path analytics over happens-before task graphs.
//!
//! A [`TaskGraph`] is the causal (PERT-style) view of one coupled run:
//! every compute burst, point-to-point message and collective becomes a
//! node, ordered by the two dependence kinds the testbed has — program
//! order within a rank, and message/collective arrivals across ranks.
//! The graph is built *offline* from artifacts the workspace already
//! records (a `TraceProgram` walked against a machine model in
//! `cpx-machine`, or a `.cpxr` event trace in `cpx-replay`); nothing
//! here touches a hot path.
//!
//! Three analyses run on a graph:
//!
//! * [`TaskGraph::schedule`] — a forward pass that replays the
//!   discrete-event semantics of `cpx_machine::des` *exactly* (same
//!   float operations in a dependency-respecting order), so the
//!   baseline makespan bit-matches the replayer's;
//! * [`TaskGraph::critical_path`] — the backward walk along binding
//!   constraints from the finishing node, yielding a gap-free chain of
//!   segments (compute, send overhead, wire transfer, collective) that
//!   tiles `[0, makespan]`;
//! * [`TaskGraph::slack`] — a latest-end pass giving, per node, how far
//!   it could slip without moving the makespan (0 on the critical path).
//!
//! The **what-if engine** is the forward pass parameterised by a
//! [`Rescale`]: scale any phase's compute cost (a hypothetical kernel
//! optimisation) or any tag range's transfer time (a hypothetical
//! interconnect/coupler change) and the new makespan — hence the
//! end-to-end speedup — falls out without re-deriving the program.

use crate::Json;

/// Index of a node in [`TaskGraph::nodes`].
pub type NodeId = usize;

/// What a node does. Durations live on the node ([`TaskNode::dur`]) for
/// the rigid kinds (compute, send overhead); receives and collectives
/// are *elastic* — their cost depends on when dependencies arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Local computation of `dur` seconds.
    Compute,
    /// Eager send: the sender is charged `dur` = software overhead; the
    /// payload travels on the wire for [`TaskNode::transfer`] seconds
    /// measured from the send's *start* (the DES convention).
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive matched to a send node.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u32,
    },
    /// One member's participation in a collective; the shared occurrence
    /// is [`TaskGraph::meets`]`[meet]`.
    Collective {
        /// Index into [`TaskGraph::meets`].
        meet: usize,
    },
}

/// One node of the happens-before graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskNode {
    /// Rank the node executes on.
    pub rank: usize,
    /// Phase id active when the node runs (0 = untracked).
    pub phase: u16,
    /// What the node does.
    pub kind: TaskKind,
    /// Rigid duration in seconds (compute time or send overhead; 0 for
    /// elastic kinds).
    pub dur: f64,
    /// Wire time of the matched message, for `Recv` nodes: the payload
    /// arrives at `start(send) + transfer`. 0 otherwise.
    pub transfer: f64,
    /// Previous node on the same rank (program order), if any.
    pub prev: Option<NodeId>,
    /// The matched `Send` node, for `Recv` nodes.
    pub matched_send: Option<NodeId>,
}

/// One collective occurrence: the set of member nodes (in group rank
/// order) plus the modelled cost charged after the last member arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct Meet {
    /// Member nodes, in group rank order.
    pub members: Vec<NodeId>,
    /// Collective cost in seconds, charged after the last entry.
    pub cost: f64,
    /// Human label (e.g. `"allreduce"`) for blamed-span output.
    pub label: &'static str,
}

/// The causal graph of one run.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    /// All nodes; program order within a rank, ranks concatenated.
    pub nodes: Vec<TaskNode>,
    /// Collective occurrences referenced by `TaskKind::Collective`.
    pub meets: Vec<Meet>,
    /// Number of ranks.
    pub n_ranks: usize,
    /// Phase id → display name (index 0 = untracked).
    pub phase_names: Vec<String>,
}

/// A what-if transform applied during [`TaskGraph::schedule`].
///
/// `compute_by_phase[p]` multiplies the duration of every compute node
/// in phase `p` (missing entries mean 1.0). `transfer_by_tag` entries
/// `(lo, hi, f)` multiply the wire time of every message whose tag lies
/// in `lo..=hi`. [`Rescale::none`] is the identity: multiplying by 1.0
/// is bit-exact, so the baseline schedule reproduces the DES replay.
#[derive(Debug, Clone, Default)]
pub struct Rescale {
    /// Per-phase compute multipliers (index = phase id).
    pub compute_by_phase: Vec<f64>,
    /// Inclusive tag ranges with transfer-time multipliers.
    pub transfer_by_tag: Vec<(u32, u32, f64)>,
}

impl Rescale {
    /// The identity transform.
    pub fn none() -> Rescale {
        Rescale::default()
    }

    /// Multiplier for compute in phase `p`.
    #[inline]
    fn compute_factor(&self, p: u16) -> f64 {
        *self.compute_by_phase.get(p as usize).unwrap_or(&1.0)
    }

    /// Multiplier for a transfer with tag `t`.
    #[inline]
    fn transfer_factor(&self, t: u32) -> f64 {
        for &(lo, hi, f) in &self.transfer_by_tag {
            if (lo..=hi).contains(&t) {
                return f;
            }
        }
        1.0
    }
}

/// Blend a kernel-level speedup into a phase-level compute multiplier:
/// if the kernel accounts for `share ∈ [0,1]` of the phase's compute
/// and gets `speedup`× faster, the phase's compute scales by
/// `1 - share + share/speedup` (Amdahl within the phase).
pub fn blend_factor(share: f64, speedup: f64) -> f64 {
    1.0 - share + share / speedup
}

/// The result of a forward pass: per-node times plus bookkeeping the
/// backward analyses need.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Node start times.
    pub start: Vec<f64>,
    /// Node end times.
    pub end: Vec<f64>,
    /// Effective rigid duration used per node (after rescale).
    pub eff_dur: Vec<f64>,
    /// Effective wire transfer used per `Recv` node (after rescale).
    pub eff_transfer: Vec<f64>,
    /// Exit time per meet.
    pub meet_end: Vec<f64>,
    /// Max end over all nodes (0.0 for an empty graph).
    pub makespan: f64,
    /// Node achieving the makespan (lowest id on ties); `None` when the
    /// graph is empty.
    pub sink: Option<NodeId>,
    /// A topological order (the order values were computed in).
    pub topo: Vec<NodeId>,
}

/// How a critical-path segment spends its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegClass {
    /// Local computation.
    Compute,
    /// Communication: send overhead, wire transfer or collective cost.
    Comm,
}

/// One contiguous stretch of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Rank blamed for the segment (the sender for transfers, the
    /// last-arriving member for collectives).
    pub rank: usize,
    /// Phase id of the blamed node.
    pub phase: u16,
    /// Compute or comm.
    pub class: SegClass,
    /// Short label (`"compute"`, `"send"`, `"transfer"`, or the
    /// collective kind).
    pub label: &'static str,
    /// Segment start time.
    pub t0: f64,
    /// Segment end time.
    pub t1: f64,
}

impl PathSegment {
    /// Segment duration.
    pub fn dur(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// The extracted critical path: binding segments from time 0 to the
/// makespan, earliest first.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Segments in increasing time order; they tile `[0, makespan]`.
    pub segments: Vec<PathSegment>,
    /// The schedule's makespan.
    pub makespan: f64,
}

impl CriticalPath {
    /// Total compute seconds on the path.
    pub fn compute_s(&self) -> f64 {
        self.class_total(SegClass::Compute)
    }

    /// Total communication seconds on the path.
    pub fn comm_s(&self) -> f64 {
        self.class_total(SegClass::Comm)
    }

    fn class_total(&self, c: SegClass) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.class == c)
            .map(PathSegment::dur)
            .sum()
    }

    /// Fraction of the makespan covered by path segments — 1.0 up to
    /// float roundoff (the walk is gap-free by construction).
    pub fn coverage(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.segments.iter().map(PathSegment::dur).sum::<f64>() / self.makespan
    }
}

/// Graph-wide time attribution per phase: where *all* ranks' time went,
/// split compute / comm / idle-wait (the DES replayer folds the last
/// two together as "comm"; here waiting on a dependency is its own
/// bucket, which is what makes blame actionable).
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Per-phase compute seconds summed over ranks.
    pub compute: Vec<f64>,
    /// Per-phase communication seconds (send overheads + collective
    /// costs) summed over ranks.
    pub comm: Vec<f64>,
    /// Per-phase idle seconds waiting on a dependency (receive waits +
    /// collective waits) summed over ranks.
    pub wait: Vec<f64>,
}

impl TaskGraph {
    /// Forward pass under `rescale`. Errors if the graph has a
    /// dependency cycle (e.g. mismatched send/recv matching).
    pub fn schedule(&self, rescale: &Rescale) -> Result<Schedule, String> {
        let n = self.nodes.len();
        let mut start = vec![0.0f64; n];
        let mut end = vec![0.0f64; n];
        let mut eff_dur = vec![0.0f64; n];
        let mut eff_transfer = vec![0.0f64; n];
        let mut done = vec![false; n];
        let mut topo = Vec::with_capacity(n);

        // Dependency counts and dependents adjacency.
        let mut deps = vec![0u32; n];
        let mut dependents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.prev {
                deps[i] += 1;
                dependents[p].push(i);
            }
            if let Some(s) = node.matched_send {
                deps[i] += 1;
                dependents[s].push(i);
            }
        }

        // Per-meet arrival bookkeeping.
        let mut meet_arrived = vec![0usize; self.meets.len()];
        let mut meet_end = vec![0.0f64; self.meets.len()];

        let mut ready: Vec<NodeId> = (0..n).filter(|&i| deps[i] == 0).collect();
        // Process in reverse so pop() yields ascending ids first —
        // values are order-independent, this just keeps `topo` tidy.
        ready.reverse();

        fn release(
            i: NodeId,
            dependents: &[Vec<NodeId>],
            deps: &mut [u32],
            ready: &mut Vec<NodeId>,
        ) {
            for &d in &dependents[i] {
                deps[d] -= 1;
                if deps[d] == 0 {
                    ready.push(d);
                }
            }
        }

        while let Some(i) = ready.pop() {
            if done[i] {
                continue;
            }
            let node = &self.nodes[i];
            let s = node.prev.map(|p| end[p]).unwrap_or(0.0);
            start[i] = s;
            match node.kind {
                TaskKind::Compute => {
                    let dt = node.dur * rescale.compute_factor(node.phase);
                    eff_dur[i] = dt;
                    end[i] = s + dt;
                    done[i] = true;
                    topo.push(i);
                    release(i, &dependents, &mut deps, &mut ready);
                }
                TaskKind::Send { .. } => {
                    eff_dur[i] = node.dur;
                    end[i] = s + node.dur;
                    done[i] = true;
                    topo.push(i);
                    release(i, &dependents, &mut deps, &mut ready);
                }
                TaskKind::Recv { tag, .. } => {
                    let send = node
                        .matched_send
                        .ok_or_else(|| format!("recv node {i} has no matched send"))?;
                    let transfer = node.transfer * rescale.transfer_factor(tag);
                    eff_transfer[i] = transfer;
                    // The DES float sequence exactly: arrival computed
                    // at send time, wait = (arrival - clock).max(0),
                    // clock += wait.
                    let arrival = start[send] + transfer;
                    end[i] = s + (arrival - s).max(0.0);
                    done[i] = true;
                    topo.push(i);
                    release(i, &dependents, &mut deps, &mut ready);
                }
                TaskKind::Collective { meet } => {
                    meet_arrived[meet] += 1;
                    let m = &self.meets[meet];
                    if meet_arrived[meet] == m.members.len() {
                        // Fold entries in member order, from 0.0, like
                        // the DES replayer's running max.
                        let mut base = 0.0f64;
                        for &mem in &m.members {
                            base = base.max(start[mem]);
                        }
                        meet_end[meet] = base + m.cost;
                        for &mem in &m.members {
                            end[mem] = meet_end[meet];
                            done[mem] = true;
                            topo.push(mem);
                        }
                        for &mem in &m.members {
                            release(mem, &dependents, &mut deps, &mut ready);
                        }
                    }
                    // else: the member's end resolves when the meet
                    // completes; it is not released yet.
                }
            }
        }

        if topo.len() != n {
            let stuck = (0..n).filter(|&i| !done[i]).count();
            return Err(format!(
                "dependency cycle or unmatched communication: {stuck} of {n} nodes never ran"
            ));
        }

        let mut makespan = 0.0f64;
        let mut sink = None;
        for (i, &e) in end.iter().enumerate() {
            if e > makespan {
                makespan = e;
                sink = Some(i);
            } else if sink.is_none() && !self.nodes.is_empty() {
                sink = Some(0);
            }
        }
        Ok(Schedule {
            start,
            end,
            eff_dur,
            eff_transfer,
            meet_end,
            makespan,
            sink,
            topo,
        })
    }

    /// New makespan under `rescale` — the what-if engine's core query.
    pub fn what_if_makespan(&self, rescale: &Rescale) -> Result<f64, String> {
        Ok(self.schedule(rescale)?.makespan)
    }

    /// Extract the critical path of `sched` by walking binding
    /// constraints backward from the sink.
    pub fn critical_path(&self, sched: &Schedule) -> CriticalPath {
        let mut segments = Vec::new();
        let mut cur = sched.sink;
        while let Some(i) = cur {
            let node = &self.nodes[i];
            let (s, e) = (sched.start[i], sched.end[i]);
            match node.kind {
                TaskKind::Compute => {
                    if e > s {
                        segments.push(PathSegment {
                            rank: node.rank,
                            phase: node.phase,
                            class: SegClass::Compute,
                            label: "compute",
                            t0: s,
                            t1: e,
                        });
                    }
                    cur = node.prev;
                }
                TaskKind::Send { .. } => {
                    if e > s {
                        segments.push(PathSegment {
                            rank: node.rank,
                            phase: node.phase,
                            class: SegClass::Comm,
                            label: "send",
                            t0: s,
                            t1: e,
                        });
                    }
                    cur = node.prev;
                }
                TaskKind::Recv { .. } => {
                    let send = node.matched_send.expect("scheduled recv is matched");
                    let arrival = sched.start[send] + sched.eff_transfer[i];
                    if arrival > s {
                        // The message bound: the wire segment from the
                        // send's start to the arrival is on the path,
                        // and the walk continues on the *sender* before
                        // the send was issued.
                        segments.push(PathSegment {
                            rank: self.nodes[send].rank,
                            phase: node.phase,
                            class: SegClass::Comm,
                            label: "transfer",
                            t0: sched.start[send],
                            t1: e,
                        });
                        cur = self.nodes[send].prev;
                    } else {
                        // Arrived early: local program order bound.
                        cur = node.prev;
                    }
                }
                TaskKind::Collective { meet } => {
                    let m = &self.meets[meet];
                    // Last-arriving member (first on ties, in member
                    // order) determines the exit.
                    let mut base = 0.0f64;
                    for &mem in &m.members {
                        base = base.max(sched.start[mem]);
                    }
                    let det = m
                        .members
                        .iter()
                        .copied()
                        .find(|&mem| sched.start[mem] == base)
                        .unwrap_or(i);
                    if e > base {
                        segments.push(PathSegment {
                            rank: self.nodes[det].rank,
                            phase: self.nodes[det].phase,
                            class: SegClass::Comm,
                            label: m.label,
                            t0: base,
                            t1: e,
                        });
                    }
                    cur = self.nodes[det].prev;
                }
            }
        }
        segments.reverse();
        CriticalPath {
            segments,
            makespan: sched.makespan,
        }
    }

    /// Per-node slack: how many seconds the node's end could slip
    /// without moving the makespan. Nodes on the critical path have
    /// slack 0 (up to float roundoff).
    pub fn slack(&self, sched: &Schedule) -> Vec<f64> {
        let n = self.nodes.len();
        let mut latest = vec![sched.makespan; n];
        let mut meet_done = vec![false; self.meets.len()];
        for &i in sched.topo.iter().rev() {
            let node = &self.nodes[i];
            match node.kind {
                TaskKind::Collective { meet } => {
                    if !meet_done[meet] {
                        meet_done[meet] = true;
                        let m = &self.meets[meet];
                        // All members' dependents were processed (they
                        // come later in topo), so member latests are
                        // final: the meet may exit at the tightest one.
                        let mut exit = f64::INFINITY;
                        for &mem in &m.members {
                            exit = exit.min(latest[mem]);
                        }
                        let entry_latest = exit - m.cost;
                        for &mem in &m.members {
                            if let Some(p) = self.nodes[mem].prev {
                                latest[p] = latest[p].min(entry_latest);
                            }
                        }
                    }
                }
                TaskKind::Recv { .. } => {
                    // Elastic: the predecessor may run right up to this
                    // node's latest end; the sender is constrained
                    // through the wire.
                    if let Some(p) = node.prev {
                        latest[p] = latest[p].min(latest[i]);
                    }
                    if let Some(send) = node.matched_send {
                        let bound = latest[i] - sched.eff_transfer[i] + sched.eff_dur[send];
                        latest[send] = latest[send].min(bound);
                    }
                }
                TaskKind::Compute | TaskKind::Send { .. } => {
                    if let Some(p) = node.prev {
                        latest[p] = latest[p].min(latest[i] - sched.eff_dur[i]);
                    }
                }
            }
        }
        (0..n).map(|i| latest[i] - sched.end[i]).collect()
    }

    /// Graph-wide per-phase attribution of every rank's time.
    pub fn attribution(&self, sched: &Schedule) -> Attribution {
        let np = self.phase_names.len().max(1);
        let mut att = Attribution {
            compute: vec![0.0; np],
            comm: vec![0.0; np],
            wait: vec![0.0; np],
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let p = (node.phase as usize).min(np - 1);
            match node.kind {
                TaskKind::Compute => att.compute[p] += sched.eff_dur[i],
                TaskKind::Send { .. } => att.comm[p] += sched.eff_dur[i],
                TaskKind::Recv { .. } => att.wait[p] += sched.end[i] - sched.start[i],
                TaskKind::Collective { meet } => {
                    let exit = sched.meet_end[meet];
                    let cost = self.meets[meet].cost;
                    let entry = sched.start[i];
                    att.wait[p] += (exit - cost - entry).max(0.0);
                    att.comm[p] += cost;
                }
            }
        }
        att
    }
}

/// A blamed span: one of the longest segments on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct BlamedSpan {
    /// Blamed rank.
    pub rank: usize,
    /// Phase name.
    pub phase: String,
    /// Segment label (`"compute"`, `"transfer"`, ...).
    pub label: String,
    /// Compute or comm.
    pub class: SegClass,
    /// Start time.
    pub t0: f64,
    /// Duration.
    pub dur: f64,
}

/// The diffable summary of one critical-path analysis.
#[derive(Debug, Clone, Default)]
pub struct PathReport {
    /// Schedule makespan.
    pub makespan: f64,
    /// Compute seconds on the path.
    pub compute_s: f64,
    /// Comm seconds on the path.
    pub comm_s: f64,
    /// Path coverage of the makespan (≈ 1.0).
    pub coverage: f64,
    /// Number of path segments.
    pub segments: usize,
    /// Per phase: (name, path seconds, share of makespan in percent).
    pub by_phase: Vec<(String, f64, f64)>,
    /// The longest path segments, longest first.
    pub top_spans: Vec<BlamedSpan>,
}

/// Summarise a critical path: composition by phase plus the `top_n`
/// longest blamed spans. Phase names fall back to `"phase {id}"`.
pub fn path_report(graph: &TaskGraph, path: &CriticalPath, top_n: usize) -> PathReport {
    let phase_name = |p: u16| -> String {
        graph
            .phase_names
            .get(p as usize)
            .cloned()
            .unwrap_or_else(|| format!("phase {p}"))
    };

    // Path seconds per phase id, in first-appearance order made
    // deterministic by scanning ids ascending.
    let mut per_phase: Vec<f64> = Vec::new();
    for seg in &path.segments {
        let p = seg.phase as usize;
        if per_phase.len() <= p {
            per_phase.resize(p + 1, 0.0);
        }
        per_phase[p] += seg.dur();
    }
    let by_phase: Vec<(String, f64, f64)> = per_phase
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 0.0)
        .map(|(p, &s)| {
            let pct = if path.makespan > 0.0 {
                100.0 * s / path.makespan
            } else {
                0.0
            };
            (phase_name(p as u16), s, pct)
        })
        .collect();

    // Top-N longest segments; ties broken by earlier start, then rank.
    let mut idx: Vec<usize> = (0..path.segments.len()).collect();
    idx.sort_by(|&a, &b| {
        let (sa, sb) = (&path.segments[a], &path.segments[b]);
        sb.dur()
            .partial_cmp(&sa.dur())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                sa.t0
                    .partial_cmp(&sb.t0)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(sa.rank.cmp(&sb.rank))
    });
    let top_spans: Vec<BlamedSpan> = idx
        .into_iter()
        .take(top_n)
        .map(|k| {
            let s = &path.segments[k];
            BlamedSpan {
                rank: s.rank,
                phase: phase_name(s.phase),
                label: s.label.to_string(),
                class: s.class,
                t0: s.t0,
                dur: s.dur(),
            }
        })
        .collect();

    PathReport {
        makespan: path.makespan,
        compute_s: path.compute_s(),
        comm_s: path.comm_s(),
        coverage: path.coverage(),
        segments: path.segments.len(),
        by_phase,
        top_spans,
    }
}

impl PathReport {
    /// JSON form (deterministic field order).
    pub fn to_json(&self) -> Json {
        let phases: Vec<Json> = self
            .by_phase
            .iter()
            .map(|(name, s, pct)| {
                Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("path_s", Json::Num(*s)),
                    ("share_pct", Json::Num(*pct)),
                ])
            })
            .collect();
        let spans: Vec<Json> = self
            .top_spans
            .iter()
            .map(|b| {
                Json::obj(vec![
                    ("rank", Json::Num(b.rank as f64)),
                    ("phase", Json::Str(b.phase.clone())),
                    ("label", Json::Str(b.label.clone())),
                    (
                        "class",
                        Json::Str(
                            match b.class {
                                SegClass::Compute => "compute",
                                SegClass::Comm => "comm",
                            }
                            .to_string(),
                        ),
                    ),
                    ("t0", Json::Num(b.t0)),
                    ("dur", Json::Num(b.dur)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("makespan", Json::Num(self.makespan)),
            ("compute_s", Json::Num(self.compute_s)),
            ("comm_s", Json::Num(self.comm_s)),
            ("coverage", Json::Num(self.coverage)),
            ("segments", Json::Num(self.segments as f64)),
            ("by_phase", Json::Arr(phases)),
            ("top_spans", Json::Arr(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(rank: usize, phase: u16, dur: f64, prev: Option<NodeId>) -> TaskNode {
        TaskNode {
            rank,
            phase,
            kind: TaskKind::Compute,
            dur,
            transfer: 0.0,
            prev,
            matched_send: None,
        }
    }

    /// rank 0: compute 3s, send (overhead .5, wire 2).
    /// rank 1: compute 1s, recv.
    fn two_rank_graph() -> TaskGraph {
        TaskGraph {
            nodes: vec![
                compute(0, 1, 3.0, None),
                TaskNode {
                    rank: 0,
                    phase: 1,
                    kind: TaskKind::Send {
                        dst: 1,
                        tag: 7,
                        bytes: 8,
                    },
                    dur: 0.5,
                    transfer: 0.0,
                    prev: Some(0),
                    matched_send: None,
                },
                compute(1, 2, 1.0, None),
                TaskNode {
                    rank: 1,
                    phase: 2,
                    kind: TaskKind::Recv { src: 0, tag: 7 },
                    dur: 0.0,
                    transfer: 2.0,
                    prev: Some(2),
                    matched_send: Some(1),
                },
            ],
            meets: vec![],
            n_ranks: 2,
            phase_names: vec!["(untracked)".into(), "a".into(), "b".into()],
        }
    }

    #[test]
    fn forward_pass_matches_hand_schedule() {
        let g = two_rank_graph();
        let s = g.schedule(&Rescale::none()).unwrap();
        // Send starts at 3, arrival = 3 + 2 = 5; recv waits 1 -> 5.
        assert_eq!(s.end[0], 3.0);
        assert_eq!(s.end[1], 3.5);
        assert_eq!(s.end[2], 1.0);
        assert_eq!(s.end[3], 5.0);
        assert_eq!(s.makespan, 5.0);
        assert_eq!(s.sink, Some(3));
    }

    #[test]
    fn critical_path_tiles_makespan_and_blames_sender() {
        let g = two_rank_graph();
        let s = g.schedule(&Rescale::none()).unwrap();
        let path = g.critical_path(&s);
        // compute(0..3) on rank 0, transfer(3..5) blamed on rank 0.
        assert_eq!(path.segments.len(), 2);
        assert_eq!(path.segments[0].label, "compute");
        assert_eq!(path.segments[0].rank, 0);
        assert_eq!(path.segments[1].label, "transfer");
        assert_eq!(path.segments[1].t0, 3.0);
        assert_eq!(path.segments[1].t1, 5.0);
        assert!((path.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(path.compute_s(), 3.0);
        assert_eq!(path.comm_s(), 2.0);
    }

    #[test]
    fn what_if_rescale_moves_the_makespan() {
        let g = two_rank_graph();
        // Halve phase-1 compute: send starts at 1.5, arrival 3.5.
        let r = Rescale {
            compute_by_phase: vec![1.0, 0.5],
            transfer_by_tag: vec![],
        };
        assert_eq!(g.what_if_makespan(&r).unwrap(), 3.5);
        // Halve the wire time instead: arrival 3 + 1 = 4.
        let r = Rescale {
            compute_by_phase: vec![],
            transfer_by_tag: vec![(7, 7, 0.5)],
        };
        assert_eq!(g.what_if_makespan(&r).unwrap(), 4.0);
        // Speeding up the *receiver's* compute changes nothing.
        let r = Rescale {
            compute_by_phase: vec![1.0, 1.0, 0.01],
            transfer_by_tag: vec![],
        };
        assert_eq!(g.what_if_makespan(&r).unwrap(), 5.0);
    }

    #[test]
    fn slack_is_zero_on_path_and_positive_off_it() {
        let g = two_rank_graph();
        let s = g.schedule(&Rescale::none()).unwrap();
        let slack = g.slack(&s);
        assert_eq!(slack[0], 0.0); // rank-0 compute: on path
        assert_eq!(slack[3], 0.0); // the recv: the sink
                                   // Rank-1 compute may slip until the arrival at t=5: 4s of slack.
        assert_eq!(slack[2], 4.0);
        // The send's *start* launches the binding transfer, so it is
        // pinned too: zero slack.
        assert_eq!(slack[1], 0.0);
    }

    #[test]
    fn collective_meet_charges_last_arrival_plus_cost() {
        // Two ranks compute 1s and 4s, then allreduce costing 0.25.
        let mut g = TaskGraph {
            nodes: vec![compute(0, 0, 1.0, None), compute(1, 0, 4.0, None)],
            meets: vec![Meet {
                members: vec![2, 3],
                cost: 0.25,
                label: "allreduce",
            }],
            n_ranks: 2,
            phase_names: vec!["(untracked)".into()],
        };
        g.nodes.push(TaskNode {
            rank: 0,
            phase: 0,
            kind: TaskKind::Collective { meet: 0 },
            dur: 0.0,
            transfer: 0.0,
            prev: Some(0),
            matched_send: None,
        });
        g.nodes.push(TaskNode {
            rank: 1,
            phase: 0,
            kind: TaskKind::Collective { meet: 0 },
            dur: 0.0,
            transfer: 0.0,
            prev: Some(1),
            matched_send: None,
        });
        let s = g.schedule(&Rescale::none()).unwrap();
        assert_eq!(s.end[2], 4.25);
        assert_eq!(s.end[3], 4.25);
        let path = g.critical_path(&s);
        // compute on rank 1 (0..4), collective (4..4.25).
        assert_eq!(path.segments.len(), 2);
        assert_eq!(path.segments[0].rank, 1);
        assert_eq!(path.segments[1].label, "allreduce");
        let slack = g.slack(&s);
        assert_eq!(slack[1], 0.0);
        assert_eq!(slack[0], 3.0); // rank 0 may arrive 3s later
                                   // Attribution: rank 0 waited 3s, both paid the 0.25 cost.
        let att = g.attribution(&s);
        assert_eq!(att.wait[0], 3.0);
        assert_eq!(att.comm[0], 0.5);
        assert_eq!(att.compute[0], 5.0);
    }

    #[test]
    fn unmatched_recv_is_an_error_not_a_hang() {
        let mut g = two_rank_graph();
        g.nodes[3].matched_send = None;
        // With no matched send the recv has one dependency fewer and
        // schedules immediately — builders must match first. Force the
        // cycle case instead: make the recv depend on itself.
        g.nodes[3].matched_send = Some(3);
        assert!(g.schedule(&Rescale::none()).is_err());
    }

    #[test]
    fn blend_factor_endpoints() {
        assert_eq!(blend_factor(0.0, 2.0), 1.0);
        assert_eq!(blend_factor(1.0, 2.0), 0.5);
        assert!((blend_factor(0.5, 2.0) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn path_report_orders_spans_longest_first() {
        let g = two_rank_graph();
        let s = g.schedule(&Rescale::none()).unwrap();
        let path = g.critical_path(&s);
        let rep = path_report(&g, &path, 10);
        assert_eq!(rep.top_spans[0].label, "compute");
        assert_eq!(rep.top_spans[0].dur, 3.0);
        assert!((rep.coverage - 1.0).abs() < 1e-12);
        let json = rep.to_json().write_pretty();
        assert!(json.contains("\"by_phase\""));
        // Round-trips through the reader.
        crate::Json::parse(&json).unwrap();
    }
}
