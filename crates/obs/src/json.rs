//! A tiny, deterministic JSON value type with writer and parser.
//!
//! The vendored `serde` is an offline no-op stub, so real serialization
//! in this workspace goes through this module. Two properties matter
//! more than speed here:
//!
//! * **Deterministic output** — objects are ordered `Vec`s (insertion
//!   order, which callers keep stable) and numbers format identically
//!   for identical bits, so equal values produce byte-equal text.
//! * **Round-tripping** — `parse(write(v)) == v` for every value this
//!   workspace emits (finite numbers only; JSON has no NaN/Inf, they
//!   are written as `null`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys not deduplicated.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned integer value, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serialize with two-space indentation (stable, human-diffable).
    pub fn write_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize compact JSON into an [`std::io::Write`] sink.
    pub fn write_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(self.write().as_bytes())
    }

    /// Serialize pretty JSON into an [`std::io::Write`] sink.
    pub fn write_pretty_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(self.write_pretty().as_bytes())
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_escaped_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped_str(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped_str(k, out);
                    out.push_str(": ");
                    v.write_pretty_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing characters"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Integral finite values print as integers, everything else through
/// Rust's shortest-roundtrip float formatter; both are deterministic
/// functions of the bits.
fn write_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x:?}");
    }
}

/// Append `s` to `out` as a quoted JSON string literal.
///
/// This is the single escaping routine every exporter in the crate goes
/// through (the [`Json`] writer and the Chrome trace exporter), so a
/// given name renders identically no matter which artifact it lands in.
/// Non-ASCII characters pass through verbatim (JSON is UTF-8); only the
/// characters JSON *requires* escaped — the quote, the backslash and
/// control characters — are rewritten.
pub fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// [`write_escaped_str`] into a fresh `String`.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped_str(s, &mut out);
    out
}

/// Parse/convert error with byte offset (offset 0 for conversion errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl JsonError {
    fn at(pos: usize, msg: &str) -> Self {
        JsonError {
            pos,
            msg: msg.to_string(),
        }
    }

    /// A conversion (not parse) error.
    pub fn convert(msg: impl Into<String>) -> Self {
        JsonError {
            pos: 0,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                &format!("expected '{}'", b as char),
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::at(self.pos, &format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::at(start, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::at(start, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at(start, "bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(start, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::at(self.pos, "invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at(start, "bad number"))
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types reconstructible from a [`Json`] value.
pub trait FromJson: Sized {
    /// Convert from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::convert("expected number"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
            .ok_or_else(|| JsonError::convert("expected unsigned integer"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(u64::from_json(v)? as usize)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::convert("expected bool")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::convert("expected string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::convert("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Fetch a required object field and convert it.
pub fn field<T: FromJson>(v: &Json, key: &str) -> Result<T, JsonError> {
    let f = v
        .get(key)
        .ok_or_else(|| JsonError::convert(format!("missing field '{key}'")))?;
    T::from_json(f).map_err(|e| JsonError::convert(format!("field '{key}': {}", e.msg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_deterministic() {
        let v = Json::obj(vec![
            ("a", Json::Num(1.0)),
            ("b", Json::Num(0.1)),
            ("c", Json::Str("x\"y".into())),
            ("d", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.write(), r#"{"a":1,"b":0.1,"c":"x\"y","d":[true,null]}"#);
        assert_eq!(v.write(), v.clone().write());
    }

    #[test]
    fn round_trips() {
        let v = Json::obj(vec![
            ("pi", Json::Num(std::f64::consts::PI)),
            ("n", Json::Num(-42.0)),
            ("big", Json::Num(1.5e300)),
            ("s", Json::Str("line\nbreak\ttab \u{1f600}".into())),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![("k", Json::Num(7.0))])]),
            ),
        ]);
        let parsed = Json::parse(&v.write()).unwrap();
        assert_eq!(parsed, v);
        let parsed_pretty = Json::parse(&v.write_pretty()).unwrap();
        assert_eq!(parsed_pretty, v);
    }

    #[test]
    fn parses_standard_text() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5e1 , "x" ] , "b" : { } } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(25.0));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape_str("a\"b"), r#""a\"b""#);
        assert_eq!(escape_str("back\\slash"), r#""back\\slash""#);
        assert_eq!(escape_str("nl\ncr\rtab\t"), r#""nl\ncr\rtab\t""#);
        // Other control characters become \u escapes.
        assert_eq!(escape_str("\u{1}\u{1f}"), r#""\u0001\u001f""#);
        // NUL included.
        assert_eq!(escape_str("\0"), r#""\u0000""#);
    }

    #[test]
    fn escape_passes_non_ascii_through() {
        assert_eq!(escape_str("café"), "\"café\"");
        assert_eq!(escape_str("Δt µs"), "\"Δt µs\"");
        assert_eq!(escape_str("😀"), "\"😀\"");
        // DEL (0x7f) is not a JSON control character; pass through.
        assert_eq!(escape_str("\u{7f}"), "\"\u{7f}\"");
    }

    #[test]
    fn escaped_strings_round_trip_through_parser() {
        for s in ["a\"b\\c", "\u{1}\t\n", "café 😀", "rank 3;level 0"] {
            let v = Json::Str(s.to_string());
            assert_eq!(Json::parse(&v.write()).unwrap(), v, "round trip of {s:?}");
        }
    }

    #[test]
    fn integral_floats_print_as_integers() {
        let mut s = String::new();
        write_num(3.0, &mut s);
        assert_eq!(s, "3");
        s.clear();
        write_num(-0.5, &mut s);
        assert_eq!(s, "-0.5");
        s.clear();
        write_num(f64::NAN, &mut s);
        assert_eq!(s, "null");
    }
}
