//! Hand-rolled, std-only HTTP endpoint for live node metrics.
//!
//! [`MetricsServer`] binds a `TcpListener`, serves `GET` requests on a
//! background thread, and answers each from a caller-supplied handler
//! mapping a request path to a body. It exists so every cluster node
//! can expose `/metrics` and `/healthz` without pulling a web framework
//! into the workspace (the vendored `serde` precedent: dependencies are
//! stubs here, real work is std-only) — and it is deliberately minimal:
//! HTTP/1.1, `Connection: close`, one request per connection, no
//! keep-alive, no TLS. `curl`, load balancer probes and the chaos
//! harness's in-run probe are the target clients, not browsers.
//!
//! The serving thread blocks in `accept`; [`MetricsServer::stop`] (also
//! run on drop) sets a flag and dials the listener once to unblock it,
//! so shutdown is prompt without non-blocking accept loops or timeouts.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the handler returns for a served path.
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// The `404 Not Found` response served for unhandled paths.
    pub fn not_found() -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
        }
    }
}

/// A tiny background HTTP server (see module docs).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `bind_addr` (e.g. `"127.0.0.1:0"` for an ephemeral port)
    /// and serve `handler(path)` on a background thread. Returning
    /// `None` from the handler yields a 404.
    pub fn serve(
        bind_addr: &str,
        handler: impl Fn(&str) -> Option<Response> + Send + 'static,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cpx-metrics-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Serve inline: requests are single tiny GETs and the
                    // handler is cheap, so one connection at a time is fine.
                    let _ = serve_one(stream, &handler);
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serving thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request from `stream`, answer it, close.
fn serve_one(
    mut stream: TcpStream,
    handler: &(impl Fn(&str) -> Option<Response> + Send + 'static),
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(2000)))?;
    stream.set_write_timeout(Some(Duration::from_millis(2000)))?;
    let path = match read_request_path(&mut stream)? {
        Some(p) => p,
        None => return Ok(()), // the shutdown poke, or garbage
    };
    let resp = handler(&path).unwrap_or_else(Response::not_found);
    let reason = match resp.status {
        200 => "OK",
        404 => "Not Found",
        _ => "Status",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// Parse the path out of the request line (`GET /metrics HTTP/1.1`).
/// Reads until the header terminator or 8 KiB, whichever comes first.
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal client: one GET, full response text back.
    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_handler_responses_and_404s() {
        let server = MetricsServer::serve("127.0.0.1:0", |path| match path {
            "/healthz" => Some(Response::text("ok\n")),
            "/metrics" => Some(Response::json("{\"live_peers\":3}".to_string())),
            _ => None,
        })
        .expect("bind");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("Content-Type: application/json"),
            "{metrics}"
        );
        assert!(metrics.ends_with("{\"live_peers\":3}"), "{metrics}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.stop();
    }

    #[test]
    fn stop_terminates_promptly_and_twice_is_safe() {
        let server = MetricsServer::serve("127.0.0.1:0", |_| Some(Response::text("x"))).unwrap();
        let addr = server.local_addr();
        drop(server); // drop path
                      // The port is released: a rebind eventually succeeds.
        let rebound = MetricsServer::serve(&addr.to_string(), |_| None);
        if let Ok(s) = rebound {
            s.stop();
        }
    }

    #[test]
    fn garbage_requests_do_not_kill_the_server() {
        let server =
            MetricsServer::serve("127.0.0.1:0", |_| Some(Response::text("alive"))).unwrap();
        let addr = server.local_addr();
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"\x00\x01\x02 not http at all\r\n\r\n")
                .unwrap();
        }
        // A real request still gets served afterwards.
        let ok = get(addr, "/");
        assert!(ok.ends_with("alive"), "{ok}");
        server.stop();
    }
}
