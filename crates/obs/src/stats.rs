//! Shared nearest-rank percentile arithmetic.
//!
//! Three exporters used to carry private copies of the same formula
//! (`metrics::phase_stats`, `netstats::RttHistogram::quantile_us`, and
//! `cpx_par::PoolTelemetry::worker_busy_percentile`); they all route
//! through here now, so "p99" means one thing everywhere: the
//! nearest-rank statistic `x[round(q/100 · (n-1))]` over ascending
//! samples. Nearest-rank (as opposed to interpolating) percentiles
//! always return an observed sample, which keeps exported artifacts
//! byte-stable — there is no interpolation arithmetic to drift.

/// Index of the nearest-rank `q`-th percentile among `count` ascending
/// samples; `q` in percent. Returns 0 for an empty population (callers
/// decide what an empty population's percentile means).
#[inline]
pub fn nearest_rank_index(count: usize, q: f64) -> usize {
    if count == 0 {
        return 0;
    }
    let idx = (q / 100.0 * (count - 1) as f64).round() as usize;
    idx.min(count - 1)
}

/// Nearest-rank `q`-th percentile of an ascending-sorted slice; `q` in
/// percent. Returns 0.0 for an empty slice.
#[inline]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[nearest_rank_index(sorted.len(), q)]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Edge-case suite migrated from the three former private copies.

    #[test]
    fn empty_population_is_zero() {
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
        assert_eq!(nearest_rank_index(0, 99.0), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&[7.25], q), 7.25);
        }
    }

    #[test]
    fn all_equal_samples_collapse_every_quantile() {
        let xs = [3.0; 11];
        for q in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&xs, q), 3.0);
        }
    }

    #[test]
    fn p99_on_two_samples_is_the_larger() {
        assert_eq!(percentile_sorted(&[1.0, 9.0], 99.0), 9.0);
        // ...and p50 rounds to the larger too (round(0.5) == 1).
        assert_eq!(nearest_rank_index(2, 99.0), 1);
    }

    #[test]
    fn quartiles_of_a_ramp() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&xs, 0.0), 0.0);
        assert_eq!(percentile_sorted(&xs, 50.0), 50.0);
        assert_eq!(percentile_sorted(&xs, 95.0), 95.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 100.0);
    }
}
