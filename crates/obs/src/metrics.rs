//! JSON metrics snapshot exporter.
//!
//! Aggregates a [`TraceSession`] into a machine-readable summary: run
//! geometry, summed event counters (plus any caller-supplied extras,
//! e.g. fault/SDC/ABFT figures from a `TimeReport` or `CoupledRun`),
//! and a per-span-name histogram of **per-rank total times** with
//! p50/p95/p99 quantiles. All maps are ordered, so the snapshot is a
//! deterministic function of the session.

use std::collections::BTreeMap;

use crate::stats::percentile_sorted as percentile;
use crate::{Json, TraceSession};

/// Summary statistics for one span name across ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Number of spans with this name across all ranks.
    pub count: u64,
    /// Number of ranks on which the name appears.
    pub ranks: u64,
    /// Sum of durations across all ranks.
    pub total: f64,
    /// Statistics over the per-rank summed durations:
    pub min: f64,
    /// mean of per-rank totals.
    pub mean: f64,
    /// median of per-rank totals.
    pub p50: f64,
    /// 95th percentile of per-rank totals.
    pub p95: f64,
    /// 99th percentile of per-rank totals.
    pub p99: f64,
    /// max of per-rank totals.
    pub max: f64,
}

/// Compute per-span-name statistics over per-rank phase times.
pub fn phase_stats(session: &TraceSession) -> BTreeMap<String, PhaseStats> {
    // name -> (per-rank summed duration, span count).
    let mut per_rank: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for lane in &session.lanes {
        let mut here: BTreeMap<&str, f64> = BTreeMap::new();
        for span in &lane.spans {
            *here.entry(span.name.as_ref()).or_insert(0.0) += span.duration();
            *counts.entry(span.name.to_string()).or_insert(0) += 1;
        }
        for (name, total) in here {
            per_rank.entry(name.to_string()).or_default().push(total);
        }
    }
    per_rank
        .into_iter()
        .map(|(name, mut samples)| {
            samples.sort_by(f64::total_cmp);
            let n = samples.len();
            let total: f64 = samples.iter().sum();
            let stats = PhaseStats {
                count: counts[&name],
                ranks: n as u64,
                total,
                min: samples[0],
                mean: total / n as f64,
                p50: percentile(&samples, 50.0),
                p95: percentile(&samples, 95.0),
                p99: percentile(&samples, 99.0),
                max: samples[n - 1],
            };
            (name, stats)
        })
        .collect()
}

/// Render the metrics snapshot as a JSON value.
///
/// `extra` lets callers fold in counters the trace itself does not
/// carry (fault/SDC/ABFT figures from resilience layers); they appear
/// under `"counters"` next to the trace-derived ones.
pub fn metrics_json(session: &TraceSession, extra: &[(&str, f64)]) -> Json {
    let mut counters: BTreeMap<String, f64> = BTreeMap::new();
    for lane in &session.lanes {
        for (name, value) in &lane.counters {
            *counters.entry(name.clone()).or_insert(0.0) += *value as f64;
        }
    }
    for (name, value) in extra {
        *counters.entry(name.to_string()).or_insert(0.0) += value;
    }
    let phases = phase_stats(session);

    Json::obj(vec![
        ("ranks", Json::Num(session.lanes.len() as f64)),
        ("makespan", Json::Num(session.makespan())),
        ("spans", Json::Num(session.total_spans() as f64)),
        (
            "counters",
            Json::Obj(
                counters
                    .into_iter()
                    .map(|(k, v)| (k, Json::Num(v)))
                    .collect(),
            ),
        ),
        (
            "phases",
            Json::Obj(
                phases
                    .into_iter()
                    .map(|(name, s)| {
                        (
                            name,
                            Json::obj(vec![
                                ("count", Json::Num(s.count as f64)),
                                ("ranks", Json::Num(s.ranks as f64)),
                                ("total", Json::Num(s.total)),
                                ("min", Json::Num(s.min)),
                                ("mean", Json::Num(s.mean)),
                                ("p50", Json::Num(s.p50)),
                                ("p95", Json::Num(s.p95)),
                                ("p99", Json::Num(s.p99)),
                                ("max", Json::Num(s.max)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RankRecorder, TraceSession};

    fn session(per_rank_step: &[f64]) -> TraceSession {
        let lanes = per_rank_step
            .iter()
            .enumerate()
            .map(|(rank, &dur)| {
                let mut rec = RankRecorder::on();
                rec.begin("step", 0.0);
                rec.end(dur);
                rec.count("messages", rank as u64 + 1);
                rec.into_timeline(rank, dur)
            })
            .collect();
        TraceSession::new(lanes)
    }

    #[test]
    fn percentiles_over_per_rank_totals() {
        let s = session(&[1.0, 2.0, 3.0, 4.0]);
        let stats = &phase_stats(&s)["step"];
        assert_eq!(stats.ranks, 4);
        assert_eq!(stats.count, 4);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 4.0);
        assert_eq!(stats.p50, 3.0); // nearest rank of 50% over 4 samples
        assert_eq!(stats.p95, 4.0);
    }

    #[test]
    fn empty_session_yields_no_phases() {
        let s = TraceSession::new(vec![]);
        assert!(phase_stats(&s).is_empty());
        let v = metrics_json(&s, &[]);
        assert_eq!(v.get("ranks").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("spans").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("makespan").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("phases"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn single_span_percentiles_all_equal_that_span() {
        let s = session(&[2.5]);
        let stats = &phase_stats(&s)["step"];
        assert_eq!(stats.ranks, 1);
        assert_eq!(stats.count, 1);
        for q in [stats.min, stats.p50, stats.p95, stats.p99, stats.max] {
            assert_eq!(q, 2.5);
        }
        assert_eq!(stats.mean, 2.5);
        assert_eq!(stats.total, 2.5);
    }

    #[test]
    fn all_equal_durations_collapse_every_quantile() {
        let s = session(&[1.5; 8]);
        let stats = &phase_stats(&s)["step"];
        assert_eq!(stats.ranks, 8);
        for q in [stats.min, stats.p50, stats.p95, stats.p99, stats.max] {
            assert_eq!(q, 1.5);
        }
        assert!((stats.total - 12.0).abs() < 1e-12);
    }

    #[test]
    fn p99_on_two_samples_is_the_larger() {
        let s = session(&[1.0, 9.0]);
        let stats = &phase_stats(&s)["step"];
        assert_eq!(stats.ranks, 2);
        // Nearest rank: 0.99 * (2-1) rounds to index 1.
        assert_eq!(stats.p99, 9.0);
        assert_eq!(stats.p95, 9.0);
        // 0.5 * (2-1) rounds half-up to index 1 as well.
        assert_eq!(stats.p50, 9.0);
        assert_eq!(stats.min, 1.0);
        assert!((stats.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_includes_extra_counters() {
        let s = session(&[1.0, 2.0]);
        let v = metrics_json(&s, &[("retries", 7.0)]);
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("retries").unwrap().as_f64(), Some(7.0));
        assert_eq!(counters.get("messages").unwrap().as_f64(), Some(3.0));
        // Deterministic output.
        assert_eq!(v.write(), metrics_json(&s, &[("retries", 7.0)]).write());
    }
}
