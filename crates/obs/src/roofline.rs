//! Roofline-style kernel summaries.
//!
//! The hot kernels report what they *did* — flops, bytes moved, stored
//! entries (or particles/droplets) touched — and the wall-clock layer
//! reports how long it *took*. [`KernelIntensity`] joins the two into
//! the numbers a roofline plot wants: arithmetic intensity (flops per
//! byte), achieved flop rate and achieved memory bandwidth. cfdSCOPE
//! popularised exactly this kind of inspectability for proxy apps; here
//! it feeds the `BENCH_kernels.json` / `BENCH_validation.json`
//! artifacts so prediction error can be traced back to whether a kernel
//! is compute- or bandwidth-bound.

use crate::Json;

/// Operation counts for one kernel invocation, as reported by the
/// kernel itself (not sampled): the ground truth the roofline summary
/// and the virtual work-model clocks share.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read from memory.
    pub bytes_read: f64,
    /// Bytes written to memory.
    pub bytes_written: f64,
    /// Stored entries touched: matrix nonzeros for sparse kernels,
    /// particles for the PIC push, droplets for the spray update.
    pub nnz: f64,
}

impl OpCounts {
    /// Total memory traffic.
    pub fn bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in flops per byte of traffic (0 when the
    /// kernel moved no bytes).
    pub fn intensity(&self) -> f64 {
        let bytes = self.bytes();
        if bytes > 0.0 {
            self.flops / bytes
        } else {
            0.0
        }
    }

    /// Counts scaled by `k` (e.g. per-iteration counts × iterations).
    pub fn scaled(&self, k: f64) -> OpCounts {
        OpCounts {
            flops: self.flops * k,
            bytes_read: self.bytes_read * k,
            bytes_written: self.bytes_written * k,
            nnz: self.nnz * k,
        }
    }
}

/// A kernel's operation counts joined with a measured wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelIntensity {
    /// Kernel name (e.g. `"spmv"`).
    pub name: String,
    /// What one timed invocation did.
    pub ops: OpCounts,
    /// Measured wall seconds of that invocation.
    pub seconds: f64,
}

impl KernelIntensity {
    /// Join counts and a measured time. `seconds` must be positive.
    pub fn new(name: &str, ops: OpCounts, seconds: f64) -> KernelIntensity {
        assert!(seconds > 0.0, "measured time must be positive");
        KernelIntensity {
            name: name.to_string(),
            ops,
            seconds,
        }
    }

    /// Arithmetic intensity (flops/byte).
    pub fn intensity(&self) -> f64 {
        self.ops.intensity()
    }

    /// Achieved flop rate in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.ops.flops / self.seconds / 1e9
    }

    /// Achieved memory bandwidth in GB/s.
    pub fn gbps(&self) -> f64 {
        self.ops.bytes() / self.seconds / 1e9
    }

    /// Stored entries processed per second (nnz/s, particles/s, ...).
    pub fn nnz_rate(&self) -> f64 {
        self.ops.nnz / self.seconds
    }

    /// Is the kernel bandwidth-bound on a machine with the given peak
    /// flop rate and bandwidth (i.e. left of the roofline ridge)?
    pub fn bandwidth_bound(&self, peak_flops: f64, peak_bytes_per_sec: f64) -> bool {
        self.intensity() < peak_flops / peak_bytes_per_sec
    }

    /// Roofline ceiling for this kernel's intensity on the given
    /// machine, in FLOP/s: `min(peak_flops, intensity × peak_bw)` — the
    /// best rate the roofline model permits the kernel.
    pub fn roofline_ceiling(&self, peak_flops: f64, peak_bytes_per_sec: f64) -> f64 {
        peak_flops.min(self.intensity() * peak_bytes_per_sec)
    }

    /// Achieved rate as a percentage of the roofline ceiling. For a
    /// zero-flop kernel (pure data movement, e.g. the hash/merge
    /// renumbering) the flop roofline is degenerate, so the fraction is
    /// taken against the bandwidth peak instead.
    pub fn percent_of_peak(&self, peak_flops: f64, peak_bytes_per_sec: f64) -> f64 {
        if self.ops.flops > 0.0 {
            let ceiling = self.roofline_ceiling(peak_flops, peak_bytes_per_sec);
            if ceiling > 0.0 {
                self.ops.flops / self.seconds / ceiling * 100.0
            } else {
                0.0
            }
        } else if peak_bytes_per_sec > 0.0 {
            self.ops.bytes() / self.seconds / peak_bytes_per_sec * 100.0
        } else {
            0.0
        }
    }

    /// [`to_json`](Self::to_json) extended with the roofline position
    /// on a named machine: the ceiling, the achieved %-of-peak and
    /// which side of the ridge the kernel sits on.
    pub fn to_json_on(&self, machine: &str, peak_flops: f64, peak_bytes_per_sec: f64) -> Json {
        let mut fields = match self.to_json() {
            Json::Obj(fields) => fields,
            _ => unreachable!("to_json always builds an object"),
        };
        fields.push(("machine".to_string(), Json::Str(machine.to_string())));
        fields.push((
            "roofline_ceiling_gflops".to_string(),
            Json::Num(self.roofline_ceiling(peak_flops, peak_bytes_per_sec) / 1e9),
        ));
        fields.push((
            "percent_of_peak".to_string(),
            Json::Num(self.percent_of_peak(peak_flops, peak_bytes_per_sec)),
        ));
        fields.push((
            "bandwidth_bound".to_string(),
            Json::Bool(self.bandwidth_bound(peak_flops, peak_bytes_per_sec)),
        ));
        Json::Obj(fields)
    }

    /// Render as a JSON object for the benchmark artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("flops", Json::Num(self.ops.flops)),
            ("bytes_read", Json::Num(self.ops.bytes_read)),
            ("bytes_written", Json::Num(self.ops.bytes_written)),
            ("nnz", Json::Num(self.ops.nnz)),
            ("seconds", Json::Num(self.seconds)),
            ("intensity_flops_per_byte", Json::Num(self.intensity())),
            ("achieved_gflops", Json::Num(self.gflops())),
            ("achieved_gbps", Json::Num(self.gbps())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spmv_like() -> KernelIntensity {
        // 2 flops and 24 bytes read per nonzero: intensity ≈ 1/13.
        KernelIntensity::new(
            "spmv",
            OpCounts {
                flops: 2e6,
                bytes_read: 24e6,
                bytes_written: 2e6,
                nnz: 1e6,
            },
            1e-3,
        )
    }

    #[test]
    fn rates_and_intensity() {
        let k = spmv_like();
        assert!((k.intensity() - 2.0 / 26.0).abs() < 1e-12);
        assert!((k.gflops() - 2.0).abs() < 1e-12);
        assert!((k.gbps() - 26.0).abs() < 1e-12);
        assert!((k.nnz_rate() - 1e9).abs() < 1.0);
    }

    #[test]
    fn spmv_is_bandwidth_bound_on_a_balanced_machine() {
        let k = spmv_like();
        // Ridge at 2.2e9 / 1.56e9 ≈ 1.4 flops/byte; spmv sits far left.
        assert!(k.bandwidth_bound(2.2e9, 1.56e9));
        // A dense-like kernel with high intensity is not.
        let dense = KernelIntensity::new(
            "gemm",
            OpCounts {
                flops: 1e9,
                bytes_read: 1e7,
                bytes_written: 1e6,
                nnz: 0.0,
            },
            1.0,
        );
        assert!(!dense.bandwidth_bound(2.2e9, 1.56e9));
    }

    #[test]
    fn scaled_counts_scale_linearly() {
        let c = OpCounts {
            flops: 3.0,
            bytes_read: 5.0,
            bytes_written: 7.0,
            nnz: 2.0,
        };
        let s = c.scaled(10.0);
        assert_eq!(s.flops, 30.0);
        assert_eq!(s.bytes(), 120.0);
        assert_eq!(s.nnz, 20.0);
        assert!((s.intensity() - c.intensity()).abs() < 1e-15);
    }

    #[test]
    fn percent_of_peak_against_the_right_ceiling() {
        let k = spmv_like();
        // Bandwidth-bound: ceiling = intensity × peak_bw < peak_flops.
        let ceiling = k.roofline_ceiling(2.2e9, 1.56e9);
        assert!((ceiling - (2.0 / 26.0) * 1.56e9).abs() < 1.0);
        let pct = k.percent_of_peak(2.2e9, 1.56e9);
        assert!((pct - 2e9 / ceiling * 100.0).abs() < 1e-9);
        // A zero-flop kernel is scored against the bandwidth peak.
        let mover = KernelIntensity::new(
            "renumber",
            OpCounts {
                flops: 0.0,
                bytes_read: 1.56e6,
                bytes_written: 0.0,
                nnz: 1e6,
            },
            1e-3,
        );
        assert!((mover.percent_of_peak(2.2e9, 1.56e9) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn json_on_machine_extends_the_plain_shape() {
        let v = spmv_like().to_json_on("ARCHER2", 2.2e9, 1.56e9);
        assert_eq!(v.get("name").unwrap().as_str(), Some("spmv"));
        assert!(v.get("percent_of_peak").is_some());
        assert!(v.get("roofline_ceiling_gflops").is_some());
        assert_eq!(v.get("machine").unwrap().as_str(), Some("ARCHER2"));
    }

    #[test]
    fn json_shape_is_stable() {
        let v = spmv_like().to_json();
        assert_eq!(v.get("name").unwrap().as_str(), Some("spmv"));
        assert!(v.get("achieved_gflops").is_some());
        assert_eq!(v.write(), spmv_like().to_json().write());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_time() {
        KernelIntensity::new("x", OpCounts::default(), 0.0);
    }
}
