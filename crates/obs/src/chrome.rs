//! Chrome trace-event JSON exporter.
//!
//! Emits the [trace-event format] consumed by Perfetto and
//! `chrome://tracing`: one process, one thread (lane) per rank, a
//! `thread_name` metadata record per lane, then a complete-duration
//! (`"ph":"X"`) event per span. Timestamps are virtual microseconds
//! formatted with fixed precision, so identical virtual times produce
//! identical bytes — the export is a deterministic function of the
//! trace session.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::escape_str;
use crate::TraceSession;

/// Render a session as Chrome trace-event JSON (`{"traceEvents":[...]}`).
pub fn chrome_trace_json(session: &TraceSession) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    push_session_events(&mut out, &mut first, session, 1, None);
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render a *dual-lane* Chrome trace: the virtual-time session as
/// process 1 and the wall-clock session for the same run as process 2,
/// so the two clocks can be inspected side by side in Perfetto. Each
/// process carries a `process_name` metadata record (`virtual time` /
/// `wall clock`); lanes within a process are ranks as usual.
pub fn dual_chrome_trace_json(virtual_session: &TraceSession, wall: &TraceSession) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    push_session_events(
        &mut out,
        &mut first,
        virtual_session,
        1,
        Some("virtual time"),
    );
    push_session_events(&mut out, &mut first, wall, 2, Some("wall clock"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Emit one session's metadata, span and counter events under `pid`.
fn push_session_events(
    out: &mut String,
    first: &mut bool,
    session: &TraceSession,
    pid: u32,
    process_name: Option<&str>,
) {
    if let Some(pname) = process_name {
        push_event(
            out,
            first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                escape_str(pname)
            ),
        );
    }
    for lane in &session.lanes {
        push_event(
            out,
            first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"rank {}\"}}}}",
                lane.rank, lane.rank
            ),
        );
    }
    for lane in &session.lanes {
        let mut spans: Vec<_> = lane.spans.iter().collect();
        // Sort for a stable, readable lane: by start, outermost first.
        // Ties beyond the full key are byte-identical spans anyway.
        spans.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.depth.cmp(&b.depth))
                .then(b.end.total_cmp(&a.end))
                .then(a.name.cmp(&b.name))
        });
        for span in spans {
            let ev = format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{}}}",
                lane.rank,
                micros(span.start),
                micros(span.duration()),
                escape_str(&span.name)
            );
            push_event(out, first, &ev);
        }
        for (name, value) in &lane.counters {
            let ev = format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"name\":{},\
                 \"args\":{{\"value\":{}}}}}",
                lane.rank,
                micros(lane.finish),
                escape_str(name),
                value
            );
            push_event(out, first, &ev);
        }
    }
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(ev);
}

/// Virtual seconds → microsecond timestamp text with fixed precision.
fn micros(secs: f64) -> String {
    let mut s = format!("{:.3}", secs * 1e6);
    if s.ends_with(".000") {
        s.truncate(s.len() - 4);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RankRecorder, TraceSession};

    fn sample() -> TraceSession {
        let mut r0 = RankRecorder::on();
        r0.begin("step", 0.0);
        r0.begin("halo", 1e-6);
        r0.end(3e-6);
        r0.end(1e-5);
        r0.count("messages", 2);
        let mut r1 = RankRecorder::on();
        r1.begin("step", 0.0);
        r1.end(1.25e-5);
        TraceSession::new(vec![
            r0.into_timeline(0, 1e-5),
            r1.into_timeline(1, 1.25e-5),
        ])
    }

    #[test]
    fn export_is_valid_json_with_lanes() {
        let text = chrome_trace_json(&sample());
        let v = crate::Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 3 spans + 1 counter.
        assert_eq!(events.len(), 6);
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str().unwrap(), "M");
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert!(span.get("ts").is_some() && span.get("dur").is_some());
    }

    #[test]
    fn export_is_byte_deterministic() {
        assert_eq!(chrome_trace_json(&sample()), chrome_trace_json(&sample()));
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0.0), "0");
        assert_eq!(micros(1.0), "1000000");
        assert_eq!(micros(2.5e-6), "2.500");
    }

    #[test]
    fn dual_trace_separates_processes_and_names_them() {
        let virt = sample();
        let mut w = RankRecorder::on();
        w.begin("step", 0.0);
        w.end(2e-5);
        let wall = TraceSession::new(vec![w.into_timeline(0, 2e-5)]);
        let text = dual_chrome_trace_json(&virt, &wall);
        let v = crate::Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: Vec<f64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(crate::Json::as_f64))
            .collect();
        assert!(pids.contains(&1.0) && pids.contains(&2.0));
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(crate::Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args").unwrap().get("name").unwrap().as_str())
            .collect();
        assert_eq!(names, vec!["virtual time", "wall clock"]);
        // Byte-deterministic like the single-lane export.
        assert_eq!(text, dual_chrome_trace_json(&sample(), &wall));
    }
}
