//! Chrome trace-event JSON exporter.
//!
//! Emits the [trace-event format] consumed by Perfetto and
//! `chrome://tracing`: one process, one thread (lane) per rank, a
//! `thread_name` metadata record per lane, then a complete-duration
//! (`"ph":"X"`) event per span. Timestamps are virtual microseconds
//! formatted with fixed precision, so identical virtual times produce
//! identical bytes — the export is a deterministic function of the
//! trace session.
//!
//! Sessions carrying [`RecoveryEvent`](crate::RecoveryEvent)s
//! additionally get a dedicated **recovery lane** per process (a
//! synthetic thread named `recovery`): every revoke, agreement round,
//! shrink commit and rollback becomes an instant (`"ph":"i"`) event
//! with its protocol details in `args`, so a chaos run's recovery
//! sequence is visually replayable next to the rank lanes.
//!
//! Exporters write into any [`std::io::Write`] sink
//! ([`chrome_trace_to`], [`dual_chrome_trace_to`]) so multi-megabyte
//! cluster traces stream straight to a file; the `*_json` variants are
//! thin build-a-`String` wrappers for existing callers.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io::{self, Write};

use crate::critical::{CriticalPath, SegClass, TaskGraph};
use crate::json::escape_str;
use crate::{RecoveryKind, TraceSession};

/// Synthetic `tid` of the per-process recovery lane — far above any
/// real rank id so it sorts last in the viewer.
pub const RECOVERY_LANE_TID: u32 = 1_000_000;

/// Render a session as Chrome trace-event JSON (`{"traceEvents":[...]}`).
pub fn chrome_trace_json(session: &TraceSession) -> String {
    to_string(|out| chrome_trace_to(out, session))
}

/// Stream a session as Chrome trace-event JSON into `out`.
pub fn chrome_trace_to<W: Write>(out: &mut W, session: &TraceSession) -> io::Result<()> {
    let mut first = true;
    out.write_all(b"{\"traceEvents\":[\n")?;
    push_session_events(out, &mut first, session, 1, None)?;
    out.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

/// Render a *dual-lane* Chrome trace: the virtual-time session as
/// process 1 and the wall-clock session for the same run as process 2,
/// so the two clocks can be inspected side by side in Perfetto. Each
/// process carries a `process_name` metadata record (`virtual time` /
/// `wall clock`); lanes within a process are ranks as usual.
pub fn dual_chrome_trace_json(virtual_session: &TraceSession, wall: &TraceSession) -> String {
    to_string(|out| dual_chrome_trace_to(out, virtual_session, wall))
}

/// Stream the dual-lane trace of [`dual_chrome_trace_json`] into `out`.
pub fn dual_chrome_trace_to<W: Write>(
    out: &mut W,
    virtual_session: &TraceSession,
    wall: &TraceSession,
) -> io::Result<()> {
    let mut first = true;
    out.write_all(b"{\"traceEvents\":[\n")?;
    push_session_events(out, &mut first, virtual_session, 1, Some("virtual time"))?;
    push_session_events(out, &mut first, wall, 2, Some("wall clock"))?;
    out.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

/// Run a sink-writer into a fresh `String` (infallible for `Vec<u8>`).
pub(crate) fn to_string(f: impl FnOnce(&mut Vec<u8>) -> io::Result<()>) -> String {
    let mut buf = Vec::new();
    f(&mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporters emit UTF-8")
}

/// Emit one session's metadata, span, counter and recovery events under
/// `pid`. Shared with the cluster merge exporter, which calls it once
/// per node process.
pub(crate) fn push_session_events<W: Write>(
    out: &mut W,
    first: &mut bool,
    session: &TraceSession,
    pid: u32,
    process_name: Option<&str>,
) -> io::Result<()> {
    if let Some(pname) = process_name {
        push_event(
            out,
            first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                escape_str(pname)
            ),
        )?;
    }
    for lane in &session.lanes {
        push_event(
            out,
            first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"rank {}\"}}}}",
                lane.rank, lane.rank
            ),
        )?;
    }
    if session.total_recovery_events() > 0 {
        push_event(
            out,
            first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{RECOVERY_LANE_TID},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":\"recovery\"}}}}"
            ),
        )?;
    }
    for lane in &session.lanes {
        let mut spans: Vec<_> = lane.spans.iter().collect();
        // Sort for a stable, readable lane: by start, outermost first.
        // Ties beyond the full key are byte-identical spans anyway.
        spans.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.depth.cmp(&b.depth))
                .then(b.end.total_cmp(&a.end))
                .then(a.name.cmp(&b.name))
        });
        for span in spans {
            let ev = format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{}}}",
                lane.rank,
                micros(span.start),
                micros(span.duration()),
                escape_str(&span.name)
            );
            push_event(out, first, &ev)?;
        }
        for (name, value) in &lane.counters {
            let ev = format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"name\":{},\
                 \"args\":{{\"value\":{}}}}}",
                lane.rank,
                micros(lane.finish),
                escape_str(name),
                value
            );
            push_event(out, first, &ev)?;
        }
    }
    // Recovery instants, merged across ranks into one lane, ordered by
    // time then observing rank (both deterministic under the virtual
    // clock).
    let mut recovery: Vec<_> = session
        .lanes
        .iter()
        .flat_map(|lane| lane.recovery.iter().map(move |ev| (lane.rank, ev)))
        .collect();
    recovery.sort_by(|a, b| a.1.t.total_cmp(&b.1.t).then(a.0.cmp(&b.0)));
    for (rank, ev) in recovery {
        let text = format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{RECOVERY_LANE_TID},\"ts\":{},\
             \"name\":{},\"s\":\"t\",\"args\":{{\"rank\":{rank},{}}}}}",
            micros(ev.t),
            escape_str(ev.kind.label()),
            recovery_args(&ev.kind)
        );
        push_event(out, first, &text)?;
    }
    Ok(())
}

/// Render a critical-path analysis as Chrome trace-event JSON: a
/// dedicated **critical path** lane (tid 0) holding every binding
/// segment back-to-back across `[0, makespan]`, plus one lane per rank
/// that appears on the path carrying just its blamed segments. Ranks
/// never on the path get no lane — for a thousand-rank coupled run the
/// export stays viewer-sized while still showing which ranks the run
/// actually waited on. Deterministic bytes, like every exporter here.
pub fn critical_chrome_trace_json(graph: &TaskGraph, path: &CriticalPath) -> String {
    to_string(|out| critical_chrome_trace_to(out, graph, path))
}

/// Stream the critical-path trace of [`critical_chrome_trace_json`].
pub fn critical_chrome_trace_to<W: Write>(
    out: &mut W,
    graph: &TaskGraph,
    path: &CriticalPath,
) -> io::Result<()> {
    let phase_name = |p: u16| -> String {
        graph
            .phase_names
            .get(p as usize)
            .cloned()
            .unwrap_or_else(|| format!("phase {p}"))
    };
    let mut ranks: Vec<usize> = path.segments.iter().map(|s| s.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();

    let mut first = true;
    out.write_all(b"{\"traceEvents\":[\n")?;
    push_event(
        out,
        &mut first,
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"critical path\"}}",
    )?;
    push_event(
        out,
        &mut first,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"critical path\"}}",
    )?;
    for &rank in &ranks {
        push_event(
            out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}",
                rank + 1
            ),
        )?;
    }
    for seg in &path.segments {
        let name = escape_str(&format!("{} · {}", seg.label, phase_name(seg.phase)));
        let class = match seg.class {
            SegClass::Compute => "compute",
            SegClass::Comm => "comm",
        };
        let detail = format!(
            "\"ts\":{},\"dur\":{},\"name\":{name},\
             \"args\":{{\"rank\":{},\"class\":\"{class}\"}}",
            micros(seg.t0),
            micros(seg.dur()),
            seg.rank
        );
        push_event(
            out,
            &mut first,
            &format!("{{\"ph\":\"X\",\"pid\":1,\"tid\":0,{detail}}}"),
        )?;
        push_event(
            out,
            &mut first,
            &format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},{detail}}}",
                seg.rank + 1
            ),
        )?;
    }
    out.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

/// Detail fields of one recovery instant. Group signatures are 64-bit
/// hashes, so they render as hex strings rather than JSON numbers
/// (which only hold 53 bits exactly).
fn recovery_args(kind: &RecoveryKind) -> String {
    match kind {
        RecoveryKind::Revoke { sig, peer } => {
            format!("\"sig\":\"{sig:016x}\",\"peer\":{peer}")
        }
        RecoveryKind::AgreeRound { sig, round, known } => {
            format!("\"sig\":\"{sig:016x}\",\"round\":{round},\"known\":{known}")
        }
        RecoveryKind::Shrink {
            sig,
            survivors,
            min_ckpt,
        } => format!("\"sig\":\"{sig:016x}\",\"survivors\":{survivors},\"min_ckpt\":{min_ckpt}"),
        RecoveryKind::Rollback { to_iter } => format!("\"to_iter\":{to_iter}"),
    }
}

fn push_event<W: Write>(out: &mut W, first: &mut bool, ev: &str) -> io::Result<()> {
    if !*first {
        out.write_all(b",\n")?;
    }
    *first = false;
    out.write_all(ev.as_bytes())
}

/// Virtual seconds → microsecond timestamp text with fixed precision.
fn micros(secs: f64) -> String {
    let mut s = format!("{:.3}", secs * 1e6);
    if s.ends_with(".000") {
        s.truncate(s.len() - 4);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RankRecorder, RecoveryKind, TraceSession};

    fn sample() -> TraceSession {
        let mut r0 = RankRecorder::on();
        r0.begin("step", 0.0);
        r0.begin("halo", 1e-6);
        r0.end(3e-6);
        r0.end(1e-5);
        r0.count("messages", 2);
        let mut r1 = RankRecorder::on();
        r1.begin("step", 0.0);
        r1.end(1.25e-5);
        TraceSession::new(vec![
            r0.into_timeline(0, 1e-5),
            r1.into_timeline(1, 1.25e-5),
        ])
    }

    #[test]
    fn export_is_valid_json_with_lanes() {
        let text = chrome_trace_json(&sample());
        let v = crate::Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 3 spans + 1 counter.
        assert_eq!(events.len(), 6);
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str().unwrap(), "M");
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert!(span.get("ts").is_some() && span.get("dur").is_some());
    }

    #[test]
    fn export_is_byte_deterministic() {
        assert_eq!(chrome_trace_json(&sample()), chrome_trace_json(&sample()));
    }

    #[test]
    fn sink_writer_matches_string_wrapper() {
        let mut buf = Vec::new();
        chrome_trace_to(&mut buf, &sample()).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            chrome_trace_json(&sample())
        );
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0.0), "0");
        assert_eq!(micros(1.0), "1000000");
        assert_eq!(micros(2.5e-6), "2.500");
    }

    #[test]
    fn recovery_events_form_a_dedicated_lane() {
        let mut r0 = RankRecorder::on();
        r0.begin("step", 0.0);
        r0.recovery_event(
            2e-6,
            RecoveryKind::Revoke {
                sig: 0xabcd,
                peer: 1,
            },
        );
        r0.recovery_event(
            4e-6,
            RecoveryKind::Shrink {
                sig: 0x1234,
                survivors: 3,
                min_ckpt: 10,
            },
        );
        r0.end(5e-6);
        let s = TraceSession::new(vec![r0.into_timeline(0, 5e-6)]);
        let text = chrome_trace_json(&s);
        let v = crate::Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let lane_meta = events
            .iter()
            .find(|e| {
                e.get("tid").and_then(crate::Json::as_u64) == Some(RECOVERY_LANE_TID as u64)
                    && e.get("ph").unwrap().as_str() == Some("M")
            })
            .expect("recovery lane metadata");
        assert_eq!(
            lane_meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("recovery")
        );
        let instants: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .collect();
        assert_eq!(instants.len(), 2);
        assert_eq!(instants[0].get("name").unwrap().as_str(), Some("revoke"));
        let args = instants[0].get("args").unwrap();
        assert_eq!(args.get("sig").unwrap().as_str(), Some("000000000000abcd"));
        assert_eq!(args.get("peer").unwrap().as_u64(), Some(1));
        assert_eq!(
            instants[1]
                .get("args")
                .unwrap()
                .get("min_ckpt")
                .unwrap()
                .as_u64(),
            Some(10)
        );
    }

    #[test]
    fn critical_lane_tiles_and_is_deterministic() {
        use crate::critical::{PathSegment, Rescale};
        // Two-rank graph: compute then a message bound; the path has a
        // compute and a transfer segment.
        let g = TaskGraph {
            nodes: vec![
                crate::TaskNode {
                    rank: 0,
                    phase: 1,
                    kind: crate::TaskKind::Compute,
                    dur: 3.0,
                    transfer: 0.0,
                    prev: None,
                    matched_send: None,
                },
                crate::TaskNode {
                    rank: 1,
                    phase: 1,
                    kind: crate::TaskKind::Recv { src: 0, tag: 5 },
                    dur: 0.0,
                    transfer: 2.0,
                    prev: None,
                    matched_send: Some(0),
                },
            ],
            meets: vec![],
            n_ranks: 2,
            phase_names: vec!["(untracked)".into(), "solve \"x\"".into()],
        };
        let sched = g.schedule(&Rescale::none()).unwrap();
        let path = g.critical_path(&sched);
        assert!(!path.segments.is_empty());
        let text = critical_chrome_trace_json(&g, &path);
        let v = crate::Json::parse(&text).expect("valid JSON despite quoted phase name");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Every path segment appears twice: critical lane + rank lane.
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2 * path.segments.len());
        let lane0: Vec<_> = xs
            .iter()
            .filter(|e| e.get("tid").unwrap().as_u64() == Some(0))
            .collect();
        assert_eq!(lane0.len(), path.segments.len());
        // The lane tiles [0, makespan]: durations sum to the makespan.
        let total: f64 = path.segments.iter().map(PathSegment::dur).sum();
        assert!((total - path.makespan).abs() < 1e-12 * path.makespan.max(1.0));
        assert_eq!(text, critical_chrome_trace_json(&g, &path));
    }

    #[test]
    fn dual_trace_separates_processes_and_names_them() {
        let virt = sample();
        let mut w = RankRecorder::on();
        w.begin("step", 0.0);
        w.end(2e-5);
        let wall = TraceSession::new(vec![w.into_timeline(0, 2e-5)]);
        let text = dual_chrome_trace_json(&virt, &wall);
        let v = crate::Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: Vec<f64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(crate::Json::as_f64))
            .collect();
        assert!(pids.contains(&1.0) && pids.contains(&2.0));
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(crate::Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args").unwrap().get("name").unwrap().as_str())
            .collect();
        assert_eq!(names, vec!["virtual time", "wall clock"]);
        // Byte-deterministic like the single-lane export.
        assert_eq!(text, dual_chrome_trace_json(&sample(), &wall));
    }
}
