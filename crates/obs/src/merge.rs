//! Cross-node trace aggregation.
//!
//! The multi-process backend runs one OS process per node; each child
//! seals its ranks' [`TraceSession`]s and transport counters into a
//! [`NodeObs`] bundle, serializes it with the **bit-exact** JSON codec
//! in this module, and ships it to the parent over the existing
//! file-based protocol. The parent deserializes every bundle and merges
//! them into
//!
//! * one cluster Chrome trace with a *process per node lane group*
//!   ([`cluster_chrome_trace_to`]) — virtual-time lanes plus, when
//!   recorded, wall-clock lanes and the recovery lane;
//! * a virtual-time-only variant ([`cluster_virtual_trace_to`]) that is
//!   **byte-deterministic**: virtual clocks are pure functions of seed
//!   and fault plan, so two runs of the same configuration must produce
//!   identical files (CI diffs them);
//! * an aggregated [`cluster_metrics_json`] snapshot with per-node and
//!   cluster-wide counters.
//!
//! ## Why a custom f64 codec
//!
//! Timeline timestamps must survive the child → parent hop *bit-exactly*
//! or the merged virtual trace stops being deterministic. JSON numbers
//! round-trip through decimal text, so instead every `f64` here is
//! encoded as the 16-hex-digit form of its IEEE-754 bits (the same trick
//! the multiproc reducer uses for rank summaries). Group signatures are
//! full 64-bit hashes and get the same hex treatment — a JSON number
//! only holds 53 bits exactly.
//!
//! ## Wall-clock alignment
//!
//! Wall lanes from different processes have unrelated epochs. Each
//! bundle carries `wall_epoch_unix` — the node's recorder epoch as
//! seconds since `UNIX_EPOCH` — and the parent shifts every wall lane
//! onto the earliest epoch across the cluster. On one machine (the
//! current multiproc harness) the system clock is shared, so this
//! aligns lanes to well under a millisecond. Across machines the same
//! shift works to clock-sync accuracy; refining it with the heartbeat
//! round-trip estimate is sketched in DESIGN.md.

use std::io::{self, Write};

use crate::chrome::{push_session_events, to_string};
use crate::json::{field, FromJson, Json, JsonError, ToJson};
use crate::metrics::metrics_json;
use crate::netstats::NetStatsSnapshot;
use crate::{RankTimeline, RecoveryEvent, RecoveryKind, Span, TraceSession};

/// Encode an `f64` as the hex form of its bits (bit-exact round trip).
fn bits_json(x: f64) -> Json {
    Json::Str(format!("{:016x}", x.to_bits()))
}

/// Encode a full-width `u64` (e.g. a group signature) as hex text.
fn hex_json(x: u64) -> Json {
    Json::Str(format!("{x:016x}"))
}

fn hex_from(v: &Json) -> Result<u64, JsonError> {
    let s = v
        .as_str()
        .ok_or_else(|| JsonError::convert("expected hex string"))?;
    u64::from_str_radix(s, 16).map_err(|_| JsonError::convert(format!("bad hex '{s}'")))
}

/// Fetch an object field encoded by [`bits_json`].
fn bits_field(v: &Json, key: &str) -> Result<f64, JsonError> {
    let f = v
        .get(key)
        .ok_or_else(|| JsonError::convert(format!("missing field '{key}'")))?;
    Ok(f64::from_bits(hex_from(f)?))
}

/// Fetch an object field encoded by [`hex_json`].
fn hex_field(v: &Json, key: &str) -> Result<u64, JsonError> {
    let f = v
        .get(key)
        .ok_or_else(|| JsonError::convert(format!("missing field '{key}'")))?;
    hex_from(f)
}

impl ToJson for Span {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.to_string())),
            ("path", Json::Str(self.path.clone())),
            ("start", bits_json(self.start)),
            ("end", bits_json(self.end)),
            ("depth", (self.depth as u64).to_json()),
            ("self_time", bits_json(self.self_time)),
        ])
    }
}

impl FromJson for Span {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Span {
            name: std::borrow::Cow::Owned(field::<String>(v, "name")?),
            path: field(v, "path")?,
            start: bits_field(v, "start")?,
            end: bits_field(v, "end")?,
            depth: field::<u64>(v, "depth")? as u16,
            self_time: bits_field(v, "self_time")?,
        })
    }
}

impl ToJson for RecoveryKind {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("kind", Json::Str(self.label().to_string()))];
        match self {
            RecoveryKind::Revoke { sig, peer } => {
                pairs.push(("sig", hex_json(*sig)));
                pairs.push(("peer", peer.to_json()));
            }
            RecoveryKind::AgreeRound { sig, round, known } => {
                pairs.push(("sig", hex_json(*sig)));
                pairs.push(("round", round.to_json()));
                pairs.push(("known", known.to_json()));
            }
            RecoveryKind::Shrink {
                sig,
                survivors,
                min_ckpt,
            } => {
                pairs.push(("sig", hex_json(*sig)));
                pairs.push(("survivors", survivors.to_json()));
                pairs.push(("min_ckpt", min_ckpt.to_json()));
            }
            RecoveryKind::Rollback { to_iter } => pairs.push(("to_iter", to_iter.to_json())),
        }
        Json::obj(pairs)
    }
}

impl FromJson for RecoveryKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match field::<String>(v, "kind")?.as_str() {
            "revoke" => Ok(RecoveryKind::Revoke {
                sig: hex_field(v, "sig")?,
                peer: field(v, "peer")?,
            }),
            "agree round" => Ok(RecoveryKind::AgreeRound {
                sig: hex_field(v, "sig")?,
                round: field(v, "round")?,
                known: field(v, "known")?,
            }),
            "shrink" => Ok(RecoveryKind::Shrink {
                sig: hex_field(v, "sig")?,
                survivors: field(v, "survivors")?,
                min_ckpt: field(v, "min_ckpt")?,
            }),
            "rollback" => Ok(RecoveryKind::Rollback {
                to_iter: field(v, "to_iter")?,
            }),
            other => Err(JsonError::convert(format!(
                "unknown recovery kind '{other}'"
            ))),
        }
    }
}

impl ToJson for RecoveryEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("t", bits_json(self.t)),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for RecoveryEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RecoveryEvent {
            t: bits_field(v, "t")?,
            kind: field(v, "kind")?,
        })
    }
}

impl ToJson for RankTimeline {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", self.rank.to_json()),
            ("spans", self.spans.to_json()),
            (
                "counters",
                // BTreeMap iterates key-sorted: deterministic output.
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            ("recovery", self.recovery.to_json()),
            ("finish", bits_json(self.finish)),
        ])
    }
}

impl FromJson for RankTimeline {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let counters = match v.get("counters") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), u64::from_json(val)?)))
                .collect::<Result<_, JsonError>>()?,
            _ => return Err(JsonError::convert("missing field 'counters'")),
        };
        Ok(RankTimeline {
            rank: field(v, "rank")?,
            spans: field(v, "spans")?,
            counters,
            recovery: field(v, "recovery")?,
            finish: bits_field(v, "finish")?,
        })
    }
}

impl ToJson for TraceSession {
    fn to_json(&self) -> Json {
        Json::obj(vec![("lanes", self.lanes.to_json())])
    }
}

impl FromJson for TraceSession {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TraceSession {
            lanes: field(v, "lanes")?,
        })
    }
}

/// Everything one node ships to the merge parent: its virtual-time
/// session, an optional wall-clock session with the epoch needed to
/// align it, and the transport counter snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeObs {
    /// Node id within the cluster.
    pub node: usize,
    /// Virtual-time trace of the node's local ranks.
    pub virt: TraceSession,
    /// Wall-clock trace, when wall recording was enabled.
    pub wall: Option<TraceSession>,
    /// The wall recorder's epoch as seconds since `UNIX_EPOCH`
    /// (bit-exact); `None` when `wall` is.
    pub wall_epoch_unix: Option<f64>,
    /// Transport counters at shutdown.
    pub net: NetStatsSnapshot,
}

impl ToJson for NodeObs {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("node", self.node.to_json()),
            ("virt", self.virt.to_json()),
            (
                "wall",
                match &self.wall {
                    Some(w) => w.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "wall_epoch_unix",
                match self.wall_epoch_unix {
                    Some(e) => bits_json(e),
                    None => Json::Null,
                },
            ),
            ("net", self.net.to_json()),
        ])
    }
}

impl FromJson for NodeObs {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let wall = match v.get("wall") {
            Some(Json::Null) | None => None,
            Some(w) => Some(TraceSession::from_json(w)?),
        };
        let wall_epoch_unix = match v.get("wall_epoch_unix") {
            Some(Json::Null) | None => None,
            Some(e) => Some(f64::from_bits(hex_from(e)?)),
        };
        Ok(NodeObs {
            node: field(v, "node")?,
            virt: field(v, "virt")?,
            wall,
            wall_epoch_unix,
            net: field(v, "net")?,
        })
    }
}

impl NodeObs {
    /// Serialize to the bundle text a child writes for the parent.
    pub fn encode(&self) -> String {
        self.to_json().write_pretty()
    }

    /// Parse a bundle written by [`NodeObs::encode`].
    pub fn decode(text: &str) -> Result<NodeObs, JsonError> {
        NodeObs::from_json(&Json::parse(text)?)
    }
}

/// Shift every timestamp in a session by `dt` seconds.
fn shift_session(s: &TraceSession, dt: f64) -> TraceSession {
    if dt == 0.0 {
        return s.clone();
    }
    TraceSession {
        lanes: s
            .lanes
            .iter()
            .map(|l| RankTimeline {
                rank: l.rank,
                spans: l
                    .spans
                    .iter()
                    .map(|sp| Span {
                        start: sp.start + dt,
                        end: sp.end + dt,
                        ..sp.clone()
                    })
                    .collect(),
                counters: l.counters.clone(),
                recovery: l
                    .recovery
                    .iter()
                    .map(|e| RecoveryEvent {
                        t: e.t + dt,
                        kind: e.kind.clone(),
                    })
                    .collect(),
                finish: l.finish + dt,
            })
            .collect(),
    }
}

fn sorted(nodes: &[NodeObs]) -> Vec<&NodeObs> {
    let mut v: Vec<&NodeObs> = nodes.iter().collect();
    v.sort_by_key(|n| n.node);
    v
}

/// Stream the full cluster Chrome trace: per node, a virtual-time
/// process (pid `2·node+1`) and — when wall lanes were recorded — a
/// wall-clock process (pid `2·node+2`) aligned onto the earliest wall
/// epoch in the cluster. Recovery lanes ride inside each process.
pub fn cluster_chrome_trace_to<W: Write>(out: &mut W, nodes: &[NodeObs]) -> io::Result<()> {
    let epoch0 = nodes
        .iter()
        .filter_map(|n| n.wall_epoch_unix)
        .fold(f64::INFINITY, f64::min);
    let mut first = true;
    out.write_all(b"{\"traceEvents\":[\n")?;
    for n in sorted(nodes) {
        let pid = (n.node as u32) * 2 + 1;
        let pname = format!("node {} \u{b7} virtual time", n.node);
        push_session_events(out, &mut first, &n.virt, pid, Some(&pname))?;
        if let Some(wall) = &n.wall {
            let dt = match n.wall_epoch_unix {
                Some(e) if e.is_finite() && epoch0.is_finite() => e - epoch0,
                _ => 0.0,
            };
            let shifted = shift_session(wall, dt);
            let pname = format!("node {} \u{b7} wall clock", n.node);
            push_session_events(out, &mut first, &shifted, pid + 1, Some(&pname))?;
        }
    }
    out.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

/// [`cluster_chrome_trace_to`] into a fresh `String`.
pub fn cluster_chrome_trace_json(nodes: &[NodeObs]) -> String {
    to_string(|out| cluster_chrome_trace_to(out, nodes))
}

/// Stream the virtual-time-only cluster trace: same per-node process
/// layout, wall lanes dropped. Virtual clocks are deterministic, so
/// this export is **byte-identical across runs** of one configuration —
/// CI's cross-run diff gate targets exactly this file.
pub fn cluster_virtual_trace_to<W: Write>(out: &mut W, nodes: &[NodeObs]) -> io::Result<()> {
    let mut first = true;
    out.write_all(b"{\"traceEvents\":[\n")?;
    for n in sorted(nodes) {
        let pid = (n.node as u32) * 2 + 1;
        let pname = format!("node {} \u{b7} virtual time", n.node);
        push_session_events(out, &mut first, &n.virt, pid, Some(&pname))?;
    }
    out.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

/// [`cluster_virtual_trace_to`] into a fresh `String`.
pub fn cluster_virtual_trace_json(nodes: &[NodeObs]) -> String {
    to_string(|out| cluster_virtual_trace_to(out, nodes))
}

/// Aggregate per-node metrics and transport counters into one snapshot:
/// `{"schema_version":1, "nodes":[...], "cluster":{...}, ...extra}`.
pub fn cluster_metrics_json(nodes: &[NodeObs], extra: &[(&str, Json)]) -> Json {
    let per_node: Vec<Json> = sorted(nodes)
        .into_iter()
        .map(|n| {
            Json::obj(vec![
                ("node", n.node.to_json()),
                ("virtual", metrics_json(&n.virt, &[])),
                (
                    "wall",
                    match &n.wall {
                        Some(w) => metrics_json(w, &[]),
                        None => Json::Null,
                    },
                ),
                ("net", n.net.to_json()),
            ])
        })
        .collect();
    let net_total = |f: fn(&crate::netstats::PeerSnapshot) -> u64| -> u64 {
        nodes.iter().map(|n| n.net.total(f)).sum()
    };
    let makespan = nodes.iter().fold(0.0_f64, |m, n| m.max(n.virt.makespan()));
    // Cluster-wide RTT roll-up: bucket-wise sum over every peer link of
    // every node. Raw bucket counts ride along (plus the bucket edges),
    // so offline tooling can re-aggregate or re-quantile without this
    // code.
    let mut rtt = crate::netstats::RttHistogram::default();
    for n in nodes {
        for p in &n.net.peers {
            rtt.absorb(&p.rtt);
        }
    }
    let mut pairs = vec![
        ("schema_version", Json::Num(1.0)),
        ("nodes", Json::Arr(per_node)),
        (
            "cluster",
            Json::obj(vec![
                ("nodes", nodes.len().to_json()),
                (
                    "ranks",
                    nodes
                        .iter()
                        .map(|n| n.virt.lanes.len())
                        .sum::<usize>()
                        .to_json(),
                ),
                (
                    "spans",
                    nodes
                        .iter()
                        .map(|n| n.virt.total_spans())
                        .sum::<usize>()
                        .to_json(),
                ),
                (
                    "recovery_events",
                    nodes
                        .iter()
                        .map(|n| n.virt.total_recovery_events())
                        .sum::<usize>()
                        .to_json(),
                ),
                ("makespan_virtual", Json::Num(makespan)),
                ("frames_sent", net_total(|p| p.frames_sent).to_json()),
                ("bytes_sent", net_total(|p| p.bytes_sent).to_json()),
                ("frames_recv", net_total(|p| p.frames_recv).to_json()),
                ("bytes_recv", net_total(|p| p.bytes_recv).to_json()),
                (
                    "heartbeats_sent",
                    net_total(|p| p.heartbeats_sent).to_json(),
                ),
                (
                    "heartbeats_missed",
                    net_total(|p| p.heartbeats_missed).to_json(),
                ),
                ("crc_failures", net_total(|p| p.crc_failures).to_json()),
                ("rtt_histogram", rtt.to_json()),
                (
                    "rtt_bucket_floors_us",
                    crate::netstats::RttHistogram::bucket_floors_us().to_json(),
                ),
                (
                    "dial_retries",
                    nodes
                        .iter()
                        .map(|n| n.net.dial_retries)
                        .sum::<u64>()
                        .to_json(),
                ),
                (
                    "dial_backoff_ms",
                    nodes
                        .iter()
                        .map(|n| n.net.dial_backoff_ms)
                        .sum::<u64>()
                        .to_json(),
                ),
            ]),
        ),
    ];
    pairs.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netstats::NetStats;
    use crate::{RankRecorder, RecoveryKind};

    fn timeline(rank: usize, base: f64) -> RankTimeline {
        let mut rec = RankRecorder::on();
        rec.begin("step", base);
        rec.begin("halo", base + 0.1);
        rec.end(base + 0.3);
        rec.end(base + 1.0);
        rec.count("messages", rank as u64 + 1);
        rec.recovery_event(
            base + 0.5,
            RecoveryKind::Revoke {
                sig: u64::MAX - 1,
                peer: rank,
            },
        );
        rec.into_timeline(rank, base + 1.0)
    }

    fn bundle(node: usize) -> NodeObs {
        let stats = NetStats::on(node, 2);
        stats.frame_sent(1 - node, 64);
        stats.rtt_sample(1 - node, 150);
        NodeObs {
            node,
            virt: TraceSession::new(vec![timeline(node * 2, 0.1), timeline(node * 2 + 1, 0.2)]),
            wall: Some(TraceSession::new(vec![timeline(node * 2, 0.0)])),
            // Deliberately not decimal-representable.
            wall_epoch_unix: Some(1.0e9 + 0.1 + node as f64 * 0.25),
            net: stats.snapshot(),
        }
    }

    #[test]
    fn session_round_trips_bit_exactly() {
        // Values with no short decimal form must survive untouched.
        let mut rec = RankRecorder::on();
        rec.begin("a", 0.1 + 0.2);
        rec.end(1.0 / 3.0 + 1.0);
        rec.recovery_event(
            2.0_f64.sqrt(),
            RecoveryKind::Shrink {
                sig: u64::MAX,
                survivors: 7,
                min_ckpt: 40,
            },
        );
        let s = TraceSession::new(vec![rec.into_timeline(3, 2.0_f64.sqrt() * 2.0)]);
        let back = TraceSession::from_json(&Json::parse(&s.to_json().write()).unwrap()).unwrap();
        assert_eq!(s, back);
        assert_eq!(
            s.lanes[0].spans[0].start.to_bits(),
            back.lanes[0].spans[0].start.to_bits()
        );
    }

    #[test]
    fn node_bundle_round_trips() {
        let b = bundle(1);
        let back = NodeObs::decode(&b.encode()).expect("decode");
        assert_eq!(b, back);
        assert_eq!(
            b.wall_epoch_unix.unwrap().to_bits(),
            back.wall_epoch_unix.unwrap().to_bits()
        );
    }

    #[test]
    fn recovery_kind_variants_round_trip() {
        for kind in [
            RecoveryKind::Revoke { sig: 1, peer: 2 },
            RecoveryKind::AgreeRound {
                sig: u64::MAX,
                round: 3,
                known: 4,
            },
            RecoveryKind::Shrink {
                sig: 5,
                survivors: 6,
                min_ckpt: 7,
            },
            RecoveryKind::Rollback { to_iter: 8 },
        ] {
            let back = RecoveryKind::from_json(&kind.to_json()).expect("round trip");
            assert_eq!(kind, back);
        }
    }

    #[test]
    fn cluster_trace_has_per_node_processes_and_recovery() {
        let nodes = vec![bundle(1), bundle(0)];
        let text = cluster_chrome_trace_json(&nodes);
        let v = Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let pnames: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args").unwrap().get("name").unwrap().as_str())
            .collect();
        // Sorted by node despite reversed input; virtual before wall.
        assert_eq!(
            pnames,
            vec![
                "node 0 · virtual time",
                "node 0 · wall clock",
                "node 1 · virtual time",
                "node 1 · wall clock",
            ]
        );
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("i")));
    }

    #[test]
    fn wall_lanes_align_to_earliest_epoch() {
        let mut a = bundle(0);
        let mut b = bundle(1);
        a.wall_epoch_unix = Some(1000.0);
        b.wall_epoch_unix = Some(1000.5);
        let text = cluster_chrome_trace_json(&[a, b]);
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // Node 1's wall lanes (pid 4) shift +0.5 s = 500000 µs relative
        // to node 0's (pid 2): both recorded a span starting at 0.0.
        let start_of = |pid: f64| {
            events
                .iter()
                .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
                .filter(|e| e.get("pid").unwrap().as_f64() == Some(pid))
                .filter_map(|e| e.get("ts").unwrap().as_f64())
                .fold(f64::INFINITY, f64::min)
        };
        assert_eq!(start_of(2.0), 0.0);
        assert_eq!(start_of(4.0), 500000.0);
    }

    #[test]
    fn virtual_trace_is_deterministic_and_wall_free() {
        let nodes = vec![bundle(0), bundle(1)];
        let text = cluster_virtual_trace_json(&nodes);
        assert_eq!(text, cluster_virtual_trace_json(&nodes));
        assert!(!text.contains("wall clock"));
        Json::parse(&text).expect("valid JSON");
    }

    #[test]
    fn cluster_metrics_aggregates_counters() {
        let nodes = vec![bundle(0), bundle(1)];
        let v = cluster_metrics_json(&nodes, &[("trials", Json::Num(3.0))]);
        assert_eq!(v.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("trials").unwrap().as_f64(), Some(3.0));
        let cluster = v.get("cluster").unwrap();
        assert_eq!(cluster.get("nodes").unwrap().as_u64(), Some(2));
        assert_eq!(cluster.get("ranks").unwrap().as_u64(), Some(4));
        // One 64-byte frame per node.
        assert_eq!(cluster.get("frames_sent").unwrap().as_u64(), Some(2));
        assert_eq!(cluster.get("bytes_sent").unwrap().as_u64(), Some(128));
        assert_eq!(cluster.get("recovery_events").unwrap().as_u64(), Some(4));
        // The RTT roll-up sums the per-peer histograms: one 150 µs
        // sample per node → count 2, bucket-wise counts preserved.
        let rtt = cluster.get("rtt_histogram").unwrap();
        assert_eq!(rtt.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(rtt.get("sum_us").unwrap().as_u64(), Some(300));
        let buckets = rtt.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), crate::netstats::RTT_BUCKETS);
        let total: u64 = buckets.iter().filter_map(Json::as_u64).sum();
        assert_eq!(total, 2);
        let floors = cluster
            .get("rtt_bucket_floors_us")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(floors.len(), crate::netstats::RTT_BUCKETS);
        assert_eq!(floors[0].as_u64(), Some(1));
        let node_entries = v.get("nodes").unwrap().as_arr().unwrap();
        assert_eq!(node_entries.len(), 2);
        assert_eq!(node_entries[0].get("node").unwrap().as_u64(), Some(0));
        assert!(node_entries[0]
            .get("virtual")
            .unwrap()
            .get("phases")
            .is_some());
    }
}
