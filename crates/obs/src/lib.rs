//! # cpx-obs
//!
//! Observability for the virtual testbed: a zero-cost-when-disabled
//! recorder of **spans and counters keyed to virtual time**, plus three
//! deterministic exporters.
//!
//! Every subsystem in the workspace advances a per-rank *logical* clock
//! (the `RankCtx` clock in `cpx-comm`, the replay clock in
//! `cpx-machine`, an explicit work-model clock in `cpx-amg`). The
//! recorder attaches named, nested spans to those clocks — never to
//! wall time — so a trace is a pure function of the inputs: same seed +
//! same fault plan ⇒ byte-identical export. Traces double as regression
//! artifacts.
//!
//! The three exporters are
//!
//! * [`chrome::chrome_trace_json`] — Chrome trace-event JSON, one lane
//!   per rank, loadable in Perfetto or `chrome://tracing`;
//! * [`flame::collapsed_stacks`] — collapsed-stack text compatible with
//!   `inferno-flamegraph` / Brendan Gregg's `flamegraph.pl`;
//! * [`metrics::metrics_json`] — a JSON snapshot with counters and
//!   p50/p95/p99 histograms over per-rank phase times.
//!
//! ## Recording
//!
//! ```
//! use cpx_obs::RankRecorder;
//!
//! let mut rec = RankRecorder::on();
//! rec.begin("step", 0.0);
//! rec.begin("halo", 0.2);
//! rec.end(0.5); // halo: 0.2..0.5
//! rec.end(1.0); // step: 0.0..1.0, self time 0.7
//! rec.count("messages", 3);
//! let lane = rec.into_timeline(0, 1.0);
//! assert_eq!(lane.spans.len(), 2);
//! assert!(lane.spans.iter().all(|s| s.end >= s.start));
//! ```
//!
//! When constructed with [`RankRecorder::off`] every method is a
//! branch-on-a-bool no-op: no allocation, no formatting, no clock math.
//!
//! ## Wall clock
//!
//! [`wall::WallRecorder`] is the monotonic-clock sibling of
//! [`RankRecorder`] — same API and on/off contract, timestamps sampled
//! from [`std::time::Instant`] instead of a virtual clock. It seals
//! into the same timeline/session types so every exporter works on wall
//! traces, and [`chrome::dual_chrome_trace_json`] renders the virtual
//! and wall views of one run side by side. [`roofline::KernelIntensity`]
//! joins kernel-reported operation counts ([`roofline::OpCounts`]) with
//! measured wall times into roofline-style achieved-rate summaries.

use std::borrow::Cow;
use std::collections::BTreeMap;

pub mod chrome;
pub mod critical;
pub mod flame;
pub mod http;
pub mod json;
pub mod merge;
pub mod metrics;
pub mod netstats;
pub mod roofline;
pub mod stats;
pub mod wall;

pub use chrome::{
    chrome_trace_json, chrome_trace_to, critical_chrome_trace_json, critical_chrome_trace_to,
    dual_chrome_trace_json, dual_chrome_trace_to,
};
pub use critical::{
    blend_factor, path_report, BlamedSpan, CriticalPath, Meet, PathReport, PathSegment, Rescale,
    Schedule, SegClass, TaskGraph, TaskKind, TaskNode,
};
pub use flame::{collapsed_stacks, collapsed_stacks_to};
pub use http::{MetricsServer, Response};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use merge::{
    cluster_chrome_trace_json, cluster_chrome_trace_to, cluster_metrics_json,
    cluster_virtual_trace_json, cluster_virtual_trace_to, NodeObs,
};
pub use metrics::{metrics_json, phase_stats, PhaseStats};
pub use netstats::{NetStats, NetStatsSnapshot};
pub use roofline::{KernelIntensity, OpCounts};
pub use stats::{nearest_rank_index, percentile_sorted};
pub use wall::WallRecorder;

/// Span names are either static strings (the common, allocation-free
/// case) or owned strings for dynamic labels like `"level 3"`.
pub type SpanName = Cow<'static, str>;

/// A closed span on one rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Leaf name (e.g. `"allreduce"`).
    pub name: SpanName,
    /// Full `;`-separated ancestry including the leaf, flamegraph-style
    /// (e.g. `"step;pressure field;allreduce"`). Empty for flat spans
    /// pushed whole via [`RankRecorder::push_span`], whose ancestry is
    /// just [`Span::name`] (saves an allocation per span on the
    /// replayer's hot path).
    pub path: String,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds); `end >= start` always.
    pub end: f64,
    /// Nesting depth (0 = top level).
    pub depth: u16,
    /// Time inside this span not covered by child spans.
    pub self_time: f64,
}

impl Span {
    /// Span duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// An open frame on the recorder stack.
#[derive(Debug)]
struct Frame {
    name: SpanName,
    start: f64,
    child_time: f64,
}

/// One step of a shrink-recovery round, timestamped on the observing
/// rank's virtual clock. Recovery events are rare (only failures
/// produce them) but load-bearing when they happen: exported together
/// they replay a chaos run's revoke → agreement → shrink → rollback
/// sequence as a dedicated Chrome-trace lane.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Virtual time of the step on the recording rank.
    pub t: f64,
    /// Which protocol step.
    pub kind: RecoveryKind,
}

/// The protocol step a [`RecoveryEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryKind {
    /// The rank revoked group `sig` after observing `peer` fail.
    Revoke {
        /// Signature of the revoked group.
        sig: u64,
        /// The failed rank the revocation blames.
        peer: usize,
    },
    /// One flooding round of the shrink agreement on group `sig`.
    AgreeRound {
        /// Signature of the revoked group the agreement runs on.
        sig: u64,
        /// Round number (1-based).
        round: u64,
        /// Contributors known entering the round.
        known: usize,
    },
    /// The agreement committed: the successor group is formed.
    Shrink {
        /// Signature of the *successor* group.
        sig: u64,
        /// Members of the successor group.
        survivors: usize,
        /// Agreed minimum checkpoint iteration.
        min_ckpt: u64,
    },
    /// The rank rolled its state back to the agreed checkpoint.
    Rollback {
        /// Iteration resumed from.
        to_iter: u64,
    },
}

impl RecoveryKind {
    /// Short label used as the Chrome-trace event name.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryKind::Revoke { .. } => "revoke",
            RecoveryKind::AgreeRound { .. } => "agree round",
            RecoveryKind::Shrink { .. } => "shrink",
            RecoveryKind::Rollback { .. } => "rollback",
        }
    }
}

/// Per-rank span/counter recorder.
///
/// Spans must nest: `begin`/`end` pairs form a stack. Times passed in
/// must come from the rank's virtual clock, which is monotone per rank,
/// so durations are never negative (the recorder clamps defensively
/// anyway). Disabled recorders do nothing.
#[derive(Debug, Default)]
pub struct RankRecorder {
    enabled: bool,
    stack: Vec<Frame>,
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    recovery: Vec<RecoveryEvent>,
}

impl RankRecorder {
    /// A recorder that records.
    pub fn on() -> Self {
        RankRecorder {
            enabled: true,
            ..Default::default()
        }
    }

    /// A recorder where every call is a no-op.
    pub fn off() -> Self {
        RankRecorder::default()
    }

    /// Is this recorder live?
    #[inline]
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    /// Open a span at virtual time `t`.
    #[inline]
    pub fn begin(&mut self, name: impl Into<SpanName>, t: f64) {
        if !self.enabled {
            return;
        }
        self.stack.push(Frame {
            name: name.into(),
            start: t,
            child_time: 0.0,
        });
    }

    /// Close the innermost open span at virtual time `t`.
    ///
    /// Unbalanced `end` calls (empty stack) are ignored rather than
    /// panicking: a crashed rank may unwind through scope guards.
    #[inline]
    pub fn end(&mut self, t: f64) {
        if !self.enabled {
            return;
        }
        let Some(frame) = self.stack.pop() else {
            return;
        };
        self.close_frame(frame, t);
    }

    fn close_frame(&mut self, frame: Frame, t: f64) {
        let end = t.max(frame.start);
        let dur = end - frame.start;
        let self_time = (dur - frame.child_time).max(0.0);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_time += dur;
        }
        let mut path = String::new();
        for f in &self.stack {
            path.push_str(&f.name);
            path.push(';');
        }
        path.push_str(&frame.name);
        self.spans.push(Span {
            name: frame.name,
            path,
            start: frame.start,
            end,
            depth: self.stack.len() as u16,
            self_time,
        });
    }

    /// Push a pre-formed span (used by replayers that segment phases
    /// themselves rather than via `begin`/`end`). The stored `path` is
    /// left empty, meaning "same as the name".
    pub fn push_span(&mut self, name: impl Into<SpanName>, start: f64, end: f64) {
        if !self.enabled {
            return;
        }
        let name = name.into();
        let end = end.max(start);
        self.spans.push(Span {
            path: String::new(),
            self_time: end - start,
            name,
            start,
            end,
            depth: 0,
        });
    }

    /// Bump a named counter. Allocates the key only on a counter's
    /// first hit, so per-message counters stay cheap.
    #[inline]
    pub fn count(&mut self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        if let Some(v) = self.counters.get_mut(name) {
            *v += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Record a shrink-recovery protocol step at virtual time `t`.
    /// No-op while disabled, like every other method.
    #[inline]
    pub fn recovery_event(&mut self, t: f64, kind: RecoveryKind) {
        if !self.enabled {
            return;
        }
        self.recovery.push(RecoveryEvent { t, kind });
    }

    /// Current nesting depth (0 when no span is open).
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Close any still-open spans at `t` (a crashed rank dies mid-span)
    /// and seal the recorder into a rank timeline.
    pub fn into_timeline(mut self, rank: usize, t: f64) -> RankTimeline {
        while let Some(frame) = self.stack.pop() {
            self.close_frame(frame, t);
        }
        RankTimeline {
            rank,
            spans: self.spans,
            counters: self.counters,
            recovery: self.recovery,
            finish: t,
        }
    }
}

/// All spans and counters recorded on one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTimeline {
    /// World rank (trace lane id).
    pub rank: usize,
    /// Closed spans, in close order (children before parents).
    pub spans: Vec<Span>,
    /// Named event counters.
    pub counters: BTreeMap<String, u64>,
    /// Shrink-recovery protocol steps observed by this rank, in
    /// emission (= virtual-time) order. Empty on fault-free runs.
    pub recovery: Vec<RecoveryEvent>,
    /// Final virtual clock value of the rank.
    pub finish: f64,
}

/// A whole run's trace: one timeline per rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSession {
    /// One lane per rank, ordered by rank.
    pub lanes: Vec<RankTimeline>,
}

impl TraceSession {
    /// Assemble a session from per-rank timelines, sorting lanes by
    /// rank so exports are independent of completion order.
    pub fn new(mut lanes: Vec<RankTimeline>) -> Self {
        lanes.sort_by_key(|l| l.rank);
        TraceSession { lanes }
    }

    /// Total number of spans across all lanes.
    pub fn total_spans(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }

    /// Total number of recovery events across all lanes.
    pub fn total_recovery_events(&self) -> usize {
        self.lanes.iter().map(|l| l.recovery.len()).sum()
    }

    /// Sum of a counter across all lanes.
    pub fn counter(&self, name: &str) -> u64 {
        self.lanes.iter().filter_map(|l| l.counters.get(name)).sum()
    }

    /// Virtual makespan (max finish over lanes).
    pub fn makespan(&self) -> f64 {
        self.lanes.iter().fold(0.0_f64, |m, l| m.max(l.finish))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = RankRecorder::off();
        rec.begin("a", 0.0);
        rec.count("x", 5);
        rec.end(1.0);
        let lane = rec.into_timeline(0, 1.0);
        assert!(lane.spans.is_empty());
        assert!(lane.counters.is_empty());
    }

    #[test]
    fn nesting_and_self_time() {
        let mut rec = RankRecorder::on();
        rec.begin("outer", 0.0);
        rec.begin("inner", 1.0);
        rec.end(3.0);
        rec.begin("inner2", 3.0);
        rec.end(4.0);
        rec.end(10.0);
        let lane = rec.into_timeline(2, 10.0);
        assert_eq!(lane.spans.len(), 3);
        let outer = lane.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert!((outer.self_time - 7.0).abs() < 1e-12);
        let inner = lane.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.path, "outer;inner");
        assert!((inner.self_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn into_timeline_closes_open_spans() {
        let mut rec = RankRecorder::on();
        rec.begin("a", 0.0);
        rec.begin("b", 1.0);
        let lane = rec.into_timeline(0, 5.0);
        assert_eq!(lane.spans.len(), 2);
        assert!(lane.spans.iter().all(|s| s.end == 5.0));
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let mut rec = RankRecorder::on();
        rec.end(1.0);
        let lane = rec.into_timeline(0, 1.0);
        assert!(lane.spans.is_empty());
    }

    #[test]
    fn recovery_events_recorded_only_when_enabled() {
        let mut off = RankRecorder::off();
        off.recovery_event(1.0, RecoveryKind::Rollback { to_iter: 3 });
        assert!(off.into_timeline(0, 1.0).recovery.is_empty());

        let mut on = RankRecorder::on();
        on.recovery_event(0.5, RecoveryKind::Revoke { sig: 7, peer: 2 });
        on.recovery_event(0.6, RecoveryKind::Rollback { to_iter: 4 });
        let lane = on.into_timeline(1, 1.0);
        assert_eq!(lane.recovery.len(), 2);
        assert_eq!(lane.recovery[0].kind.label(), "revoke");
        assert_eq!(lane.recovery[1].t, 0.6);
        let s = TraceSession::new(vec![lane]);
        assert_eq!(s.total_recovery_events(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut rec = RankRecorder::on();
        rec.count("retries", 2);
        rec.count("retries", 3);
        let lane = rec.into_timeline(1, 0.0);
        assert_eq!(lane.counters["retries"], 5);
    }

    #[test]
    fn session_sorts_lanes_and_sums() {
        let mut a = RankRecorder::on();
        a.count("msgs", 1);
        let mut b = RankRecorder::on();
        b.count("msgs", 2);
        let s = TraceSession::new(vec![b.into_timeline(1, 2.0), a.into_timeline(0, 3.0)]);
        assert_eq!(s.lanes[0].rank, 0);
        assert_eq!(s.counter("msgs"), 3);
        assert!((s.makespan() - 3.0).abs() < 1e-12);
    }
}
