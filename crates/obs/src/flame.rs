//! Collapsed-stack flamegraph exporter.
//!
//! Emits the semicolon-separated stack format consumed by
//! `inferno-flamegraph` and Brendan Gregg's `flamegraph.pl`: one line
//! per unique stack, `frame;frame;... value`, where the value is the
//! stack's **self time** in integer nanoseconds of virtual time. Each
//! rank's stacks are rooted under a `rank N` frame so lanes stay
//! distinguishable; output lines are sorted, so the export is
//! deterministic.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::TraceSession;

/// Render a session as collapsed-stack text.
pub fn collapsed_stacks(session: &TraceSession) -> String {
    crate::chrome::to_string(|out| collapsed_stacks_to(out, session))
}

/// Stream a session's collapsed stacks into `out`.
pub fn collapsed_stacks_to<W: Write>(out: &mut W, session: &TraceSession) -> io::Result<()> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for lane in &session.lanes {
        for span in &lane.spans {
            let ns = (span.self_time * 1e9).round() as u64;
            if ns == 0 {
                continue;
            }
            // Flat spans store an empty path meaning "just the name".
            let path: &str = if span.path.is_empty() {
                &span.name
            } else {
                &span.path
            };
            let key = format!("rank {};{path}", lane.rank);
            *totals.entry(key).or_insert(0) += ns;
        }
    }
    for (stack, ns) in &totals {
        writeln!(out, "{stack} {ns}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RankRecorder, TraceSession};

    #[test]
    fn stacks_carry_self_time_and_merge() {
        let mut rec = RankRecorder::on();
        rec.begin("step", 0.0);
        rec.begin("halo", 0.0);
        rec.end(1e-6);
        rec.begin("halo", 2e-6);
        rec.end(3e-6);
        rec.end(5e-6);
        let s = TraceSession::new(vec![rec.into_timeline(0, 5e-6)]);
        let text = collapsed_stacks(&s);
        // Two halo spans merged into one stack line; step keeps 3 µs self.
        assert_eq!(text, "rank 0;step 3000\nrank 0;step;halo 2000\n");
        // The sink writer produces the same bytes.
        let mut buf = Vec::new();
        collapsed_stacks_to(&mut buf, &s).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), text);
    }

    #[test]
    fn zero_self_time_stacks_are_dropped() {
        let mut rec = RankRecorder::on();
        rec.begin("wrapper", 0.0);
        rec.begin("inner", 0.0);
        rec.end(1e-6);
        rec.end(1e-6);
        let s = TraceSession::new(vec![rec.into_timeline(0, 1e-6)]);
        let text = collapsed_stacks(&s);
        assert_eq!(text, "rank 0;wrapper;inner 1000\n");
    }
}
