//! Transport-layer counters for the TCP multi-process backend.
//!
//! [`NetStats`] is the wire-level sibling of
//! [`RankRecorder`](crate::RankRecorder): a recorder of per-peer frame,
//! byte, heartbeat and failure counters plus a wall-clock frame
//! round-trip histogram, with the same **zero-cost-when-disabled**
//! contract. A disabled collector is a `None` — every record call is a
//! branch on an `Option` discriminant: no allocation, no atomic
//! read-modify-write, not even a relaxed load (the workspace test
//! `netstats_overhead` pins the zero-allocation half of that contract).
//!
//! An enabled collector is an `Arc` of relaxed atomics so the transport
//! threads (per-peer readers, the heartbeat thread, every local rank's
//! sends) can record without locks; [`NetStats::snapshot`] flattens it
//! into the plain-data [`NetStatsSnapshot`], which serializes to/from
//! JSON for the `/metrics` endpoint and the cluster trace merge.
//!
//! Round-trip times come from ping/pong frames riding the heartbeat
//! cadence and land in a log₂-bucketed microsecond histogram
//! ([`RttHistogram`]): cheap to record (one relaxed increment), compact
//! to ship, and good enough for p50/p95/p99 at the accuracy a
//! cluster-health view needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::json::{field, FromJson, Json, JsonError, ToJson};

/// Number of log₂ buckets in an RTT histogram: bucket `i` counts
/// samples in `[2^i, 2^(i+1))` microseconds, with the last bucket
/// absorbing everything above (~67 s and beyond — a dead peer, not a
/// latency).
pub const RTT_BUCKETS: usize = 27;

/// Index of the histogram bucket for a sample of `us` microseconds.
fn bucket_of(us: u64) -> usize {
    ((64 - us.max(1).leading_zeros()) as usize - 1).min(RTT_BUCKETS - 1)
}

/// Lower edge (microseconds) of bucket `i`.
fn bucket_floor(i: usize) -> u64 {
    1u64 << i
}

#[derive(Default)]
struct PeerCounters {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_recv: AtomicU64,
    heartbeats_sent: AtomicU64,
    heartbeats_recv: AtomicU64,
    heartbeats_missed: AtomicU64,
    crc_failures: AtomicU64,
    rtt_count: AtomicU64,
    rtt_sum_us: AtomicU64,
    rtt_buckets: [AtomicU64; RTT_BUCKETS],
}

struct Inner {
    node: usize,
    peers: Vec<PeerCounters>,
    dial_retries: AtomicU64,
    dial_backoff_ms: AtomicU64,
}

/// Live transport-counter collector. Cloning shares the underlying
/// counters (it is an `Arc` internally), so the mesh, its reader
/// threads and the metrics endpoint all record into and read from the
/// same cells.
#[derive(Clone)]
pub struct NetStats {
    inner: Option<Arc<Inner>>,
}

impl NetStats {
    /// A collector for `node` with one counter block per peer node
    /// (self included, so peer ids index directly).
    pub fn on(node: usize, nodes: usize) -> NetStats {
        NetStats {
            inner: Some(Arc::new(Inner {
                node,
                peers: (0..nodes).map(|_| PeerCounters::default()).collect(),
                dial_retries: AtomicU64::new(0),
                dial_backoff_ms: AtomicU64::new(0),
            })),
        }
    }

    /// A collector where every record call is a no-op: no allocation,
    /// no atomic access.
    pub fn off() -> NetStats {
        NetStats { inner: None }
    }

    /// Is this collector live?
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn peer(&self, peer: usize) -> Option<&PeerCounters> {
        self.inner.as_ref().and_then(|i| i.peers.get(peer))
    }

    /// A data or control frame of `bytes` total wire bytes left for `peer`.
    #[inline]
    pub fn frame_sent(&self, peer: usize, bytes: usize) {
        if let Some(p) = self.peer(peer) {
            p.frames_sent.fetch_add(1, Ordering::Relaxed);
            p.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// A frame of `bytes` total wire bytes arrived from `peer`.
    #[inline]
    pub fn frame_recv(&self, peer: usize, bytes: usize) {
        if let Some(p) = self.peer(peer) {
            p.frames_recv.fetch_add(1, Ordering::Relaxed);
            p.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// A heartbeat left for `peer`.
    #[inline]
    pub fn heartbeat_sent(&self, peer: usize) {
        if let Some(p) = self.peer(peer) {
            p.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A heartbeat arrived from `peer`.
    #[inline]
    pub fn heartbeat_recv(&self, peer: usize) {
        if let Some(p) = self.peer(peer) {
            p.heartbeats_recv.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `peer` was silent past a heartbeat period when the monitor looked.
    #[inline]
    pub fn heartbeat_missed(&self, peer: usize) {
        if let Some(p) = self.peer(peer) {
            p.heartbeats_missed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A frame from `peer` failed its CRC (connection-fatal upstream).
    #[inline]
    pub fn crc_failure(&self, peer: usize) {
        if let Some(p) = self.peer(peer) {
            p.crc_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One failed dial attempt followed by `backoff_ms` of sleep.
    #[inline]
    pub fn dial_retry(&self, backoff_ms: u64) {
        if let Some(i) = &self.inner {
            i.dial_retries.fetch_add(1, Ordering::Relaxed);
            i.dial_backoff_ms.fetch_add(backoff_ms, Ordering::Relaxed);
        }
    }

    /// A measured ping→pong round trip to `peer`, in microseconds.
    #[inline]
    pub fn rtt_sample(&self, peer: usize, us: u64) {
        if let Some(p) = self.peer(peer) {
            p.rtt_count.fetch_add(1, Ordering::Relaxed);
            p.rtt_sum_us.fetch_add(us, Ordering::Relaxed);
            p.rtt_buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Flatten the live counters into plain data. Returns the empty
    /// snapshot when disabled.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        let Some(i) = &self.inner else {
            return NetStatsSnapshot::default();
        };
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        NetStatsSnapshot {
            node: i.node,
            dial_retries: ld(&i.dial_retries),
            dial_backoff_ms: ld(&i.dial_backoff_ms),
            peers: i
                .peers
                .iter()
                .enumerate()
                .filter(|&(peer, _)| peer != i.node)
                .map(|(peer, p)| PeerSnapshot {
                    peer,
                    frames_sent: ld(&p.frames_sent),
                    bytes_sent: ld(&p.bytes_sent),
                    frames_recv: ld(&p.frames_recv),
                    bytes_recv: ld(&p.bytes_recv),
                    heartbeats_sent: ld(&p.heartbeats_sent),
                    heartbeats_recv: ld(&p.heartbeats_recv),
                    heartbeats_missed: ld(&p.heartbeats_missed),
                    crc_failures: ld(&p.crc_failures),
                    rtt: RttHistogram {
                        count: ld(&p.rtt_count),
                        sum_us: ld(&p.rtt_sum_us),
                        buckets: p.rtt_buckets.iter().map(ld).collect(),
                    },
                })
                .collect(),
        }
    }
}

/// Log₂-bucketed microsecond round-trip histogram (plain data).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RttHistogram {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (microseconds), for the mean.
    pub sum_us: u64,
    /// One count per log₂ bucket ([`RTT_BUCKETS`] entries; empty when
    /// no sample was ever recorded).
    pub buckets: Vec<u64>,
}

impl RttHistogram {
    /// Mean round trip in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=100): the lower edge of the
    /// bucket holding the nearest-rank sample. 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = crate::stats::nearest_rank_index(self.count as usize, q) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(RTT_BUCKETS - 1)
    }

    /// Fold `other`'s samples into this histogram. The log₂ bucket
    /// edges are global constants, so bucket-wise summation is exact:
    /// merging per-peer (or per-node) histograms yields the histogram
    /// the merged population would have produced directly. This is how
    /// the cluster roll-up in [`crate::merge::cluster_metrics_json`] is
    /// built, and what offline re-aggregation of the exported raw
    /// bucket counts should do too.
    pub fn absorb(&mut self, other: &RttHistogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        if self.buckets.is_empty() {
            self.buckets = vec![0; RTT_BUCKETS];
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }

    /// Lower edges of all buckets in microseconds (`buckets[i]` counts
    /// samples in `[edge[i], edge[i+1])`) — exported so offline
    /// consumers can re-aggregate raw counts without hardcoding the
    /// log₂ layout.
    pub fn bucket_floors_us() -> Vec<u64> {
        (0..RTT_BUCKETS).map(bucket_floor).collect()
    }
}

impl ToJson for RttHistogram {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.to_json()),
            ("sum_us", self.sum_us.to_json()),
            ("mean_us", Json::Num(self.mean_us())),
            ("p50_us", self.quantile_us(50.0).to_json()),
            ("p95_us", self.quantile_us(95.0).to_json()),
            ("p99_us", self.quantile_us(99.0).to_json()),
            ("buckets", self.buckets.to_json()),
        ])
    }
}

impl FromJson for RttHistogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RttHistogram {
            count: field(v, "count")?,
            sum_us: field(v, "sum_us")?,
            buckets: field(v, "buckets")?,
        })
    }
}

/// One peer's flattened counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerSnapshot {
    /// Peer node id.
    pub peer: usize,
    /// Frames written to this peer's stream.
    pub frames_sent: u64,
    /// Total wire bytes written (headers included).
    pub bytes_sent: u64,
    /// Frames read from this peer's stream.
    pub frames_recv: u64,
    /// Total wire bytes read.
    pub bytes_recv: u64,
    /// Heartbeats broadcast to this peer.
    pub heartbeats_sent: u64,
    /// Heartbeats received from this peer.
    pub heartbeats_recv: u64,
    /// Monitor ticks that found this peer silent past a beat period.
    pub heartbeats_missed: u64,
    /// CRC-rejected frames from this peer (connection-fatal).
    pub crc_failures: u64,
    /// Ping→pong round-trip histogram.
    pub rtt: RttHistogram,
}

impl ToJson for PeerSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("peer", self.peer.to_json()),
            ("frames_sent", self.frames_sent.to_json()),
            ("bytes_sent", self.bytes_sent.to_json()),
            ("frames_recv", self.frames_recv.to_json()),
            ("bytes_recv", self.bytes_recv.to_json()),
            ("heartbeats_sent", self.heartbeats_sent.to_json()),
            ("heartbeats_recv", self.heartbeats_recv.to_json()),
            ("heartbeats_missed", self.heartbeats_missed.to_json()),
            ("crc_failures", self.crc_failures.to_json()),
            ("rtt", self.rtt.to_json()),
        ])
    }
}

impl FromJson for PeerSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(PeerSnapshot {
            peer: field(v, "peer")?,
            frames_sent: field(v, "frames_sent")?,
            bytes_sent: field(v, "bytes_sent")?,
            frames_recv: field(v, "frames_recv")?,
            bytes_recv: field(v, "bytes_recv")?,
            heartbeats_sent: field(v, "heartbeats_sent")?,
            heartbeats_recv: field(v, "heartbeats_recv")?,
            heartbeats_missed: field(v, "heartbeats_missed")?,
            crc_failures: field(v, "crc_failures")?,
            rtt: field(v, "rtt")?,
        })
    }
}

/// A whole node's transport counters at one instant (plain data,
/// JSON-serializable both ways so children can ship it to the merge
/// parent and `/metrics` can serve it live).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// The node these counters belong to.
    pub node: usize,
    /// Failed dial attempts during mesh bring-up.
    pub dial_retries: u64,
    /// Cumulative backoff slept across those attempts (milliseconds).
    pub dial_backoff_ms: u64,
    /// Per-peer counters, ascending peer id, self excluded.
    pub peers: Vec<PeerSnapshot>,
}

impl NetStatsSnapshot {
    /// Sum of a per-peer counter across all peers.
    pub fn total(&self, f: impl Fn(&PeerSnapshot) -> u64) -> u64 {
        self.peers.iter().map(f).sum()
    }
}

impl ToJson for NetStatsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("node", self.node.to_json()),
            ("dial_retries", self.dial_retries.to_json()),
            ("dial_backoff_ms", self.dial_backoff_ms.to_json()),
            ("peers", self.peers.to_json()),
        ])
    }
}

impl FromJson for NetStatsSnapshot {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(NetStatsSnapshot {
            node: field(v, "node")?,
            dial_retries: field(v, "dial_retries")?,
            dial_backoff_ms: field(v, "dial_backoff_ms")?,
            peers: field(v, "peers")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let s = NetStats::off();
        assert!(!s.is_on());
        s.frame_sent(0, 100);
        s.frame_recv(1, 50);
        s.heartbeat_sent(0);
        s.crc_failure(1);
        s.dial_retry(25);
        s.rtt_sample(0, 300);
        assert_eq!(s.snapshot(), NetStatsSnapshot::default());
    }

    #[test]
    fn counters_accumulate_per_peer() {
        let s = NetStats::on(1, 3);
        s.frame_sent(0, 64);
        s.frame_sent(0, 36);
        s.frame_recv(2, 8);
        s.heartbeat_sent(0);
        s.heartbeat_recv(2);
        s.heartbeat_missed(2);
        s.crc_failure(0);
        s.dial_retry(25);
        s.dial_retry(50);
        let snap = s.snapshot();
        assert_eq!(snap.node, 1);
        assert_eq!(snap.dial_retries, 2);
        assert_eq!(snap.dial_backoff_ms, 75);
        // Self (node 1) is excluded; peers 0 and 2 remain.
        assert_eq!(snap.peers.len(), 2);
        let p0 = &snap.peers[0];
        assert_eq!((p0.peer, p0.frames_sent, p0.bytes_sent), (0, 2, 100));
        assert_eq!(p0.crc_failures, 1);
        let p2 = &snap.peers[1];
        assert_eq!((p2.peer, p2.frames_recv, p2.bytes_recv), (2, 1, 8));
        assert_eq!((p2.heartbeats_recv, p2.heartbeats_missed), (1, 1));
        assert_eq!(snap.total(|p| p.frames_sent), 2);
    }

    #[test]
    fn clones_share_counters() {
        let a = NetStats::on(0, 2);
        let b = a.clone();
        b.frame_sent(1, 10);
        assert_eq!(a.snapshot().peers[0].frames_sent, 1);
    }

    #[test]
    fn out_of_range_peer_is_ignored() {
        let s = NetStats::on(0, 2);
        s.frame_sent(99, 10);
        assert_eq!(s.snapshot().total(|p| p.frames_sent), 0);
    }

    #[test]
    fn rtt_histogram_buckets_and_quantiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), RTT_BUCKETS - 1);

        let s = NetStats::on(0, 2);
        for us in [100, 100, 100, 100, 100, 100, 100, 100, 100, 4000] {
            s.rtt_sample(1, us);
        }
        let h = s.snapshot().peers[0].rtt.clone();
        assert_eq!(h.count, 10);
        assert!((h.mean_us() - 490.0).abs() < 1e-9);
        // 100 µs falls in bucket [64, 128); 4000 µs in [2048, 4096).
        assert_eq!(h.quantile_us(50.0), 64);
        assert_eq!(h.quantile_us(99.0), 2048);
        assert_eq!(RttHistogram::default().quantile_us(99.0), 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = NetStats::on(2, 4);
        s.frame_sent(0, 123);
        s.rtt_sample(1, 250);
        s.heartbeat_missed(3);
        s.dial_retry(40);
        let snap = s.snapshot();
        let back = NetStatsSnapshot::from_json(&snap.to_json()).expect("round trip");
        assert_eq!(snap, back);
        // And through text.
        let text = snap.to_json().write();
        let parsed = NetStatsSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(snap, parsed);
    }
}
