//! Wall-clock span/counter recorder.
//!
//! [`WallRecorder`] is the real-clock sibling of
//! [`RankRecorder`](crate::RankRecorder): the same begin/end/count API
//! and the same on/off no-op contract, but timestamps come from a
//! monotonic [`Instant`] sampled at each call instead of being passed
//! in from a virtual clock. It seals into the same [`RankTimeline`] /
//! [`TraceSession`](crate::TraceSession) types, so every exporter in
//! this crate (Chrome trace, flamegraph, metrics snapshot) works on
//! wall traces unchanged, and
//! [`dual_chrome_trace_json`](crate::chrome::dual_chrome_trace_json)
//! can show the virtual and wall timelines of the same run side by
//! side.
//!
//! Unlike virtual traces, wall traces are **not** deterministic — they
//! measure the hardware. Never feed them into a byte-compare gate; diff
//! the derived statistics instead.
//!
//! A disabled recorder ([`WallRecorder::off`]) never calls
//! [`Instant::now`], never allocates and never formats: every method is
//! a branch on a bool, so leaving wall instrumentation compiled into a
//! hot path costs nothing when it is off (asserted by the workspace
//! test `wall_recorder_overhead`).

use std::time::Instant;

use crate::{RankRecorder, RankTimeline, SpanName};

/// Monotonic-clock recorder with the [`RankRecorder`] on/off contract.
#[derive(Debug)]
pub struct WallRecorder {
    /// `None` while disabled; the epoch every span time is relative to
    /// once enabled (set at construction).
    epoch: Option<Instant>,
    inner: RankRecorder,
}

impl Default for WallRecorder {
    fn default() -> Self {
        WallRecorder::off()
    }
}

impl WallRecorder {
    /// A recorder that records, with its epoch at "now".
    pub fn on() -> Self {
        WallRecorder {
            epoch: Some(Instant::now()),
            inner: RankRecorder::on(),
        }
    }

    /// A recorder where every method is a no-op (no clock reads, no
    /// allocation).
    pub fn off() -> Self {
        WallRecorder {
            epoch: None,
            inner: RankRecorder::off(),
        }
    }

    /// Is this recorder live?
    #[inline]
    pub fn is_on(&self) -> bool {
        self.epoch.is_some()
    }

    /// Seconds since the recorder's epoch (0.0 while disabled).
    #[inline]
    pub fn elapsed(&self) -> f64 {
        match self.epoch {
            Some(epoch) => epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Open a span at the current wall time.
    #[inline]
    pub fn begin(&mut self, name: impl Into<SpanName>) {
        let Some(epoch) = self.epoch else {
            return;
        };
        let t = epoch.elapsed().as_secs_f64();
        self.inner.begin(name, t);
    }

    /// Close the innermost open span at the current wall time.
    /// Unbalanced `end` calls are ignored, as for [`RankRecorder`].
    #[inline]
    pub fn end(&mut self) {
        let Some(epoch) = self.epoch else {
            return;
        };
        let t = epoch.elapsed().as_secs_f64();
        self.inner.end(t);
    }

    /// Push a pre-timed span: `start`/`end` are seconds relative to the
    /// recorder's epoch (e.g. re-based from a `cpx-par` pool-telemetry
    /// chunk timing).
    pub fn push_span(&mut self, name: impl Into<SpanName>, start: f64, end: f64) {
        if self.epoch.is_some() {
            self.inner.push_span(name, start, end);
        }
    }

    /// Bump a named counter.
    #[inline]
    pub fn count(&mut self, name: &str, n: u64) {
        self.inner.count(name, n);
    }

    /// Current nesting depth (0 when no span is open or when disabled).
    pub fn open_depth(&self) -> usize {
        self.inner.open_depth()
    }

    /// Close any still-open spans at the current wall time and seal the
    /// recording into a rank timeline.
    pub fn into_timeline(self, rank: usize) -> RankTimeline {
        let t = self.elapsed();
        self.inner.into_timeline(rank, t)
    }

    /// Time one closure as a named span and return its result.
    pub fn span<R>(&mut self, name: impl Into<SpanName>, f: impl FnOnce() -> R) -> R {
        self.begin(name);
        let r = f();
        self.end();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSession;

    #[test]
    fn disabled_recorder_records_nothing_and_reads_no_clock() {
        let mut rec = WallRecorder::off();
        assert!(!rec.is_on());
        rec.begin("a");
        rec.count("x", 3);
        rec.end();
        assert_eq!(rec.elapsed(), 0.0);
        let lane = rec.into_timeline(0);
        assert!(lane.spans.is_empty());
        assert!(lane.counters.is_empty());
        assert_eq!(lane.finish, 0.0);
    }

    #[test]
    fn spans_nest_and_carry_monotone_wall_times() {
        let mut rec = WallRecorder::on();
        rec.begin("outer");
        rec.begin("inner");
        std::hint::black_box((0..1000).sum::<u64>());
        rec.end();
        rec.end();
        let lane = rec.into_timeline(3);
        assert_eq!(lane.rank, 3);
        assert_eq!(lane.spans.len(), 2);
        let inner = lane.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = lane.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.path, "outer;inner");
        assert!(inner.start >= outer.start);
        assert!(inner.end <= outer.end + 1e-12);
        assert!(lane.finish >= outer.end);
    }

    #[test]
    fn wall_timeline_feeds_existing_exporters() {
        let mut rec = WallRecorder::on();
        rec.span("work", || std::hint::black_box((0..100).product::<u128>()));
        rec.count("items", 7);
        let session = TraceSession::new(vec![rec.into_timeline(0)]);
        let trace = crate::chrome_trace_json(&session);
        assert!(trace.contains("\"work\""));
        let metrics = crate::metrics_json(&session, &[]);
        assert_eq!(
            metrics
                .get("counters")
                .unwrap()
                .get("items")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn span_closure_returns_value() {
        let mut rec = WallRecorder::on();
        let v = rec.span("calc", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(rec.open_depth(), 0);
    }

    #[test]
    fn push_span_rebases_external_timings() {
        let mut rec = WallRecorder::on();
        rec.push_span("chunk 0", 0.001, 0.002);
        let lane = rec.into_timeline(0);
        assert_eq!(lane.spans.len(), 1);
        assert!((lane.spans[0].duration() - 0.001).abs() < 1e-12);
    }
}
