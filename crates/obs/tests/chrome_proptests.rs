//! Property tests for Chrome-trace JSON validity under adversarial
//! names.
//!
//! Every exporter funnels user-visible text through the shared
//! [`cpx_obs::json::escape_str`] helper. These properties drive span
//! names, paths and counter keys drawn from an alphabet of JSON
//! metacharacters, control bytes and multi-byte Unicode — plus the
//! 16-hex group signatures the recovery protocol stamps into span
//! names — and assert that every produced trace (single-session,
//! critical-path and the merged cluster trace) still parses with the
//! workspace's own strict JSON reader.

use cpx_obs::json::escape_str;
use cpx_obs::{
    chrome_trace_json, cluster_chrome_trace_json, cluster_virtual_trace_json,
    critical_chrome_trace_json, Json, Meet, NodeObs, RankRecorder, RecoveryKind, Rescale,
    TaskGraph, TaskKind, TaskNode, TraceSession,
};
use proptest::collection;
use proptest::prelude::*;

/// Characters chosen to break naive JSON emitters: quotes, escapes,
/// structural characters, control bytes, and multi-byte Unicode.
const ALPHABET: &[&str] = &[
    "\"", "\\", "\n", "\r", "\t", "\u{0}", "\u{1}", "\u{1f}", "\u{7f}", "{", "}", "[", "]", ",",
    ":", "/", "<script>", "é", "Δt", "µs", "😀", "a", "7", " ", ";",
];

fn arb_name() -> impl Strategy<Value = String> {
    collection::vec(0usize..ALPHABET.len(), 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_sig() -> impl Strategy<Value = u64> {
    0u64..u64::MAX
}

/// A rank timeline whose span names, counter keys and recovery events
/// carry the adversarial strings and a recovery signature formatted the
/// way `resilient.rs` does (16 hex digits).
fn timeline(rank: usize, names: &[String], sig: u64) -> cpx_obs::RankTimeline {
    let mut rec = RankRecorder::on();
    let mut t = 0.0;
    for name in names {
        rec.begin(name.clone(), t);
        rec.begin(format!("{name} {sig:016x}"), t + 0.1);
        rec.end(t + 0.4);
        rec.end(t + 1.0);
        rec.count(name, 1);
        t += 1.0;
    }
    rec.recovery_event(t, RecoveryKind::Revoke { sig, peer: rank });
    rec.recovery_event(
        t + 0.5,
        RecoveryKind::Shrink {
            sig,
            survivors: 2,
            min_ckpt: 1,
        },
    );
    rec.into_timeline(rank, t + 1.0)
}

fn parses(text: &str) -> Json {
    Json::parse(text).unwrap_or_else(|e| panic!("exporter produced invalid JSON: {e:?}\n{text}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn escape_str_round_trips_adversarial_names(name in arb_name()) {
        let escaped = escape_str(&name);
        let back = parses(&escaped);
        prop_assert_eq!(back, Json::Str(name));
    }

    #[test]
    fn chrome_and_cluster_traces_stay_parseable(
        names in collection::vec(arb_name(), 1..5),
        sig in arb_sig(),
    ) {
        let session = TraceSession::new(vec![
            timeline(0, &names, sig),
            timeline(1, &names, sig.rotate_left(17)),
        ]);
        parses(&chrome_trace_json(&session));

        // The merged cluster trace carries the same names through the
        // node-bundle codec plus per-node process metadata.
        let nodes: Vec<NodeObs> = (0..2)
            .map(|node| NodeObs {
                node,
                virt: session.clone(),
                wall: Some(TraceSession::new(vec![timeline(node, &names, sig)])),
                wall_epoch_unix: Some(1.0e9 + 0.1 + node as f64 * 0.25),
                net: cpx_obs::NetStats::on(node, 2).snapshot(),
            })
            .collect();
        parses(&cluster_chrome_trace_json(&nodes));
        parses(&cluster_virtual_trace_json(&nodes));

        // The bundle hop itself must not corrupt the names either.
        let back = NodeObs::decode(&nodes[0].encode()).expect("bundle round-trips");
        prop_assert_eq!(&back, &nodes[0]);
    }

    #[test]
    fn critical_trace_stays_parseable(phase in arb_name(), dur in 0.0f64..2.0) {
        // Two ranks, one compute each, joined by a collective: the
        // critical lane and the rank lanes both label events with the
        // adversarial phase name.
        let mut g = TaskGraph {
            n_ranks: 2,
            phase_names: vec!["(untracked)".to_string(), phase],
            ..TaskGraph::default()
        };
        for rank in 0..2usize {
            g.nodes.push(TaskNode {
                rank,
                phase: 1,
                kind: TaskKind::Compute,
                dur: dur + rank as f64 * 0.25,
                transfer: 0.0,
                prev: None,
                matched_send: None,
            });
        }
        g.nodes.push(TaskNode {
            rank: 0,
            phase: 1,
            kind: TaskKind::Collective { meet: 0 },
            dur: 0.0,
            transfer: 0.0,
            prev: Some(0),
            matched_send: None,
        });
        g.nodes.push(TaskNode {
            rank: 1,
            phase: 1,
            kind: TaskKind::Collective { meet: 0 },
            dur: 0.0,
            transfer: 0.0,
            prev: Some(1),
            matched_send: None,
        });
        g.meets.push(Meet {
            members: vec![2, 3],
            cost: 0.125,
            label: "allreduce",
        });
        let sched = g.schedule(&Rescale::none()).expect("tiny graph is acyclic");
        let path = g.critical_path(&sched);
        let doc = parses(&critical_chrome_trace_json(&g, &path));
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        prop_assert!(!events.is_empty());
    }
}
