//! Property-based tests for the performance model.

use proptest::prelude::*;

use cpx_perfmodel::{allocate, AllocConfig, InstanceModel, RuntimeCurve};

fn arb_curve() -> impl Strategy<Value = RuntimeCurve> {
    (1.0f64..1e4, 0.0f64..1.0, 0.0f64..0.05, 0.0f64..1e-3).prop_map(|(a, b, c, d)| RuntimeCurve {
        a,
        b,
        c,
        d,
    })
}

fn arb_instance(idx: usize) -> impl Strategy<Value = InstanceModel> {
    (arb_curve(), 1.0f64..100.0, 1.0f64..100.0).prop_map(move |(curve, size, iters)| {
        InstanceModel::new(&format!("inst-{idx}"), curve, 1.0, 1.0, size, iters, 1)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn curve_fit_reproduces_its_samples(
        a in 1.0f64..1e5, b in 0.0f64..2.0, c in 0.0f64..0.1, d in 0.0f64..1e-3
    ) {
        let truth = RuntimeCurve { a, b, c, d };
        let samples: Vec<(usize, f64)> = [1usize, 4, 16, 64, 256, 1024, 4096]
            .iter()
            .map(|&p| (p, truth.predict(p)))
            .collect();
        let fit = RuntimeCurve::fit(&samples);
        prop_assert!(
            fit.relative_error(&samples) < 0.05,
            "err {} for {truth:?} -> {fit:?}",
            fit.relative_error(&samples)
        );
    }

    #[test]
    fn prediction_positive_everywhere(curve in arb_curve(), p in 1usize..100_000) {
        prop_assert!(curve.predict(p) > 0.0);
    }

    #[test]
    fn allocation_never_exceeds_budget(
        apps in proptest::collection::vec(arb_instance(0), 1..6),
        cus in proptest::collection::vec(arb_instance(1), 0..4),
        extra in 0usize..2000,
    ) {
        let min: usize = apps.iter().chain(&cus).map(|m| m.min_ranks).sum();
        let budget = min + extra;
        let out = allocate(&apps, &cus, AllocConfig { budget });
        prop_assert!(out.total_ranks() <= budget);
        // Every instance got at least its minimum.
        for (m, &r) in apps.iter().zip(&out.app_ranks) {
            prop_assert!(r >= m.min_ranks);
        }
        for (m, &r) in cus.iter().zip(&out.cu_ranks) {
            prop_assert!(r >= m.min_ranks);
        }
        // Reported times are consistent with the models.
        for (i, m) in apps.iter().enumerate() {
            let want = m.predicted_time(out.app_ranks[i]);
            prop_assert!((out.app_times[i] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn more_budget_is_monotone(
        apps in proptest::collection::vec(arb_instance(0), 1..5),
        budget in 10usize..500,
    ) {
        let min: usize = apps.iter().map(|m| m.min_ranks).sum();
        let t1 = allocate(&apps, &[], AllocConfig { budget: min + budget }).predicted_runtime();
        let t2 = allocate(&apps, &[], AllocConfig { budget: min + 2 * budget }).predicted_runtime();
        prop_assert!(t2 <= t1 * 1.0001, "{t2} > {t1}");
    }

    #[test]
    fn efficiency_bounded_by_one_for_sane_curves(curve in arb_curve(), p in 2usize..10_000) {
        // With non-negative B/C/D terms, superlinear speedup is
        // impossible.
        let e = curve.parallel_efficiency(1, p);
        prop_assert!(e <= 1.0 + 1e-9, "PE {e}");
        prop_assert!(e > 0.0);
    }
}
