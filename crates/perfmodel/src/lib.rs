//! # cpx-perfmodel
//!
//! The empirical performance model (§V): the machinery that turns
//! standalone mini-app benchmarks into (1) an optimal rank allocation
//! for a coupled run and (2) a runtime prediction for it.
//!
//! The paper's workflow (Fig 7):
//!
//! 1. benchmark each mini-app standalone across problem sizes and core
//!    counts;
//! 2. fit a curve to each parallel-efficiency/runtime profile
//!    ([`curve::RuntimeCurve`]);
//! 3. scale each instance's base-case runtime by its mesh size and
//!    iteration count relative to the base case ([`scale::InstanceModel`],
//!    the preamble of Alg 1);
//! 4. greedily hand out the core budget one rank at a time to whichever
//!    of {slowest app, slowest coupler unit} gains the most
//!    ([`alloc::allocate`], Alg 1 proper), because the coupled runtime
//!    is `max(apps) + max(CUs)`;
//! 5. report the allocation and the predicted runtime.
//!
//! Improvements over the prior model that this version reproduces
//! (§V): per-instance mesh and interface sizes (not one size for all),
//! and support for both density- and pressure-solver instances in one
//! allocation.
//!
//! [`measured::MeasuredScaling`] additionally accepts *measured*
//! thread-scaling medians (from the `bench_kernels` binary running the
//! kernels on the `cpx-par` pool) and fits them into the same curve /
//! instance machinery — an empirical alternative to synthetic curves.
//! [`validation`] closes the loop the other way: it pairs those
//! predictions with measured kernel and coupled timings and reports
//! per-kernel MAPE and signed bias (the Fig 9a predicted-vs-measured
//! check), which `validation_study` serialises into
//! `BENCH_validation.json`.

pub mod alloc;
pub mod curve;
pub mod measured;
pub mod scale;
pub mod validation;

pub use alloc::{allocate, AllocConfig, Allocation};
pub use curve::RuntimeCurve;
pub use measured::MeasuredScaling;
pub use scale::InstanceModel;
pub use validation::{KernelValidation, PredictionPair, ValidationReport};
