//! Algorithm 1 — greedy rank distribution.
//!
//! The coupled simulation progresses at the speed of its slowest
//! component, and its runtime is `max(apps) + max(CUs)`. The allocator
//! therefore hands out the core budget one rank at a time: each step it
//! finds the slowest app instance and the slowest coupler unit, asks
//! each how much one extra core would help, and gives the core to the
//! bigger gain — the faithful implementation of the paper's Alg 1,
//! including the per-instance mesh/iteration scaling (this model's
//! improvement over its predecessor, which could only allocate to "all
//! solvers" or "all couplers" uniformly).

use crate::scale::InstanceModel;

/// Allocation parameters.
#[derive(Debug, Clone, Copy)]
pub struct AllocConfig {
    /// Total rank budget.
    pub budget: usize,
}

/// The result of an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Ranks per app instance (in input order).
    pub app_ranks: Vec<usize>,
    /// Ranks per coupler unit (in input order).
    pub cu_ranks: Vec<usize>,
    /// Predicted runtime of each app at its allocation.
    pub app_times: Vec<f64>,
    /// Predicted runtime of each CU at its allocation.
    pub cu_times: Vec<f64>,
}

impl Allocation {
    /// Predicted coupled runtime: `max(apps) + max(CUs)`.
    pub fn predicted_runtime(&self) -> f64 {
        let apps = self.app_times.iter().copied().fold(0.0, f64::max);
        let cus = self.cu_times.iter().copied().fold(0.0, f64::max);
        apps + cus
    }

    /// Total ranks allocated.
    pub fn total_ranks(&self) -> usize {
        self.app_ranks.iter().sum::<usize>() + self.cu_ranks.iter().sum::<usize>()
    }

    /// Index of the bottleneck app.
    pub fn bottleneck_app(&self) -> usize {
        self.app_times
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Distribute `config.budget` ranks over `apps` and `cus` (Alg 1).
///
/// Panics if the budget cannot cover every instance's `min_ranks`.
pub fn allocate(apps: &[InstanceModel], cus: &[InstanceModel], config: AllocConfig) -> Allocation {
    assert!(!apps.is_empty(), "need at least one app instance");
    let min_total: usize = apps.iter().chain(cus).map(|m| m.min_ranks).sum();
    assert!(
        config.budget >= min_total,
        "budget {} below minimum {}",
        config.budget,
        min_total
    );

    let mut app_ranks: Vec<usize> = apps.iter().map(|m| m.min_ranks).collect();
    let mut cu_ranks: Vec<usize> = cus.iter().map(|m| m.min_ranks).collect();
    let mut app_times: Vec<f64> = apps
        .iter()
        .zip(&app_ranks)
        .map(|(m, &p)| m.predicted_time(p))
        .collect();
    let mut cu_times: Vec<f64> = cus
        .iter()
        .zip(&cu_ranks)
        .map(|(m, &p)| m.predicted_time(p))
        .collect();

    let mut remaining = config.budget - min_total;
    while remaining > 0 {
        // Slowest app and slowest CU.
        let ai = argmax(&app_times);
        let app_diff = apps[ai].marginal_gain(app_ranks[ai]);
        let (ci, cu_diff) = match cu_times.is_empty() {
            true => (usize::MAX, f64::NEG_INFINITY),
            false => {
                let ci = argmax(&cu_times);
                (ci, cus[ci].marginal_gain(cu_ranks[ci]))
            }
        };
        if cu_diff > app_diff && cu_diff > 0.0 {
            cu_ranks[ci] += 1;
            cu_times[ci] = cus[ci].predicted_time(cu_ranks[ci]);
        } else if app_diff > 0.0 {
            app_ranks[ai] += 1;
            app_times[ai] = apps[ai].predicted_time(app_ranks[ai]);
        } else {
            // Safeguard beyond the paper's pseudocode: the coupled
            // runtime is max(apps) + max(CUs), so once *both* slowest
            // components are past their scaling sweet spots, no further
            // allocation can reduce the objective — more ranks would
            // only slow the bottlenecks down. Stop and leave the
            // remaining budget idle. (This is exactly the situation the
            // paper describes for the Base-STC large case: "the only
            // place to re-allocate additional ranks would be SIMPIC,
            // and … the impact on overall run-time would be
            // negligible" — the budget beyond SIMPIC's sweet spot stays
            // parked.)
            break;
        }
        remaining -= 1;
    }

    Allocation {
        app_ranks,
        cu_ranks,
        app_times,
        cu_times,
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::RuntimeCurve;

    fn ideal(name: &str, work: f64, min_ranks: usize) -> InstanceModel {
        InstanceModel::new(
            name,
            RuntimeCurve {
                a: work,
                b: 0.0,
                c: 0.0,
                d: 0.0,
            },
            1.0,
            1.0,
            1.0,
            1.0,
            min_ranks,
        )
    }

    #[test]
    fn budget_exactly_spent() {
        let apps = vec![ideal("a", 100.0, 1), ideal("b", 300.0, 1)];
        let cus = vec![ideal("cu", 10.0, 1)];
        let out = allocate(&apps, &cus, AllocConfig { budget: 500 });
        assert_eq!(out.total_ranks(), 500);
    }

    #[test]
    fn identical_instances_split_evenly() {
        let apps = vec![ideal("a", 100.0, 1), ideal("b", 100.0, 1)];
        let out = allocate(&apps, &[], AllocConfig { budget: 200 });
        let diff = out.app_ranks[0].abs_diff(out.app_ranks[1]);
        assert!(diff <= 1, "{:?}", out.app_ranks);
    }

    #[test]
    fn heavier_instance_gets_proportionally_more() {
        // Ideal 1/p scaling: equalising runtimes means ranks ∝ work.
        let apps = vec![ideal("light", 100.0, 1), ideal("heavy", 300.0, 1)];
        let out = allocate(&apps, &[], AllocConfig { budget: 400 });
        let ratio = out.app_ranks[1] as f64 / out.app_ranks[0] as f64;
        assert!(
            (2.5..3.5).contains(&ratio),
            "ratio {ratio} ({:?})",
            out.app_ranks
        );
        // Runtimes end up balanced.
        let t = &out.app_times;
        assert!((t[0] - t[1]).abs() / t[1] < 0.1, "{t:?}");
    }

    #[test]
    fn scale_factor_drives_allocation() {
        // Same curve, but one instance is 30× the base case (24M/250
        // vs 8M/25) — it must receive ~30× the ranks.
        let curve = RuntimeCurve {
            a: 100.0,
            b: 0.0,
            c: 0.0,
            d: 0.0,
        };
        let apps = vec![
            InstanceModel::new("base", curve.clone(), 8e6, 25.0, 8e6, 25.0, 1),
            InstanceModel::new("big", curve, 8e6, 25.0, 24e6, 250.0, 1),
        ];
        let out = allocate(&apps, &[], AllocConfig { budget: 3100 });
        let ratio = out.app_ranks[1] as f64 / out.app_ranks[0] as f64;
        assert!((25.0..35.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn min_ranks_respected() {
        let apps = vec![ideal("a", 1.0, 100), ideal("b", 10_000.0, 100)];
        let out = allocate(&apps, &[], AllocConfig { budget: 1000 });
        assert!(out.app_ranks.iter().all(|&r| r >= 100));
        // The tiny instance stays at its floor.
        assert_eq!(out.app_ranks[0], 100);
    }

    #[test]
    fn allocation_stops_at_bottleneck_sweet_spot() {
        // An instance whose runtime grows past p ≈ √1000 ≈ 32 is the
        // bottleneck; once it saturates, giving anyone more ranks
        // cannot reduce max(apps)+max(CUs), so the allocator parks the
        // rest of the budget (the paper's Base-STC situation, where
        // SIMPIC stops at its ~13,428-rank sweet spot).
        let saturating = InstanceModel::new(
            "sat",
            RuntimeCurve {
                a: 1000.0,
                b: 0.0,
                c: 0.0,
                d: 1.0,
            },
            1.0,
            1.0,
            1.0,
            1.0,
            1,
        );
        let helper = ideal("helper", 10.0, 1);
        let out = allocate(&[saturating, helper], &[], AllocConfig { budget: 10_000 });
        assert!(
            (20..100).contains(&out.app_ranks[0]),
            "saturating instance got {} ranks",
            out.app_ranks[0]
        );
        assert!(
            out.total_ranks() < 10_000,
            "budget must be left idle: {}",
            out.total_ranks()
        );
        // The helper was equalised against the bottleneck before the
        // stop (its time is below the bottleneck's).
        assert!(out.app_times[1] <= out.app_times[0] * 1.05);
    }

    #[test]
    fn cu_allocation_balances_against_apps() {
        let apps = vec![ideal("app", 100.0, 1)];
        let cus = vec![ideal("cu", 100.0, 1)];
        let out = allocate(&apps, &cus, AllocConfig { budget: 100 });
        // Identical work: both halves of max(apps)+max(CUs) matter
        // equally, so ranks split evenly.
        let diff = out.app_ranks[0].abs_diff(out.cu_ranks[0]);
        assert!(diff <= 1, "{:?} vs {:?}", out.app_ranks, out.cu_ranks);
    }

    #[test]
    fn predicted_runtime_is_max_plus_max() {
        let apps = vec![ideal("a", 100.0, 1), ideal("b", 50.0, 1)];
        let cus = vec![ideal("c", 20.0, 1)];
        let out = allocate(&apps, &cus, AllocConfig { budget: 30 });
        let expect = out.app_times.iter().copied().fold(0.0, f64::max)
            + out.cu_times.iter().copied().fold(0.0, f64::max);
        assert_eq!(out.predicted_runtime(), expect);
        assert_eq!(out.bottleneck_app(), argmax(&out.app_times));
    }

    #[test]
    fn more_budget_never_hurts() {
        let apps = vec![ideal("a", 500.0, 1), ideal("b", 80.0, 1)];
        let cus = vec![ideal("cu", 30.0, 1)];
        let mut prev = f64::INFINITY;
        for budget in [10usize, 50, 200, 1000, 5000] {
            let out = allocate(&apps, &cus, AllocConfig { budget });
            let t = out.predicted_runtime();
            assert!(t <= prev * 1.0001, "budget {budget}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn budget_below_minimum_panics() {
        let apps = vec![ideal("a", 1.0, 100)];
        allocate(&apps, &[], AllocConfig { budget: 50 });
    }
}
