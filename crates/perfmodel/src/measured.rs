//! Measured thread-scaling curves.
//!
//! The `bench_kernels` binary times each hot kernel across thread
//! counts on real hardware (via `cpx-par`) and emits the medians; this
//! module turns those samples into the same [`RuntimeCurve`] /
//! [`InstanceModel`] machinery Algorithm 1 uses — an *empirical*
//! alternative to the synthetic efficiency curves, closing the paper's
//! loop from code optimisation to predictive model (§V).

use serde::{Deserialize, Serialize};

use crate::curve::RuntimeCurve;
use crate::scale::InstanceModel;

/// Measured `(threads, median_seconds)` samples for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredScaling {
    /// Kernel name (e.g. `"spmv"`).
    pub name: String,
    /// Samples in ascending thread order; the first entry is the
    /// baseline every speedup/efficiency is relative to.
    pub samples: Vec<(usize, f64)>,
}

impl MeasuredScaling {
    /// Construct, validating the samples: at least two, ascending
    /// distinct thread counts, positive times.
    pub fn new(name: &str, samples: Vec<(usize, f64)>) -> MeasuredScaling {
        assert!(samples.len() >= 2, "need at least two samples");
        assert!(
            samples.windows(2).all(|w| w[0].0 < w[1].0),
            "thread counts must be ascending and distinct"
        );
        assert!(
            samples.iter().all(|&(p, t)| p >= 1 && t > 0.0),
            "samples must have threads >= 1, t > 0"
        );
        MeasuredScaling {
            name: name.to_string(),
            samples,
        }
    }

    /// Speedup of each sample relative to the first (baseline) sample.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        let base = self.samples[0].1;
        self.samples.iter().map(|&(p, t)| (p, base / t)).collect()
    }

    /// Parallel efficiency of each sample relative to the baseline:
    /// `speedup · base_threads / threads`.
    pub fn efficiencies(&self) -> Vec<(usize, f64)> {
        let (p0, t0) = self.samples[0];
        self.samples
            .iter()
            .map(|&(p, t)| (p, (t0 / t) * p0 as f64 / p as f64))
            .collect()
    }

    /// Fit the four-term strong-scaling model to the measured samples.
    pub fn fit_curve(&self) -> RuntimeCurve {
        RuntimeCurve::fit(&self.samples)
    }

    /// Wrap the measured curve as an [`InstanceModel`] so the allocator
    /// can weigh this kernel against the synthetic-curve instances.
    pub fn instance_model(
        &self,
        base_size: f64,
        base_iters: f64,
        size: f64,
        iters: f64,
        min_ranks: usize,
    ) -> InstanceModel {
        InstanceModel::new(
            &self.name,
            self.fit_curve(),
            base_size,
            base_iters,
            size,
            iters,
            min_ranks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn near_ideal() -> MeasuredScaling {
        MeasuredScaling::new("spmv", vec![(1, 1.0), (2, 0.52), (4, 0.28), (8, 0.16)])
    }

    #[test]
    fn speedups_relative_to_baseline() {
        let m = near_ideal();
        let s = m.speedups();
        assert_eq!(s[0], (1, 1.0));
        assert!((s[2].1 - 1.0 / 0.28).abs() < 1e-12);
    }

    #[test]
    fn efficiencies_decline_with_overhead() {
        let e = near_ideal().efficiencies();
        assert!((e[0].1 - 1.0).abs() < 1e-12);
        assert!(e.iter().all(|&(_, eff)| eff <= 1.0 + 1e-12));
        assert!(e[3].1 < e[1].1, "efficiency should decay: {e:?}");
    }

    #[test]
    fn fitted_curve_tracks_measurements() {
        let m = near_ideal();
        let fit = m.fit_curve();
        for &(p, t) in &m.samples {
            let rel = (fit.predict(p) - t).abs() / t;
            assert!(rel < 0.15, "p={p}: predicted {} vs {t}", fit.predict(p));
        }
    }

    #[test]
    fn instance_model_scales_measured_curve() {
        let m = near_ideal();
        let inst = m.instance_model(1e6, 10.0, 3e6, 10.0, 1);
        assert!((inst.scale_factor() - 3.0).abs() < 1e-12);
        assert!(inst.predicted_time(4) > 0.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unordered_samples() {
        MeasuredScaling::new("x", vec![(4, 1.0), (2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn rejects_single_sample() {
        MeasuredScaling::new("x", vec![(1, 1.0)]);
    }
}
