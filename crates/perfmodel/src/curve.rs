//! Runtime-curve fitting.
//!
//! Standalone benchmark samples `(p, t)` are fitted to the four-term
//! strong-scaling model
//!
//! ```text
//! t(p) = A/p  +  B  +  C·log2(p)  +  D·p
//! ```
//!
//! (perfectly-parallel work, fixed serial fraction, tree-collective
//! latency, serialized/pipeline term), with non-negative coefficients
//! fitted by projected least squares on *relative* error so small-`t`
//! samples at high `p` are not drowned out. The fitted curve is what
//! Algorithm 1 interrogates when it asks "how much does one more core
//! help this instance?".

use serde::{Deserialize, Serialize};

/// A fitted runtime curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeCurve {
    /// Perfectly-parallel coefficient (`A/p`).
    pub a: f64,
    /// Serial-fraction constant (`B`).
    pub b: f64,
    /// Logarithmic (collective) coefficient (`C·log2 p`).
    pub c: f64,
    /// Linear (pipeline/serialization) coefficient (`D·p`).
    pub d: f64,
}

impl RuntimeCurve {
    /// Fit to samples `(ranks, seconds)`. Requires at least two samples
    /// with distinct rank counts.
    pub fn fit(samples: &[(usize, f64)]) -> RuntimeCurve {
        assert!(samples.len() >= 2, "need at least two samples");
        assert!(
            samples.iter().any(|&(p, _)| p != samples[0].0),
            "need at least two distinct rank counts"
        );
        assert!(
            samples.iter().all(|&(p, t)| p >= 1 && t > 0.0),
            "samples must have p >= 1, t > 0"
        );
        // Basis functions, weighted by 1/t (relative least squares).
        let rows: Vec<([f64; 4], f64, f64)> = samples
            .iter()
            .map(|&(p, t)| {
                let pf = p as f64;
                ([1.0 / pf, 1.0, pf.log2(), pf], t, 1.0 / t)
            })
            .collect();

        // Projected coordinate descent on ½‖w(Xβ − t)‖² with β ≥ 0.
        let mut beta = [0.0f64; 4];
        // Initialise A from the first sample assuming ideal scaling.
        beta[0] = samples[0].1 * samples[0].0 as f64;
        for _ in 0..2000 {
            for j in 0..4 {
                let mut num = 0.0;
                let mut den = 0.0;
                for (x, t, w) in &rows {
                    let w2 = w * w;
                    let pred_minus_j: f64 =
                        (0..4).filter(|&k| k != j).map(|k| beta[k] * x[k]).sum();
                    num += w2 * x[j] * (t - pred_minus_j);
                    den += w2 * x[j] * x[j];
                }
                beta[j] = if den > 0.0 { (num / den).max(0.0) } else { 0.0 };
            }
        }
        RuntimeCurve {
            a: beta[0],
            b: beta[1],
            c: beta[2],
            d: beta[3],
        }
    }

    /// Predicted runtime at `p` ranks.
    pub fn predict(&self, p: usize) -> f64 {
        assert!(p >= 1);
        let pf = p as f64;
        self.a / pf + self.b + self.c * pf.log2() + self.d * pf
    }

    /// Predicted speedup from `p0` to `p`.
    pub fn speedup(&self, p0: usize, p: usize) -> f64 {
        self.predict(p0) / self.predict(p)
    }

    /// Predicted parallel efficiency at `p`, relative to `p0`.
    pub fn parallel_efficiency(&self, p0: usize, p: usize) -> f64 {
        self.speedup(p0, p) * p0 as f64 / p as f64
    }

    /// The rank count minimising predicted runtime (within `1..=max_p`);
    /// beyond it, the `C`/`D` terms make more ranks *slower*.
    pub fn sweet_spot(&self, max_p: usize) -> usize {
        let mut best = (f64::INFINITY, 1usize);
        let mut p = 1usize;
        while p <= max_p {
            let t = self.predict(p);
            if t < best.0 {
                best = (t, p);
            }
            p = (p as f64 * 1.05).ceil() as usize;
        }
        best.1
    }

    /// Leave-one-out cross-validation: refit with each sample held out
    /// and report the mean relative error of predicting the held-out
    /// point — the honest generalization estimate the model-building
    /// pipeline reports alongside a fit.
    pub fn cross_validate(samples: &[(usize, f64)]) -> f64 {
        assert!(samples.len() >= 3, "LOO-CV needs at least three samples");
        let mut total = 0.0;
        let mut count = 0usize;
        for hold in 0..samples.len() {
            let train: Vec<(usize, f64)> = samples
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != hold)
                .map(|(_, &s)| s)
                .collect();
            // Need two distinct rank counts in the training set.
            if !train.iter().any(|&(p, _)| p != train[0].0) {
                continue;
            }
            let fit = RuntimeCurve::fit(&train);
            let (p, t) = samples[hold];
            total += ((fit.predict(p) - t) / t).abs();
            count += 1;
        }
        if count == 0 {
            f64::INFINITY
        } else {
            total / count as f64
        }
    }

    /// Mean relative error of the fit on `samples`.
    pub fn relative_error(&self, samples: &[(usize, f64)]) -> f64 {
        let total: f64 = samples
            .iter()
            .map(|&(p, t)| ((self.predict(p) - t) / t).abs())
            .sum();
        total / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(a: f64, b: f64, c: f64, d: f64, ps: &[usize]) -> Vec<(usize, f64)> {
        ps.iter()
            .map(|&p| {
                let pf = p as f64;
                (p, a / pf + b + c * pf.log2() + d * pf)
            })
            .collect()
    }

    #[test]
    fn recovers_synthetic_curve() {
        let samples = synth(1000.0, 0.5, 0.02, 1e-4, &[1, 2, 8, 64, 512, 4096]);
        let fit = RuntimeCurve::fit(&samples);
        assert!(
            fit.relative_error(&samples) < 0.02,
            "fit error {} ({fit:?})",
            fit.relative_error(&samples)
        );
        // Extrapolation to unseen rank counts stays close.
        let pf = 16384f64;
        let truth = 1000.0 / pf + 0.5 + 0.02 * pf.log2() + 1e-4 * pf;
        let pred = fit.predict(16384);
        assert!((pred - truth).abs() / truth < 0.15, "{pred} vs {truth}");
    }

    #[test]
    fn coefficients_nonnegative() {
        // Noisy, nearly-ideal scaling data must not produce negative
        // terms.
        let samples: Vec<(usize, f64)> = [1usize, 4, 16, 64, 256]
            .iter()
            .map(|&p| (p, 100.0 / p as f64 * (1.0 + 0.03 * ((p % 3) as f64 - 1.0))))
            .collect();
        let fit = RuntimeCurve::fit(&samples);
        assert!(fit.a >= 0.0 && fit.b >= 0.0 && fit.c >= 0.0 && fit.d >= 0.0);
    }

    #[test]
    fn predict_monotone_decreasing_for_ideal() {
        let fit = RuntimeCurve {
            a: 100.0,
            b: 0.0,
            c: 0.0,
            d: 0.0,
        };
        assert!(fit.predict(10) > fit.predict(100));
        assert_eq!(fit.speedup(1, 100), 100.0);
        assert!((fit.parallel_efficiency(1, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweet_spot_found() {
        // t(p) = 1000/p + 1e-3 p has its minimum at p = 1000.
        let fit = RuntimeCurve {
            a: 1000.0,
            b: 0.0,
            c: 0.0,
            d: 1e-3,
        };
        let sweet = fit.sweet_spot(100_000);
        assert!(
            (800..1300).contains(&sweet),
            "sweet spot {sweet}, expected ~1000"
        );
    }

    #[test]
    fn efficiency_declines_with_latency_term() {
        let fit = RuntimeCurve {
            a: 100.0,
            b: 0.0,
            c: 0.1,
            d: 0.0,
        };
        let e1 = fit.parallel_efficiency(1, 64);
        let e2 = fit.parallel_efficiency(1, 4096);
        assert!(e2 < e1);
        assert!(e1 < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        RuntimeCurve::fit(&[(1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "distinct rank counts")]
    fn rejects_degenerate_samples() {
        RuntimeCurve::fit(&[(4, 1.0), (4, 1.1)]);
    }

    #[test]
    fn fit_handles_flat_curves() {
        // An instance that does not scale at all (constant runtime).
        let samples: Vec<(usize, f64)> = [1usize, 8, 64].iter().map(|&p| (p, 5.0)).collect();
        let fit = RuntimeCurve::fit(&samples);
        assert!((fit.predict(32) - 5.0).abs() < 0.5);
    }

    #[test]
    fn cross_validation_small_for_clean_data() {
        let samples = synth(5000.0, 0.2, 0.01, 1e-4, &[1, 4, 16, 64, 256, 1024, 4096]);
        let cv = RuntimeCurve::cross_validate(&samples);
        assert!(cv < 0.15, "LOO-CV error {cv}");
    }

    #[test]
    fn cross_validation_flags_wrong_model_family() {
        // Data with a p^2 term the basis cannot represent: CV must be
        // visibly worse than on representable data.
        let bad: Vec<(usize, f64)> = [1usize, 4, 16, 64, 256, 1024]
            .iter()
            .map(|&p| (p, 1000.0 / p as f64 + 1e-5 * (p * p) as f64))
            .collect();
        let good = synth(1000.0, 0.0, 0.0, 1e-3, &[1, 4, 16, 64, 256, 1024]);
        let cv_bad = RuntimeCurve::cross_validate(&bad);
        let cv_good = RuntimeCurve::cross_validate(&good);
        assert!(cv_bad > cv_good, "bad {cv_bad} vs good {cv_good}");
    }
}
